"""Generate the paper-scale experiment outputs recorded in EXPERIMENTS.md."""
import sys, time
from repro.experiments import (
    ExperimentConfig, figure5, figure6, laxity_sweep, overhead_table,
    ablation_quantum, ablation_cost, ablation_representation,
)

config = ExperimentConfig.paper()
jobs = [
    ("fig5", lambda: figure5(config)),
    ("fig6", lambda: figure6(config)),
    ("laxity", lambda: laxity_sweep(config, processors=(2, 4, 6, 8, 10))),
    ("overhead", lambda: overhead_table(config)),
    ("ablate_quantum", lambda: ablation_quantum(config)),
    ("ablate_cost", lambda: ablation_cost(config)),
    ("ablate_representation", lambda: ablation_representation(config)),
]
for name, job in jobs:
    t0 = time.time()
    result = job()
    text = result.render()
    with open(f"/root/repo/results/paper_{name}.txt", "w") as f:
        f.write(text + "\n")
    print(f"DONE {name} in {time.time()-t0:.0f}s", flush=True)
print("ALL DONE", flush=True)
