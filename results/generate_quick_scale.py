"""Generate the quick-scale experiment outputs recorded in EXPERIMENTS.md."""
import time
from repro.experiments import (
    ExperimentConfig, figure5, figure6, laxity_sweep, overhead_table,
    ablation_quantum, ablation_cost, ablation_representation,
    ablation_interconnect, ablation_memory, extension_reclaiming,
    extension_load_sweep, extension_write_mix, extension_failures,
)

config = ExperimentConfig.quick()
jobs = [
    ("fig5", lambda: figure5(config)),
    ("fig6", lambda: figure6(config)),
    ("laxity", lambda: laxity_sweep(config, processors=(2, 4, 6, 8, 10))),
    ("overhead", lambda: overhead_table(config)),
    ("ablate_quantum", lambda: ablation_quantum(config)),
    ("ablate_cost", lambda: ablation_cost(config)),
    ("ablate_representation", lambda: ablation_representation(config)),
    ("ablate_interconnect", lambda: ablation_interconnect(config)),
    ("reclaiming", lambda: extension_reclaiming(config)),
    ("load_sweep", lambda: extension_load_sweep(config)),
    ("write_mix", lambda: extension_write_mix(config)),
    ("failures", lambda: extension_failures(config)),
    ("ablate_memory", lambda: ablation_memory(config)),
]
for name, job in jobs:
    t0 = time.time()
    with open(f"results/quick_{name}.txt", "w") as f:
        f.write(job().render() + "\n")
    print(f"DONE {name} in {time.time()-t0:.0f}s", flush=True)
print("ALL DONE", flush=True)

# A5 and X4 were added after the first version of this script; append them.
