"""Regenerate paper-scale outputs affected by metric fixes + extensions."""
import time
from repro.experiments import (
    ExperimentConfig, overhead_table, ablation_representation,
    extension_reclaiming, extension_load_sweep, extension_write_mix,
    extension_failures, ablation_interconnect,
)

config = ExperimentConfig.paper()
jobs = [
    ("ablate_representation", lambda: ablation_representation(config)),
    ("overhead", lambda: overhead_table(config)),
    ("ablate_interconnect", lambda: ablation_interconnect(config)),
    ("reclaiming", lambda: extension_reclaiming(config)),
    ("write_mix", lambda: extension_write_mix(config)),
    ("failures", lambda: extension_failures(config)),
    ("load_sweep", lambda: extension_load_sweep(config)),
]
for name, job in jobs:
    t0 = time.time()
    with open(f"results/paper_{name}.txt", "w") as f:
        f.write(job().render() + "\n")
    print(f"DONE {name} in {time.time()-t0:.0f}s", flush=True)
print("ALL DONE", flush=True)
