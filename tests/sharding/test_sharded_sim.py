"""The ``sharded`` execution backend through the public runner path.

These tests drive ``run_once`` exactly like an experiment cell would —
``config.with_domains(k)`` and nothing else — and pin the properties the
shard-curve leans on: schema parity with the single-master simulator,
clean accounting across domains, and per-(config, seed) determinism.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_once


def _quick(**overrides) -> ExperimentConfig:
    defaults = dict(num_transactions=60, runs=1, num_processors=4)
    defaults.update(overrides)
    return ExperimentConfig.quick(**defaults)


def _comparable(report) -> dict:
    """The schema dict minus the one wall-clock-dependent field."""
    data = report.as_dict()
    data.pop("wall_seconds")
    return data


class TestDispatch:
    def test_domains_above_one_select_the_sharded_backend(self):
        report = run_once(_quick().with_domains(2), "rtsads", 3)
        assert report.backend == "sharded"
        assert report.migration  # section present, even if all zeros

    def test_single_domain_stays_on_the_plain_simulator(self):
        report = run_once(_quick(), "rtsads", 3)
        assert report.backend == "sim"
        assert report.migration == {}


class TestSchemaParity:
    def test_sharded_report_schema_matches_sim(self):
        config = _quick()
        sim = run_once(config, "rtsads", 5).as_dict()
        sharded = run_once(config.with_domains(2), "rtsads", 5).as_dict()
        assert sorted(sim) == sorted(sharded)

    def test_assignment_rides_in_extras(self):
        report = run_once(_quick().with_domains(2), "rtsads", 5)
        assignment = report.extras["assignment"]
        assert assignment["num_workers"] == 4
        assert len(assignment["domains"]) == 2


class TestAccounting:
    @pytest.mark.parametrize("domains", [1, 2, 4])
    def test_terminal_states_partition_the_workload(self, domains):
        config = _quick().with_domains(domains)
        report = run_once(config, "rtsads", 11)
        assert report.total_tasks == 60
        assert (
            report.completed + report.expired + report.failed
            == report.total_tasks
        )
        assert report.deadline_hits + report.completed_late == report.completed
        assert report.guaranteed_violations == 0

    def test_migration_section_is_internally_consistent(self):
        # Tight slack at 2 domains produces real offers for this seed.
        config = _quick(
            num_transactions=120, slack_factor=1.5, base_seed=2
        ).with_domains(2)
        report = run_once(config, "rtsads", 2)
        section = report.migration
        assert (
            section["offers"]
            == section["accepted"] + section["declined"] + section["timeouts"]
        )
        assert sum(section["out_by_domain"].values()) == section["offers"]
        assert sum(section["in_by_domain"].values()) == section["accepted"]


class TestDeterminism:
    def test_identical_inputs_reproduce_the_report(self):
        config = _quick(num_transactions=120, slack_factor=1.5).with_domains(2)
        first = run_once(config, "rtsads", 9)
        second = run_once(config, "rtsads", 9)
        assert _comparable(first) == _comparable(second)
        assert first.extras["assignment"] == second.extras["assignment"]

    def test_partition_policy_is_part_of_run_identity(self):
        base = _quick(num_transactions=120, slack_factor=1.5).with_domains(2)
        hashed = run_once(base, "rtsads", 9)
        packed = run_once(
            base.with_partition_policy("worst-fit"), "rtsads", 9
        )
        # Policies may coincidentally produce the same partition on tiny
        # configs; assert the knob reaches the run rather than equality.
        assert hashed.extras["assignment"]["policy"] == "hash"
        assert packed.extras["assignment"]["policy"] == "worst-fit"
