"""The migration guarantee check and its accounting.

``can_guarantee`` is the arithmetic both backends use to answer a
``MIGRATE_OFFER``, so it gets two kinds of scrutiny: hand-built cases
pinning the communication-cost handling, and a hypothesis property that
cross-validates every per-worker decision against the exact
branch-and-bound oracle (``exact_feasibility``) on the equivalent
two-task single-machine instance — the oracle is provably complete, so
any divergence would be a bug in the quick check.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import exact_feasibility
from repro.core.task import Task
from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_scheduler, build_workload
from repro.core.affinity import UniformCommunicationModel
from repro.core.domains import partition_workers
from repro.sharding import MigrationStats, can_guarantee
from repro.sharding.sim import ShardedRuntime


def _task(processing: float, deadline: float, affinity=()) -> Task:
    return Task(
        task_id=1,
        processing_time=processing,
        arrival_time=0.0,
        deadline=deadline,
        affinity=frozenset(affinity),
    )


class TestCanGuarantee:
    def test_affine_worker_pays_no_communication(self):
        task = _task(10.0, deadline=15.0, affinity={3})
        assert can_guarantee(task, 0.0, [4.0], [3], remote_cost=50.0)

    def test_remote_cost_breaks_the_same_deadline(self):
        task = _task(10.0, deadline=15.0, affinity={3})
        assert not can_guarantee(task, 0.0, [4.0], [7], remote_cost=50.0)

    def test_any_single_worker_suffices(self):
        task = _task(10.0, deadline=20.0, affinity={2})
        loads = [100.0, 100.0, 5.0]
        assert can_guarantee(task, 0.0, loads, [0, 1, 2], remote_cost=50.0)

    def test_no_workers_means_no_guarantee(self):
        assert not can_guarantee(_task(1.0, 100.0), 0.0, [], [], 50.0)

    def test_exact_deadline_finish_is_accepted(self):
        task = _task(6.0, deadline=10.0, affinity={0})
        assert can_guarantee(task, 1.0, [3.0], [0], remote_cost=50.0)
        assert not can_guarantee(task, 1.0, [3.001], [0], remote_cost=50.0)

    # Quarter-integer grids keep the arithmetic exact in binary floating
    # point, so the quick check and the oracle face identical numbers.
    _quarters = st.integers(min_value=0, max_value=200).map(lambda n: n / 4)
    _pos_quarters = st.integers(min_value=1, max_value=200).map(
        lambda n: n / 4
    )

    @settings(max_examples=200, deadline=None)
    @given(
        now=_quarters,
        load=_pos_quarters,
        processing=_pos_quarters,
        deadline_slack=_pos_quarters,
        affine=st.booleans(),
        remote_cost=_quarters,
    )
    def test_per_worker_decision_matches_the_exact_oracle(
        self, now, load, processing, deadline_slack, affine, remote_cost
    ):
        """can_guarantee on one worker == exact feasibility of the pair.

        A worker with queued load L at time ``now`` is exactly a single
        machine that must first run a task (arrival ``now``, cost L,
        deadline ``now + L`` — zero slack forces it to go first) and then
        the offered task, whose cost includes the communication penalty
        when the worker is not in the affinity set.  The branch-and-bound
        oracle decides that two-task instance completely, so it is ground
        truth for the O(1) check.
        """
        task = _task(
            processing,
            deadline=now + deadline_slack,
            affinity={5} if affine else set(),
        )
        quick = can_guarantee(task, now, [load], [5], remote_cost)
        comm = 0.0 if affine else remote_cost
        exact = exact_feasibility(
            [
                (now, load, now + load),
                (now, processing + comm, task.deadline),
            ],
            workers=1,
        )
        assert exact is not None
        assert quick == exact


class TestMigrationStats:
    def test_counts_and_flows_accumulate(self):
        stats = MigrationStats()
        stats.record_offer(0)
        stats.record_offer(0)
        stats.record_offer(2)
        stats.record_accept(1)
        stats.record_decline()
        stats.record_timeout()
        assert stats.offers == 3
        assert stats.accepted + stats.declined + stats.timeouts == 3
        assert sum(stats.out_by_domain.values()) == stats.offers
        assert sum(stats.in_by_domain.values()) == stats.accepted

    def test_section_has_stable_string_keyed_maps(self):
        stats = MigrationStats()
        stats.record_offer(1)
        stats.record_accept(0)
        section = stats.as_section()
        assert sorted(section) == [
            "accepted",
            "declined",
            "in_by_domain",
            "offers",
            "out_by_domain",
            "timeouts",
        ]
        assert section["out_by_domain"] == {"1": 1}
        assert section["in_by_domain"] == {"0": 1}


class TestEndToEndAccounting:
    def _run_forced(self):
        """A 2-domain sim run with every task routed to domain 0.

        The misrouting overloads domain 0, which must then offer its
        unplaceable tasks to domain 1 — a deterministic way to exercise
        the full offer/accept/decline path without depending on natural
        pressure.
        """
        config = ExperimentConfig.quick(
            num_transactions=40,
            num_processors=4,
            base_seed=7,
            slack_factor=1.4,
            runs=1,
        ).with_domains(2)
        comm = UniformCommunicationModel(remote_cost=config.remote_cost)
        _, tasks = build_workload(config, config.base_seed)
        assignment = partition_workers(
            config.num_processors,
            config.domains,
            config.partition_policy,
            tasks=tasks,
        )
        schedulers = [
            build_scheduler("rtsads", config, comm)
            for _ in range(assignment.num_domains)
        ]
        runtime = ShardedRuntime(
            schedulers=schedulers,
            assignment=assignment,
            workload=tasks,
            remote_cost=config.remote_cost,
            seed=config.base_seed,
            router=lambda task: 0,
        )
        return runtime, runtime.run()

    def test_every_offer_resolves_exactly_once(self):
        runtime, report = self._run_forced()
        stats = runtime.stats
        assert stats.offers > 0
        assert stats.accepted > 0  # domain 1 starts idle: some must land
        assert (
            stats.offers == stats.accepted + stats.declined + stats.timeouts
        )
        assert sum(stats.out_by_domain.values()) == stats.offers
        assert sum(stats.in_by_domain.values()) == stats.accepted
        assert report.migration == stats.as_section()

    def test_migrated_guarantees_are_counted_once(self):
        _, report = self._run_forced()
        # Global accounting must absorb migrations without double counts:
        # every task ends in exactly one terminal state, and guarantees
        # (wherever honoured) never exceed the tasks that exist.
        assert (
            report.completed + report.expired + report.failed
            == report.total_tasks
        )
        assert report.guaranteed <= report.total_tasks
        assert report.deadline_hits <= report.guaranteed
        assert report.guaranteed_violations == 0
