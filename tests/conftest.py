"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    LoadBalancingEvaluator,
    Task,
    UniformCommunicationModel,
    ZeroCommunicationModel,
    make_task,
)
from repro.database import DatabaseConfig, DistributedDatabase
from repro.workload import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


@pytest.fixture
def comm():
    """Uniform-C communication model with a noticeable remote cost."""
    return UniformCommunicationModel(remote_cost=50.0)


@pytest.fixture
def zero_comm():
    return ZeroCommunicationModel()


@pytest.fixture
def evaluator():
    return LoadBalancingEvaluator()


@pytest.fixture
def simple_tasks():
    """Four tasks with generous deadlines on a 2-processor machine."""
    return [
        make_task(0, processing_time=10.0, deadline=200.0, affinity=[0]),
        make_task(1, processing_time=20.0, deadline=300.0, affinity=[1]),
        make_task(2, processing_time=15.0, deadline=400.0, affinity=[0, 1]),
        make_task(3, processing_time=5.0, deadline=500.0, affinity=[1]),
    ]


@pytest.fixture
def tight_tasks():
    """Tasks whose deadlines admit only some assignments."""
    return [
        make_task(0, processing_time=10.0, deadline=25.0, affinity=[0]),
        make_task(1, processing_time=10.0, deadline=25.0, affinity=[0]),
        make_task(2, processing_time=10.0, deadline=25.0, affinity=[0]),
    ]


@pytest.fixture
def small_database():
    """A small but fully populated distributed database."""
    return DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=4,
            records_per_subdb=50,
            num_attributes=5,
            domain_size=10,
        ),
        num_processors=4,
        replication_rate=0.5,
        rng=random.Random(7),
    )


@pytest.fixture
def synthetic_workload():
    """A 40-task synthetic bursty workload on 4 processors."""
    return SyntheticWorkloadGenerator(
        SyntheticWorkloadConfig(
            num_tasks=40,
            num_processors=4,
            affinity_probability=0.5,
            min_processing_time=5.0,
            max_processing_time=20.0,
            slack_factor=2.0,
            seed=11,
        )
    ).generate()
