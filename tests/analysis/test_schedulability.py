"""Direct unit tests for the offline schedulability oracle.

The conformance suite exercises the oracle against real schedulers
(soundness of ``hits_upper_bound``); these tests pin the oracle's own
contract on hand-built workloads where the right verdict is known by
construction: each verdict class, the forced-miss floor, the regret
arithmetic, and the input-validation guards.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    FEASIBLE,
    INFEASIBLE,
    UNKNOWN,
    analyze_tasks,
    analyze_triples,
    regret_section,
    unknown_regret_section,
)


class _Task:
    """Minimal stand-in exposing the attributes analyze_tasks reads."""

    def __init__(self, arrival: float, cost: float, deadline: float):
        self.arrival_time = arrival
        self.processing_time = cost
        self.deadline = deadline


class TestVerdicts:
    def test_empty_workload_is_feasible(self):
        verdict = analyze_triples([], workers=2)
        assert verdict.verdict == FEASIBLE
        assert verdict.total_tasks == 0
        assert verdict.hits_upper_bound == 0

    def test_loose_workload_is_feasible_via_witness(self):
        triples = [(0.0, 1.0, 10.0), (0.0, 2.0, 20.0), (5.0, 1.0, 30.0)]
        verdict = analyze_triples(triples, workers=1)
        assert verdict.verdict == FEASIBLE
        assert verdict.forced_misses == 0
        assert verdict.witness_hits == 3
        assert verdict.hits_upper_bound == 3

    def test_impossible_task_forces_infeasible(self):
        # cost 30 in a window of 10: no schedule meets it.
        verdict = analyze_triples([(0.0, 30.0, 10.0)], workers=4)
        assert verdict.verdict == INFEASIBLE
        assert verdict.impossible_tasks == 1
        assert verdict.forced_misses >= 1
        assert verdict.hits_upper_bound == 0

    def test_demand_bound_forces_infeasible(self):
        # Three unit-window tasks, each individually possible, but
        # 30 units of demand in [0, 10] on one machine: any schedule
        # (even preemptive and clairvoyant) misses at least two.
        triples = [(0.0, 10.0, 10.0)] * 3
        verdict = analyze_triples(triples, workers=1)
        assert verdict.verdict == INFEASIBLE
        assert verdict.impossible_tasks == 0
        assert verdict.forced_misses == 2
        assert verdict.hits_upper_bound == 1

    def test_exact_search_settles_the_small_gap(self):
        # The long task must start immediately to make its deadline, but
        # then the short late arrival is blocked; the demand bound cannot
        # see it (no single interval is overloaded) and the EDF witness
        # cannot schedule it.  Small enough for the exact branch-and-
        # bound, which proves no dispatch order works at all.
        triples = [(0.0, 5.0, 6.0), (1.0, 1.0, 2.0)]
        verdict = analyze_triples(triples, workers=1)
        assert verdict.verdict == INFEASIBLE
        assert verdict.forced_misses == 1
        assert verdict.witness_hits < verdict.total_tasks

    def test_gap_beyond_exact_limit_stays_unknown(self):
        # The same undecidable-by-bounds pair, padded past
        # EXACT_TASK_LIMIT with far-future independent tasks so the
        # exact search is gated off: the oracle must decline to rule.
        triples = [(0.0, 5.0, 6.0), (1.0, 1.0, 2.0)] + [
            (100.0 + 3.0 * i, 1.0, 103.0 + 3.0 * i) for i in range(12)
        ]
        verdict = analyze_triples(triples, workers=1)
        assert verdict.total_tasks > 12
        assert verdict.verdict == UNKNOWN
        assert verdict.forced_misses == 0
        assert verdict.witness_hits < verdict.total_tasks

    def test_more_workers_restore_feasibility(self):
        triples = [(0.0, 10.0, 10.0)] * 3
        assert analyze_triples(triples, workers=3).verdict == FEASIBLE

    def test_analyze_tasks_matches_analyze_triples(self):
        triples = [(0.0, 4.0, 9.0), (2.0, 3.0, 12.0), (0.0, 9.0, 8.0)]
        tasks = [_Task(a, p, d) for a, p, d in triples]
        assert analyze_tasks(tasks, 2) == analyze_triples(triples, 2)


class TestGuards:
    @pytest.mark.parametrize("workers", [0, -1])
    def test_analyze_triples_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError):
            analyze_triples([(0.0, 1.0, 2.0)], workers)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_analyze_tasks_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError):
            analyze_tasks([_Task(0.0, 1.0, 2.0)], workers)


class TestRegretArithmetic:
    def test_regret_is_shortfall_below_the_bound(self):
        verdict = analyze_triples([(0.0, 10.0, 10.0)] * 3, workers=1)
        assert verdict.hits_upper_bound == 1
        assert verdict.regret(0) == 1
        assert verdict.regret(1) == 0
        # A real run can never beat the bound, but the arithmetic must
        # stay clamped if handed an inconsistent hit count.
        assert verdict.regret(5) == 0
        assert verdict.compliance_vs_bound(5) == 1.0

    def test_compliance_with_zero_bound_is_vacuously_full(self):
        verdict = analyze_triples([(0.0, 30.0, 10.0)], workers=1)
        assert verdict.hits_upper_bound == 0
        assert verdict.compliance_vs_bound(0) == 1.0

    def test_regret_section_extends_the_verdict_dict(self):
        verdict = analyze_triples([(0.0, 1.0, 10.0)] * 4, workers=2)
        section = regret_section(verdict, deadline_hits=3)
        assert section["verdict"] == verdict.verdict
        assert section["deadline_hits"] == 3
        assert section["regret_misses"] == verdict.regret(3)
        assert section["compliance_vs_bound"] == pytest.approx(0.75)

    def test_unknown_regret_section_claims_nothing(self):
        section = unknown_regret_section(total_tasks=12, workers=3)
        assert section["verdict"] == UNKNOWN
        assert section["total_tasks"] == 12
        assert section["workers"] == 3
        assert section["forced_misses"] == 0
        assert section["hits_upper_bound"] == 12
        assert section["regret_misses"] == 0
        assert section["compliance_vs_bound"] == 1.0
        # Same schema as a real section, so exports stay uniform.
        real = regret_section(
            analyze_triples([(0.0, 1.0, 10.0)], 1), deadline_hits=1
        )
        assert sorted(section) == sorted(real)
