"""Tests for ASCII reporting."""

import pytest

from repro.metrics import (
    FigureData,
    ascii_chart,
    comparison_summary,
    format_figure,
    format_gantt,
    format_table,
)


def _figure():
    figure = FigureData(
        title="Test figure", x_label="processors", x_values=[2, 4, 6]
    )
    figure.add_series("RT-SADS", [20.0, 40.0, 60.0])
    figure.add_series("D-COLS", [15.0, 20.0, 25.0])
    return figure


class TestFigureData:
    def test_series_length_checked(self):
        figure = FigureData(title="t", x_label="x", x_values=[1, 2])
        with pytest.raises(ValueError):
            figure.add_series("s", [1.0])

    def test_series_by_label(self):
        figure = _figure()
        assert figure.series_by_label("RT-SADS").values == [20.0, 40.0, 60.0]
        with pytest.raises(KeyError):
            figure.series_by_label("missing")


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "22.25" in lines[3]

    def test_precision(self):
        text = format_table(["v"], [[1.23456]], precision=3)
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatFigure:
    def test_contains_all_series_and_points(self):
        text = format_figure(_figure())
        assert "Test figure" in text
        assert "RT-SADS" in text and "D-COLS" in text
        assert "60.00" in text

    def test_notes_rendered(self):
        figure = _figure()
        figure.notes.append("hello note")
        assert "note: hello note" in format_figure(figure)


class TestAsciiChart:
    def test_bars_scale_with_values(self):
        text = ascii_chart(_figure(), width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        rtsads_final = [l for l in lines if "60.0" in l][0]
        dcols_final = [l for l in lines if "25.0" in l][0]
        assert rtsads_final.count("#") > dcols_final.count("#")

    def test_empty_series_tolerated(self):
        figure = FigureData(title="t", x_label="x", x_values=[])
        assert "t" in ascii_chart(figure)


class TestFormatGantt:
    def test_lanes_rendered_with_utilization(self):
        lanes = {
            0: [(1, 0.0, 50.0), (2, 50.0, 100.0)],  # fully busy
            1: [(3, 0.0, 25.0)],  # 25% busy
        }
        text = format_gantt(lanes, width=40)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "P0" in lines[1] and "100.0%" in lines[1]
        assert "P1" in lines[2] and "25.0%" in lines[2]
        # The busy processor's row has more filled cells.
        assert lines[1].count("#") > lines[2].count("#")

    def test_idle_gaps_drawn(self):
        lanes = {0: [(1, 0.0, 10.0), (2, 90.0, 100.0)]}
        text = format_gantt(lanes, width=50)
        row = text.splitlines()[1]
        assert "." in row and "#" in row

    def test_empty(self):
        assert "no completed tasks" in format_gantt({})

    def test_explicit_horizon(self):
        lanes = {0: [(1, 0.0, 10.0)]}
        text = format_gantt(lanes, width=40, until=100.0)
        row = text.splitlines()[1]
        # 10/100 of the row filled at most.
        assert row.count("#") <= 6

    def test_from_simulation_trace(self, simple_tasks):
        from repro.core import RTSADS, UniformCommunicationModel
        from repro.simulator import simulate

        result = simulate(
            RTSADS(UniformCommunicationModel(50.0)), simple_tasks, 2
        )
        text = format_gantt(result.trace.gantt())
        assert "P0" in text or "P1" in text


class TestComparisonSummary:
    def test_headline_numbers(self):
        summary = comparison_summary(_figure(), "RT-SADS", "D-COLS")
        assert summary["max_advantage"] == 35.0
        assert summary["final_advantage"] == 35.0
        assert summary["RT-SADS_gain"] == 40.0
        assert summary["D-COLS_gain"] == 10.0
