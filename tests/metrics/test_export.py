"""Tests for CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.metrics import FigureData
from repro.metrics.export import (
    export_figure,
    figure_to_csv,
    figure_to_json,
    table_to_csv,
    table_to_json,
    write_text,
)


@pytest.fixture
def figure():
    figure = FigureData(title="T", x_label="m", x_values=[2, 4])
    figure.add_series("RT-SADS", [10.0, 20.0])
    figure.add_series("D-COLS", [5.0, 8.0])
    figure.notes.append("a note")
    return figure


class TestFigureCSV:
    def test_roundtrip_via_csv_reader(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["m", "RT-SADS", "D-COLS"]
        assert rows[1] == ["2", "10.0", "5.0"]
        assert rows[2] == ["4", "20.0", "8.0"]

    def test_quoting_of_commas(self):
        figure = FigureData(title="T", x_label="x, units", x_values=[1])
        figure.add_series("a,b", [1.0])
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["x, units", "a,b"]


class TestFigureJSON:
    def test_structure(self, figure):
        document = json.loads(figure_to_json(figure))
        assert document["title"] == "T"
        assert document["x_values"] == [2, 4]
        assert document["series"][0] == {
            "label": "RT-SADS",
            "values": [10.0, 20.0],
        }
        assert document["notes"] == ["a note"]


class TestTableExport:
    def test_csv(self):
        text = table_to_csv(["a", "b"], [[1, 2], [3, 4]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_json(self):
        document = json.loads(
            table_to_json(["a", "b"], [[1, 2]], title="X1")
        )
        assert document["title"] == "X1"
        assert document["rows"] == [{"a": 1, "b": 2}]

    def test_json_arity_checked(self):
        with pytest.raises(ValueError):
            table_to_json(["a", "b"], [[1]])


class TestFileWriting:
    def test_write_text_adds_newline(self, tmp_path):
        path = write_text(tmp_path / "sub" / "x.txt", "hello")
        assert path.read_text() == "hello\n"

    def test_export_figure_writes_both_formats(self, figure, tmp_path):
        paths = export_figure(figure, tmp_path / "fig5")
        assert {p.suffix for p in paths} == {".csv", ".json"}
        assert all(p.exists() for p in paths)
        document = json.loads((tmp_path / "fig5.json").read_text())
        assert document["x_label"] == "m"

    def test_export_from_real_sweep(self, tmp_path):
        from repro.experiments import ExperimentConfig, figure5

        result = figure5(
            ExperimentConfig.quick(num_transactions=30, runs=1,
                                   num_processors=3),
            processors=(2, 3),
        )
        paths = export_figure(result.figure, tmp_path / "f5")
        rows = list(
            csv.reader(io.StringIO(paths[0].read_text()))
        )
        assert rows[0][0] == "processors"
        assert len(rows) == 3


class TestRoundTrips:
    """Parse exported text back and compare field-by-field with the source."""

    def test_figure_csv_round_trip_against_source(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        header, data = rows[0], rows[1:]
        assert header == [figure.x_label] + [s.label for s in figure.series]
        assert [float(row[0]) for row in data] == [
            float(x) for x in figure.x_values
        ]
        for column, series in enumerate(figure.series, start=1):
            assert [float(row[column]) for row in data] == list(series.values)

    def test_figure_json_round_trip_against_source(self, figure):
        document = json.loads(figure_to_json(figure))
        assert document["x_label"] == figure.x_label
        assert document["y_label"] == figure.y_label
        assert document["x_values"] == list(figure.x_values)
        assert document["series"] == [
            {"label": s.label, "values": list(s.values)}
            for s in figure.series
        ]
        assert document["notes"] == list(figure.notes)

    def test_figure_csv_comma_labels_survive_round_trip(self):
        figure = FigureData(
            title="T", x_label="m, processors", x_values=[1, 2]
        )
        figure.add_series("RT-SADS, SF=8", [10.0, 20.0])
        figure.add_series('quoted "label", too', [5.0, 6.0])
        text = figure_to_csv(figure)
        rows = list(csv.reader(io.StringIO(text)))
        # The csv module's RFC 4180 quoting keeps commas and quotes intact.
        assert rows[0] == [
            "m, processors",
            "RT-SADS, SF=8",
            'quoted "label", too',
        ]
        assert rows[1] == ["1", "10.0", "5.0"]

    def test_table_csv_comma_cells_survive_round_trip(self):
        headers = ["scheduler, variant", "hit %"]
        data = [["RT-SADS, lazy", 91.2], ["D-COLS, eager", 84.0]]
        rows = list(csv.reader(io.StringIO(table_to_csv(headers, data))))
        assert rows[0] == headers
        assert rows[1] == ["RT-SADS, lazy", "91.2"]
        assert rows[2] == ["D-COLS, eager", "84.0"]

    def test_table_json_round_trip_against_source(self):
        headers = ["m", "hit %"]
        data = [[2, 77.5], [4, 91.0]]
        document = json.loads(table_to_json(headers, data, title="fig"))
        assert document["headers"] == headers
        assert document["rows"] == [dict(zip(headers, row)) for row in data]
