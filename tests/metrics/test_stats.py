"""Tests for the statistics module, cross-checked against scipy."""

import math

import pytest
import scipy.stats

from repro.metrics import (
    confidence_interval,
    difference_of_means,
    mean,
    std_dev,
    student_t_cdf,
    student_t_quantile,
    variance,
)


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_unbiased(self):
        assert variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(32.0 / 7.0)
        )

    def test_variance_single_observation(self):
        assert variance([5.0]) == 0.0

    def test_std_dev(self):
        assert std_dev([1.0, 5.0]) == pytest.approx(math.sqrt(8.0))


class TestStudentT:
    @pytest.mark.parametrize("df", [1, 2, 5, 9, 30])
    @pytest.mark.parametrize("t", [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0])
    def test_cdf_matches_scipy(self, df, t):
        assert student_t_cdf(t, df) == pytest.approx(
            scipy.stats.t.cdf(t, df), abs=1e-6
        )

    @pytest.mark.parametrize("df", [2, 9, 30])
    @pytest.mark.parametrize("p", [0.005, 0.05, 0.5, 0.95, 0.995])
    def test_quantile_matches_scipy(self, df, p):
        assert student_t_quantile(p, df) == pytest.approx(
            scipy.stats.t.ppf(p, df), abs=1e-4
        )

    def test_cdf_validation(self):
        with pytest.raises(ValueError):
            student_t_cdf(0.0, 0)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            student_t_quantile(0.0, 5)


class TestConfidenceInterval:
    def test_matches_scipy_99(self):
        values = [82.0, 79.5, 84.1, 80.7, 81.9, 78.8, 83.0, 80.2, 82.5, 81.1]
        ci = confidence_interval(values, confidence=0.99)
        low, high = scipy.stats.t.interval(
            0.99,
            len(values) - 1,
            loc=scipy.stats.tmean(values),
            scale=scipy.stats.sem(values),
        )
        assert ci.low == pytest.approx(low, abs=1e-4)
        assert ci.high == pytest.approx(high, abs=1e-4)

    def test_contains(self):
        ci = confidence_interval([10.0, 12.0, 11.0], confidence=0.95)
        assert ci.contains(ci.mean)
        assert not ci.contains(ci.high + 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.0)


class TestDifferenceOfMeans:
    def test_matches_scipy_welch(self):
        a = [68.0, 71.2, 69.5, 70.1, 72.3, 67.8, 70.9, 69.0, 71.5, 70.4]
        b = [52.1, 55.4, 53.3, 54.0, 51.9, 56.2, 53.8, 52.7, 54.9, 53.1]
        result = difference_of_means(a, b)
        t_stat, p_value = scipy.stats.ttest_ind(a, b, equal_var=False)
        assert result.t_statistic == pytest.approx(t_stat, abs=1e-6)
        assert result.p_value == pytest.approx(p_value, abs=1e-6)
        assert result.significant

    def test_identical_samples_not_significant(self):
        a = [10.0, 10.0, 10.0]
        result = difference_of_means(a, list(a))
        assert result.p_value == 1.0
        assert not result.significant

    def test_zero_variance_different_means_significant(self):
        result = difference_of_means([10.0, 10.0], [20.0, 20.0])
        assert result.significant
        assert result.p_value == 0.0

    def test_significance_level_respected(self):
        a = [10.0, 11.0, 10.5, 9.9]
        b = [10.6, 11.2, 10.1, 10.9]
        strict = difference_of_means(a, b, significance_level=0.0001)
        assert not strict.significant

    def test_mean_difference_sign(self):
        result = difference_of_means([5.0, 5.2], [3.0, 3.1])
        assert result.mean_difference > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            difference_of_means([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            difference_of_means([1.0, 2.0], [1.0, 2.0], significance_level=0.0)
