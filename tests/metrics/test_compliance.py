"""Tests for deadline-compliance metrics."""

import pytest

from repro.core import make_task
from repro.metrics import (
    compliance_report,
    hit_ratio_by_tag,
    is_monotone_nondecreasing,
    processor_balance,
    scalability_gain,
)
from repro.simulator import STATUS_COMPLETED, STATUS_EXPIRED, SimulationTrace


def _trace():
    trace = SimulationTrace()
    specs = [
        # (id, tag, status, processor, phase, finished, deadline)
        (0, "indexed", STATUS_COMPLETED, 0, 0, 50.0, 100.0),
        (1, "indexed", STATUS_COMPLETED, 1, 0, 150.0, 100.0),  # late
        (2, "scan", STATUS_COMPLETED, 0, 1, 90.0, 100.0),
        (3, "scan", STATUS_EXPIRED, None, None, None, 100.0),
    ]
    for task_id, tag, status, proc, phase, finished, deadline in specs:
        task = make_task(
            task_id, processing_time=10.0, deadline=deadline, tag=tag
        )
        record = trace.add_task(task)
        record.status = status
        record.processor = proc
        record.scheduled_phase = phase
        record.finished_at = finished
    return trace


class TestComplianceReport:
    def test_counts(self):
        report = compliance_report(_trace())
        assert report.total_tasks == 4
        assert report.deadline_hits == 2
        assert report.completed == 3
        assert report.completed_late == 1
        assert report.expired == 1
        assert report.scheduled_but_missed == 1

    def test_ratios(self):
        report = compliance_report(_trace())
        assert report.hit_ratio == 0.5
        assert report.hit_percent == 50.0

    def test_empty_trace(self):
        report = compliance_report(SimulationTrace())
        assert report.hit_ratio == 0.0


class TestBreakdowns:
    def test_hit_ratio_by_tag(self):
        ratios = hit_ratio_by_tag(_trace())
        assert ratios["indexed"] == 0.5
        assert ratios["scan"] == 0.5

    def test_processor_balance(self):
        assert processor_balance(_trace(), num_processors=3) == [2, 1, 0]


class TestScalability:
    def test_gain(self):
        assert scalability_gain([20.0, 40.0, 70.0]) == 50.0
        assert scalability_gain([70.0]) == 0.0

    def test_monotone_check(self):
        assert is_monotone_nondecreasing([1.0, 2.0, 2.0, 3.0])
        assert not is_monotone_nondecreasing([1.0, 3.0, 2.0])
        assert is_monotone_nondecreasing([1.0, 3.0, 2.5], tolerance=0.5)
