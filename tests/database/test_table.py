"""Tests for sub-database storage and the local key index."""

import random

import pytest

from repro.database import Schema, SubDatabase, generate_subdatabase


@pytest.fixture
def schema():
    return Schema(num_subdatabases=2, num_attributes=3, domain_size=5)


def _rows(schema, subdb, specs):
    """specs: list of per-attribute offsets into each domain."""
    domains = schema.all_domains(subdb)
    return [
        tuple(domains[a].low + spec[a] for a in range(schema.num_attributes))
        for spec in specs
    ]


class TestSubDatabase:
    def test_construction_and_len(self, schema):
        rows = _rows(schema, 0, [(0, 1, 2), (1, 1, 1)])
        subdb = SubDatabase(0, schema, rows)
        assert len(subdb) == 2

    def test_rejects_wrong_arity(self, schema):
        with pytest.raises(ValueError):
            SubDatabase(0, schema, [(0, 1)])

    def test_rejects_values_outside_domain(self, schema):
        # Value from sub-database 1's domain in sub-database 0.
        bad_value = schema.domain_for(1, 0).low
        rows = _rows(schema, 0, [(0, 0, 0)])
        rows.append((bad_value, rows[0][1], rows[0][2]))
        with pytest.raises(ValueError):
            SubDatabase(0, schema, rows)

    def test_rejects_bad_subdb_id(self, schema):
        with pytest.raises(ValueError):
            SubDatabase(5, schema, [])

    def test_key_frequency(self, schema):
        rows = _rows(schema, 0, [(2, 0, 0), (2, 1, 1), (3, 0, 0)])
        subdb = SubDatabase(0, schema, rows)
        key_low = schema.key_domain(0).low
        assert subdb.key_frequency(key_low + 2) == 2
        assert subdb.key_frequency(key_low + 3) == 1
        assert subdb.key_frequency(key_low + 4) == 0

    def test_key_frequencies_sum_to_rows(self, schema):
        rows = _rows(schema, 0, [(i % 5, 0, 0) for i in range(9)])
        subdb = SubDatabase(0, schema, rows)
        assert sum(subdb.key_frequencies().values()) == 9

    def test_scan_conjunctive_match(self, schema):
        rows = _rows(schema, 0, [(0, 1, 2), (0, 1, 3), (1, 1, 2)])
        subdb = SubDatabase(0, schema, rows)
        d0, d1, d2 = schema.all_domains(0)
        matches = subdb.scan({0: d0.low, 1: d1.low + 1})
        assert len(matches) == 2
        matches = subdb.scan({0: d0.low, 2: d2.low + 2})
        assert len(matches) == 1

    def test_probe_with_key_checks_only_matches(self, schema):
        rows = _rows(schema, 0, [(2, 0, 0), (2, 1, 1), (3, 0, 0)])
        subdb = SubDatabase(0, schema, rows)
        key = schema.key_domain(0).low + 2
        matches, checked = subdb.probe({0: key})
        assert len(matches) == 2
        assert checked == 2  # only the key-matching tuples

    def test_probe_without_key_scans_all(self, schema):
        rows = _rows(schema, 0, [(0, 1, 0), (1, 1, 0), (2, 2, 0)])
        subdb = SubDatabase(0, schema, rows)
        d1 = schema.domain_for(0, 1)
        matches, checked = subdb.probe({1: d1.low + 1})
        assert len(matches) == 2
        assert checked == 3  # full partition scan

    def test_probe_key_plus_filter(self, schema):
        rows = _rows(schema, 0, [(2, 0, 0), (2, 1, 1)])
        subdb = SubDatabase(0, schema, rows)
        key = schema.key_domain(0).low + 2
        d1 = schema.domain_for(0, 1)
        matches, checked = subdb.probe({0: key, 1: d1.low + 1})
        assert len(matches) == 1
        assert checked == 2


class TestGeneration:
    def test_generates_requested_records(self, schema):
        subdb = generate_subdatabase(0, schema, records=30,
                                     rng=random.Random(1))
        assert len(subdb) == 30

    def test_generated_values_respect_domains(self, schema):
        subdb = generate_subdatabase(1, schema, records=50,
                                     rng=random.Random(2))
        domains = schema.all_domains(1)
        for row in subdb.rows:
            for attribute, value in enumerate(row):
                assert value in domains[attribute]

    def test_deterministic_under_seed(self, schema):
        a = generate_subdatabase(0, schema, records=20, rng=random.Random(5))
        b = generate_subdatabase(0, schema, records=20, rng=random.Random(5))
        assert a.rows == b.rows

    def test_validation(self, schema):
        with pytest.raises(ValueError):
            generate_subdatabase(0, schema, records=0)
