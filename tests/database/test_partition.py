"""Tests for the hash partitioners."""

import random

import pytest

from repro.database import (
    IntervalHashPartitioner,
    ModuloHashPartitioner,
    Schema,
    balance_report,
)


class TestIntervalHashPartitioner:
    def test_perfect_hash_matches_schema(self):
        schema = Schema(num_subdatabases=4, num_attributes=3, domain_size=7)
        partitioner = IntervalHashPartitioner(schema)
        for subdb in range(4):
            key = schema.key_domain(subdb).low
            assert partitioner.partition_of(key) == subdb

    def test_split_routes_rows_home(self):
        schema = Schema(num_subdatabases=2, num_attributes=2, domain_size=5)
        partitioner = IntervalHashPartitioner(schema)
        rows = []
        for subdb in range(2):
            d0, d1 = schema.all_domains(subdb)
            rows.append((d0.low, d1.low))
        split = partitioner.split(rows, key_attribute=0)
        assert len(split[0]) == 1 and len(split[1]) == 1


class TestModuloHashPartitioner:
    def test_partition_in_range(self):
        partitioner = ModuloHashPartitioner(8)
        for key in range(1000):
            assert 0 <= partitioner.partition_of(key) < 8

    def test_deterministic(self):
        partitioner = ModuloHashPartitioner(8)
        assert partitioner.partition_of(42) == partitioner.partition_of(42)

    def test_reasonably_balanced(self):
        partitioner = ModuloHashPartitioner(4)
        rows = [(key,) for key in range(4000)]
        split = partitioner.split(rows, key_attribute=0)
        report = balance_report(split)
        assert report["mean"] == 1000.0
        assert report["min"] > 700
        assert report["max"] < 1300

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            ModuloHashPartitioner(4).partition_of(-1)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            ModuloHashPartitioner(0)


class TestBalanceReport:
    def test_empty(self):
        assert balance_report({}) == {"min": 0.0, "max": 0.0, "mean": 0.0}

    def test_stats(self):
        partitions = {0: [1, 2, 3], 1: [1]}
        report = balance_report(partitions)
        assert report == {"min": 1.0, "max": 3.0, "mean": 2.0}
