"""Tests for the read-only transaction model."""

import pytest

from repro.database import Schema, Transaction


@pytest.fixture
def schema():
    return Schema(num_subdatabases=3, num_attributes=4, domain_size=5)


def _txn(schema, subdb, attributes, txn_id=0):
    predicates = {
        a: schema.domain_for(subdb, a).low for a in attributes
    }
    return Transaction(txn_id=txn_id, predicates=predicates)


class TestTransaction:
    def test_attributes_sorted(self, schema):
        txn = _txn(schema, 0, [3, 1])
        assert txn.attributes() == (1, 3)

    def test_gives_key(self, schema):
        assert _txn(schema, 0, [0, 2]).gives_key(schema)
        assert not _txn(schema, 0, [1, 2]).gives_key(schema)

    def test_key_value(self, schema):
        txn = _txn(schema, 1, [0])
        assert txn.key_value(schema) == schema.key_domain(1).low

    def test_key_value_raises_without_key(self, schema):
        with pytest.raises(ValueError):
            _txn(schema, 1, [2]).key_value(schema)

    def test_target_subdb_from_any_value(self, schema):
        for subdb in range(3):
            assert _txn(schema, subdb, [1, 3]).target_subdb(schema) == subdb

    def test_mixed_subdb_values_rejected(self, schema):
        predicates = {
            0: schema.domain_for(0, 0).low,
            1: schema.domain_for(1, 1).low,
        }
        txn = Transaction(txn_id=0, predicates=predicates)
        with pytest.raises(ValueError, match="disjoint"):
            txn.target_subdb(schema)

    def test_empty_predicates_rejected(self):
        with pytest.raises(ValueError):
            Transaction(txn_id=0, predicates={})

    def test_negative_attribute_rejected(self):
        with pytest.raises(ValueError):
            Transaction(txn_id=0, predicates={-1: 5})

    def test_validate_against_checks_attribute_range(self, schema):
        txn = Transaction(
            txn_id=0, predicates={7: schema.domain_for(0, 0).low}
        )
        with pytest.raises(ValueError):
            txn.validate_against(schema)

    def test_validate_against_checks_value_slice(self, schema):
        # Value belongs to attribute 1's slice but is declared for attr 0.
        txn = Transaction(
            txn_id=0, predicates={0: schema.domain_for(0, 1).low}
        )
        with pytest.raises(ValueError):
            txn.validate_against(schema)

    def test_validate_accepts_well_formed(self, schema):
        _txn(schema, 2, [0, 1, 2, 3]).validate_against(schema)
