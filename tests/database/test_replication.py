"""Tests for replica placement."""

import random

import pytest

from repro.database import place_replicas, replicas_for_rate
from repro.database.replication import replica_counts_for_rate


class TestReplicasForRate:
    def test_full_replication(self):
        assert replicas_for_rate(1.0, 10) == 10

    def test_minimum_one_copy(self):
        assert replicas_for_rate(0.01, 10) == 1

    def test_rounding(self):
        assert replicas_for_rate(0.3, 10) == 3
        assert replicas_for_rate(0.25, 10) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            replicas_for_rate(0.0, 10)
        with pytest.raises(ValueError):
            replicas_for_rate(1.5, 10)


class TestReplicaCountsForRate:
    def test_mean_tracks_target_exactly(self):
        counts = replica_counts_for_rate(0.3, 8, 10)  # target 2.4 copies
        assert sum(counts) == 24
        assert set(counts) <= {2, 3}

    def test_never_below_one_or_above_m(self):
        counts = replica_counts_for_rate(0.05, 4, 10)
        assert all(c == 1 for c in counts)
        counts = replica_counts_for_rate(1.0, 4, 10)
        assert all(c == 4 for c in counts)

    def test_integral_target(self):
        counts = replica_counts_for_rate(0.5, 10, 10)
        assert counts == [5] * 10


class TestPlacement:
    def test_every_subdb_has_a_home(self):
        placement = place_replicas(10, 4, 0.1, rng=random.Random(0))
        for subdb in range(10):
            assert placement.processors_holding(subdb)

    def test_replica_count_matches_rate(self):
        placement = place_replicas(10, 10, 0.5, rng=random.Random(0))
        assert placement.copies_per_subdatabase() == [5] * 10

    def test_full_replication_everywhere(self):
        placement = place_replicas(6, 4, 1.0, rng=random.Random(0))
        for subdb in range(6):
            assert placement.processors_holding(subdb) == frozenset(range(4))

    def test_effective_affinity_degree(self):
        placement = place_replicas(10, 10, 0.5, rng=random.Random(0))
        assert placement.effective_affinity_degree() == pytest.approx(0.5)

    def test_contents_of_inverts_placement(self):
        placement = place_replicas(8, 4, 0.4, rng=random.Random(3))
        for processor in range(4):
            for subdb in placement.contents_of(processor):
                assert processor in placement.processors_holding(subdb)

    def test_primaries_spread_round_robin(self):
        placement = place_replicas(8, 4, 0.1, rng=random.Random(0))
        for subdb in range(8):
            assert subdb % 4 in placement.processors_holding(subdb)

    def test_unknown_lookups_raise(self):
        placement = place_replicas(4, 2, 0.5, rng=random.Random(0))
        with pytest.raises(ValueError):
            placement.processors_holding(99)
        with pytest.raises(ValueError):
            placement.contents_of(5)

    def test_deterministic_under_seed(self):
        a = place_replicas(10, 5, 0.4, rng=random.Random(11))
        b = place_replicas(10, 5, 0.4, rng=random.Random(11))
        assert a.replicas == b.replicas

    def test_validation(self):
        with pytest.raises(ValueError):
            place_replicas(0, 4, 0.5)
        with pytest.raises(ValueError):
            place_replicas(4, 0, 0.5)
