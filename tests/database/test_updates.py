"""Tests for update transactions: mutation, index maintenance, routing."""

import random

import pytest

from repro.database import (
    DatabaseConfig,
    DistributedDatabase,
    GlobalIndex,
    LockManager,
    LockMode,
    Schema,
    SubDatabase,
    Transaction,
    UpdateTransaction,
    WRITE_COST_FACTOR,
)
from repro.database.executor import LockAcquisitionBlocked, TransactionExecutor


@pytest.fixture
def schema():
    return Schema(num_subdatabases=2, num_attributes=3, domain_size=5)


def _subdb(schema, specs, subdb_id=0):
    domains = schema.all_domains(subdb_id)
    rows = [
        tuple(domains[a].low + spec[a] for a in range(3)) for spec in specs
    ]
    return SubDatabase(subdb_id, schema, rows)


class TestUpdateTransactionModel:
    def test_is_write(self, schema):
        d0 = schema.domain_for(0, 0)
        read = Transaction(0, {0: d0.low})
        write = UpdateTransaction(1, {0: d0.low}, updates={1: schema.domain_for(0, 1).low})
        assert not read.is_write
        assert write.is_write

    def test_requires_updates(self, schema):
        with pytest.raises(ValueError):
            UpdateTransaction(0, {0: schema.domain_for(0, 0).low}, updates={})

    def test_cross_subdb_update_rejected(self, schema):
        txn = UpdateTransaction(
            0,
            {0: schema.domain_for(0, 0).low},
            updates={1: schema.domain_for(1, 1).low},
        )
        with pytest.raises(ValueError, match="mixes"):
            txn.target_subdb(schema)

    def test_validate_checks_update_domains(self, schema):
        # New value belongs to attribute 2's slice, declared for attr 1.
        txn = UpdateTransaction(
            0,
            {0: schema.domain_for(0, 0).low},
            updates={1: schema.domain_for(0, 2).low},
        )
        with pytest.raises(ValueError):
            txn.validate_against(schema)


class TestApplyUpdate:
    def test_rows_mutated(self, schema):
        subdb = _subdb(schema, [(0, 1, 2), (0, 2, 2), (1, 1, 1)])
        d1 = schema.domain_for(0, 1)
        changed, deltas = subdb.apply_update(
            {0: schema.domain_for(0, 0).low}, {1: d1.low + 4}
        )
        assert changed == 2
        assert deltas == {}  # key attribute untouched
        matches = subdb.scan({1: d1.low + 4})
        assert len(matches) == 2

    def test_key_update_returns_deltas_and_rebuilds_index(self, schema):
        subdb = _subdb(schema, [(0, 1, 2), (0, 2, 2)])
        key_domain = schema.key_domain(0)
        changed, deltas = subdb.apply_update(
            {0: key_domain.low}, {0: key_domain.low + 3}
        )
        assert changed == 2
        assert deltas == {key_domain.low: -2, key_domain.low + 3: +2}
        assert subdb.key_frequency(key_domain.low) == 0
        assert subdb.key_frequency(key_domain.low + 3) == 2

    def test_noop_update_changes_nothing(self, schema):
        subdb = _subdb(schema, [(0, 1, 2)])
        d1 = schema.domain_for(0, 1)
        changed, deltas = subdb.apply_update(
            {1: d1.low + 1}, {1: d1.low + 1}  # same value
        )
        assert changed == 0
        assert deltas == {}

    def test_no_match_update(self, schema):
        subdb = _subdb(schema, [(0, 1, 2)])
        d1 = schema.domain_for(0, 1)
        changed, deltas = subdb.apply_update({1: d1.low + 4}, {1: d1.low})
        assert changed == 0


class TestGlobalIndexDeltas:
    def test_adjust_moves_frequency(self, schema):
        index = GlobalIndex(schema)
        key = schema.key_domain(0).low
        index.add(key, subdb=0, frequency=3)
        index.apply_deltas({key: -2, key + 1: +2})
        assert index.frequency(key) == 1
        assert index.frequency(key + 1) == 2

    def test_adjust_removes_zero_entries(self, schema):
        index = GlobalIndex(schema)
        key = schema.key_domain(0).low
        index.add(key, subdb=0, frequency=2)
        index.adjust(key, -2)
        assert index.lookup(key) is None

    def test_adjust_validation(self, schema):
        index = GlobalIndex(schema)
        key = schema.key_domain(0).low
        with pytest.raises(ValueError):
            index.adjust(key, -1)
        index.add(key, subdb=0, frequency=1)
        with pytest.raises(ValueError):
            index.adjust(key, -5)


class TestExecuteUpdate:
    def _database(self):
        return DistributedDatabase.build(
            config=DatabaseConfig(
                num_subdatabases=3, records_per_subdb=40, domain_size=5
            ),
            num_processors=3,
            replication_rate=0.5,
            rng=random.Random(3),
        )

    def test_update_through_executor_maintains_global_index(self):
        database = self._database()
        executor = database.global_executor()
        executor.global_index = database.index
        key = next(
            k for k in database.subdatabases[0].key_frequencies()
        )
        new_key = next(
            v
            for v in range(*[database.schema.key_domain(0).low,
                             database.schema.key_domain(0).high])
            if v != key
        )
        txn = UpdateTransaction(0, {0: key}, updates={0: new_key})
        before_total = database.index.total_indexed_tuples()
        outcome = executor.execute(txn)
        assert outcome.rows_changed > 0
        assert database.index.total_indexed_tuples() == before_total
        assert database.index.frequency(key) == 0 or (
            database.index.frequency(key) < outcome.rows_changed + 1
        )

    def test_update_cost_includes_write_factor(self):
        database = self._database()
        executor = database.global_executor()
        key = next(iter(database.subdatabases[0].key_frequencies()))
        other = database.schema.domain_for(0, 1)
        txn = UpdateTransaction(0, {0: key}, updates={1: other.low})
        outcome = executor.execute_update(txn)
        expected = database.config.check_cost * (
            outcome.tuples_checked + WRITE_COST_FACTOR * outcome.rows_changed
        )
        assert outcome.cost == pytest.approx(expected)

    def test_estimate_upper_bounds_update_cost(self):
        database = self._database()
        executor = database.global_executor()
        key = next(iter(database.subdatabases[0].key_frequencies()))
        txn = UpdateTransaction(
            0, {0: key}, updates={1: database.schema.domain_for(0, 1).low}
        )
        estimate = database.cost_model.estimate(txn)
        outcome = executor.execute_update(txn)
        assert outcome.cost <= estimate.cost + 1e-9

    def test_locked_executor_blocks_conflicting_write(self):
        database = self._database()
        lm = LockManager()
        executor = TransactionExecutor(
            database.schema,
            database.subdatabases,
            lock_manager=lm,
        )
        key = next(iter(database.subdatabases[0].key_frequencies()))
        # Another transaction holds the partition exclusively.
        lm.acquire(0, owner=999, mode=LockMode.EXCLUSIVE)
        txn = UpdateTransaction(
            1, {0: key}, updates={1: database.schema.domain_for(0, 1).low}
        )
        with pytest.raises(LockAcquisitionBlocked):
            executor.execute(txn)

    def test_locked_executor_releases_after_read(self):
        database = self._database()
        lm = LockManager()
        executor = TransactionExecutor(
            database.schema, database.subdatabases, lock_manager=lm
        )
        key = next(iter(database.subdatabases[0].key_frequencies()))
        executor.execute(Transaction(5, {0: key}))
        assert lm.locked_resources() == set()


class TestWriteRouting:
    def test_write_affinity_is_primary_only(self):
        database = DistributedDatabase.build(
            config=DatabaseConfig(num_subdatabases=4, records_per_subdb=20),
            num_processors=4,
            replication_rate=1.0,  # reads can go anywhere
            rng=random.Random(0),
        )
        key = next(iter(database.subdatabases[2].key_frequencies()))
        read = Transaction(0, {0: key})
        write = UpdateTransaction(
            1, {0: key}, updates={1: database.schema.domain_for(2, 1).low}
        )
        assert len(database.affinity_of(read)) == 4
        assert database.affinity_of(write) == frozenset(
            {database.placement.primary_of(2)}
        )

    def test_write_task_tagged_update(self):
        database = DistributedDatabase.build(
            config=DatabaseConfig(num_subdatabases=2, records_per_subdb=20),
            num_processors=2,
            replication_rate=1.0,
            rng=random.Random(0),
        )
        key = next(iter(database.subdatabases[0].key_frequencies()))
        write = UpdateTransaction(
            1, {0: key}, updates={1: database.schema.domain_for(0, 1).low}
        )
        task = database.to_task(write, deadline=1_000.0)
        assert task.tag == "update"
        assert len(task.affinity) == 1
