"""Property-based tests on database invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.database import (
    DatabaseConfig,
    DistributedDatabase,
    GlobalIndex,
    Schema,
    Transaction,
    generate_subdatabase,
)

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def schemas(draw):
    return Schema(
        num_subdatabases=draw(st.integers(min_value=1, max_value=6)),
        num_attributes=draw(st.integers(min_value=1, max_value=8)),
        domain_size=draw(st.integers(min_value=1, max_value=20)),
        key_attribute=0,
    )


class TestSchemaProperties:
    @settings(**SETTINGS)
    @given(schema=schemas(), data=st.data())
    def test_value_decode_roundtrip(self, schema, data):
        subdb = data.draw(
            st.integers(min_value=0, max_value=schema.num_subdatabases - 1)
        )
        attribute = data.draw(
            st.integers(min_value=0, max_value=schema.num_attributes - 1)
        )
        offset = data.draw(
            st.integers(min_value=0, max_value=schema.domain_size - 1)
        )
        value = schema.domain_for(subdb, attribute).low + offset
        assert schema.subdb_of_value(value) == subdb
        assert schema.attribute_of_value(value) == attribute


class TestIndexProperties:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        records=st.integers(min_value=1, max_value=80),
    )
    def test_index_frequencies_sum_to_records(self, seed, records):
        schema = Schema(num_subdatabases=3, num_attributes=3, domain_size=6)
        subdbs = [
            generate_subdatabase(s, schema, records, rng=random.Random(seed + s))
            for s in range(3)
        ]
        index = GlobalIndex.build(schema, subdbs)
        assert index.total_indexed_tuples() == 3 * records

    @settings(**SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_index_frequency_equals_actual_scan_count(self, seed):
        schema = Schema(num_subdatabases=2, num_attributes=2, domain_size=5)
        subdbs = [
            generate_subdatabase(s, schema, 40, rng=random.Random(seed + s))
            for s in range(2)
        ]
        index = GlobalIndex.build(schema, subdbs)
        for subdb in subdbs:
            domain = schema.key_domain(subdb.subdb_id)
            for value in range(domain.low, domain.high):
                actual = sum(1 for row in subdb.rows if row[0] == value)
                assert index.frequency(value) == actual


class TestEstimateProperties:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        replication=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_estimate_upper_bounds_execution(self, seed, replication):
        """Worst-case estimates dominate actual work for random queries."""
        rng = random.Random(seed)
        database = DistributedDatabase.build(
            config=DatabaseConfig(
                num_subdatabases=3,
                records_per_subdb=30,
                num_attributes=4,
                domain_size=6,
            ),
            num_processors=4,
            replication_rate=replication,
            rng=rng,
        )
        executor = database.global_executor()
        for txn_id in range(20):
            subdb = rng.randrange(3)
            attributes = rng.sample(range(4), rng.randint(1, 4))
            predicates = {
                a: database.schema.domain_for(subdb, a).sample(rng)
                for a in attributes
            }
            txn = Transaction(txn_id, predicates)
            outcome = executor.execute(txn)
            assert outcome.cost <= database.estimate_cost(txn) + 1e-9

    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        replication=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_affinity_nonempty_and_within_machine(self, seed, replication):
        rng = random.Random(seed)
        database = DistributedDatabase.build(
            config=DatabaseConfig(num_subdatabases=4, records_per_subdb=10),
            num_processors=5,
            replication_rate=replication,
            rng=rng,
        )
        for subdb in range(4):
            key = database.schema.key_domain(subdb).low
            txn = Transaction(0, {0: key})
            affinity = database.affinity_of(txn)
            assert affinity
            assert all(0 <= p < 5 for p in affinity)
