"""Tests for the Execution_Cost(q) estimator (paper Section 5)."""

import random

import pytest

from repro.database import (
    GlobalIndex,
    Schema,
    Transaction,
    TransactionCostModel,
    generate_subdatabase,
)


@pytest.fixture
def setup():
    schema = Schema(num_subdatabases=2, num_attributes=3, domain_size=4)
    subdbs = [
        generate_subdatabase(s, schema, records=40, rng=random.Random(s))
        for s in range(2)
    ]
    index = GlobalIndex.build(schema, subdbs)
    model = TransactionCostModel(
        schema=schema, index=index, records_per_subdb=40, check_cost=2.0
    )
    return schema, subdbs, index, model


def _key_txn(schema, subdb, key_offset=0):
    return Transaction(
        txn_id=0, predicates={0: schema.key_domain(subdb).low + key_offset}
    )


def _scan_txn(schema, subdb):
    return Transaction(
        txn_id=1, predicates={1: schema.domain_for(subdb, 1).low}
    )


class TestEstimate:
    def test_key_transaction_uses_index_frequency(self, setup):
        schema, subdbs, index, model = setup
        txn = _key_txn(schema, 0)
        estimate = model.estimate(txn)
        assert estimate.used_index
        frequency = index.frequency(txn.key_value(schema))
        assert estimate.tuples_to_check == max(1, frequency)
        assert estimate.cost == 2.0 * estimate.tuples_to_check

    def test_scan_transaction_costs_full_partition(self, setup):
        schema, _, _, model = setup
        estimate = model.estimate(_scan_txn(schema, 1))
        assert not estimate.used_index
        assert estimate.tuples_to_check == 40  # r/d
        assert estimate.cost == 80.0
        assert estimate.target_subdb == 1

    def test_absent_key_still_costs_one_probe(self, setup):
        schema, subdbs, index, model = setup
        # Find a key value with frequency zero (domain size 4, 40 rows:
        # may not exist; construct by checking).
        domain = schema.key_domain(0)
        absent = [
            v for v in range(domain.low, domain.high)
            if index.frequency(v) == 0
        ]
        if not absent:
            pytest.skip("all key values present in generated data")
        txn = Transaction(txn_id=0, predicates={0: absent[0]})
        estimate = model.estimate(txn)
        assert estimate.tuples_to_check == 1
        assert estimate.cost == 2.0

    def test_estimates_are_positive(self, setup):
        """Tasks require p > 0; the estimator must never emit zero."""
        schema, _, _, model = setup
        for subdb in range(2):
            assert model.estimate(_key_txn(schema, subdb)).cost > 0
            assert model.estimate(_scan_txn(schema, subdb)).cost > 0

    def test_validation(self, setup):
        schema, _, index, _ = setup
        with pytest.raises(ValueError):
            TransactionCostModel(schema, index, records_per_subdb=0)
        with pytest.raises(ValueError):
            TransactionCostModel(
                schema, index, records_per_subdb=10, check_cost=0.0
            )
