"""Tests for the schema and disjoint domain layout."""

import pytest

from repro.database import Domain, Schema


class TestDomain:
    def test_contains(self):
        domain = Domain(10, 20)
        assert 10 in domain
        assert 19 in domain
        assert 20 not in domain
        assert 9 not in domain

    def test_size(self):
        assert Domain(10, 20).size == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Domain(10, 10)

    def test_sample_within_domain(self):
        import random

        domain = Domain(5, 8)
        rng = random.Random(0)
        assert all(domain.sample(rng) in domain for _ in range(50))


class TestSchemaLayout:
    def setup_method(self):
        self.schema = Schema(
            num_subdatabases=3, num_attributes=4, domain_size=10
        )

    def test_domains_disjoint_across_subdatabases(self):
        """Paper: attribute domains are disjoint among sub-databases."""
        seen = set()
        for subdb in range(3):
            for attribute in range(4):
                domain = self.schema.domain_for(subdb, attribute)
                values = set(range(domain.low, domain.high))
                assert not values & seen
                seen |= values

    def test_domains_disjoint_across_attributes(self):
        for subdb in range(3):
            domains = self.schema.all_domains(subdb)
            for i, a in enumerate(domains):
                for b in domains[i + 1:]:
                    assert a.high <= b.low or b.high <= a.low

    def test_subdb_of_value_inverts_domain_for(self):
        for subdb in range(3):
            for attribute in range(4):
                domain = self.schema.domain_for(subdb, attribute)
                assert self.schema.subdb_of_value(domain.low) == subdb
                assert self.schema.subdb_of_value(domain.high - 1) == subdb

    def test_attribute_of_value_inverts(self):
        for subdb in range(3):
            for attribute in range(4):
                domain = self.schema.domain_for(subdb, attribute)
                assert self.schema.attribute_of_value(domain.low) == attribute

    def test_key_domain(self):
        schema = Schema(num_subdatabases=2, num_attributes=4, domain_size=10,
                        key_attribute=2)
        assert schema.key_domain(1) == schema.domain_for(1, 2)

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            self.schema.subdb_of_value(3 * 4 * 10)
        with pytest.raises(ValueError):
            self.schema.subdb_of_value(-1)

    def test_out_of_range_subdb_or_attribute(self):
        with pytest.raises(ValueError):
            self.schema.domain_for(3, 0)
        with pytest.raises(ValueError):
            self.schema.domain_for(0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Schema(num_subdatabases=0)
        with pytest.raises(ValueError):
            Schema(num_subdatabases=1, num_attributes=0)
        with pytest.raises(ValueError):
            Schema(num_subdatabases=1, domain_size=0)
        with pytest.raises(ValueError):
            Schema(num_subdatabases=1, num_attributes=3, key_attribute=3)
