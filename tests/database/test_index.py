"""Tests for the global index file."""

import random

import pytest

from repro.database import GlobalIndex, Schema, generate_subdatabase


@pytest.fixture
def schema():
    return Schema(num_subdatabases=3, num_attributes=3, domain_size=5)


@pytest.fixture
def subdatabases(schema):
    return [
        generate_subdatabase(s, schema, records=40, rng=random.Random(s))
        for s in range(3)
    ]


class TestBuild:
    def test_total_indexed_tuples_equals_global_records(
        self, schema, subdatabases
    ):
        index = GlobalIndex.build(schema, subdatabases)
        assert index.total_indexed_tuples() == 120

    def test_frequency_matches_local_index(self, schema, subdatabases):
        index = GlobalIndex.build(schema, subdatabases)
        for subdb in subdatabases:
            for key, frequency in subdb.key_frequencies().items():
                assert index.frequency(key) == frequency

    def test_lookup_returns_owner(self, schema, subdatabases):
        index = GlobalIndex.build(schema, subdatabases)
        for subdb in subdatabases:
            key = next(iter(subdb.key_frequencies()))
            entry = index.lookup(key)
            assert entry.subdb == subdb.subdb_id

    def test_absent_key(self, schema):
        index = GlobalIndex(schema)
        assert index.lookup(0) is None
        assert index.frequency(0) == 0

    def test_mean_frequency(self, schema, subdatabases):
        index = GlobalIndex.build(schema, subdatabases)
        assert index.mean_frequency() == pytest.approx(
            120 / len(index)
        )

    def test_mean_frequency_empty(self, schema):
        assert GlobalIndex(schema).mean_frequency() == 0.0


class TestAdd:
    def test_rejects_wrong_owner(self, schema):
        index = GlobalIndex(schema)
        key_of_subdb1 = schema.key_domain(1).low
        with pytest.raises(ValueError, match="disjoint"):
            index.add(key_of_subdb1, subdb=0, frequency=3)

    def test_rejects_duplicate_key(self, schema):
        index = GlobalIndex(schema)
        key = schema.key_domain(0).low
        index.add(key, subdb=0, frequency=1)
        with pytest.raises(ValueError):
            index.add(key, subdb=0, frequency=2)

    def test_rejects_nonpositive_frequency(self, schema):
        index = GlobalIndex(schema)
        with pytest.raises(ValueError):
            index.add(schema.key_domain(0).low, subdb=0, frequency=0)

    def test_subdb_of_decodes_unindexed_keys(self, schema):
        index = GlobalIndex(schema)
        assert index.subdb_of(schema.key_domain(2).low) == 2
