"""Tests for the distributed-database facade."""

import random

import pytest

from repro.database import DatabaseConfig, DistributedDatabase, Transaction


@pytest.fixture
def database():
    return DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=4,
            records_per_subdb=50,
            num_attributes=5,
            domain_size=10,
        ),
        num_processors=4,
        replication_rate=0.5,
        rng=random.Random(7),
    )


class TestBuild:
    def test_all_partitions_populated(self, database):
        assert len(database.subdatabases) == 4
        assert all(len(s) == 50 for s in database.subdatabases.values())

    def test_index_covers_global_database(self, database):
        assert database.index.total_indexed_tuples() == 200

    def test_config_totals(self):
        config = DatabaseConfig(num_subdatabases=4, records_per_subdb=50)
        assert config.total_records == 200

    def test_placement_respects_rate(self, database):
        copies = database.placement.copies_per_subdatabase()
        assert all(c == 2 for c in copies)  # 0.5 * 4 processors

    def test_deterministic_build(self):
        def build():
            return DistributedDatabase.build(
                config=DatabaseConfig(num_subdatabases=2, records_per_subdb=20),
                num_processors=2,
                replication_rate=0.5,
                rng=random.Random(3),
            )

        a, b = build(), build()
        assert a.subdatabases[0].rows == b.subdatabases[0].rows
        assert a.placement.replicas == b.placement.replicas


class TestSchedulerViews:
    def _key_txn(self, database, subdb=0):
        key = database.schema.key_domain(subdb).low
        return Transaction(txn_id=0, predicates={0: key})

    def test_affinity_matches_placement(self, database):
        txn = self._key_txn(database, subdb=1)
        assert database.affinity_of(txn) == (
            database.placement.processors_holding(1)
        )

    def test_to_task_fields(self, database):
        txn = self._key_txn(database)
        task = database.to_task(txn, deadline=500.0)
        assert task.task_id == txn.txn_id
        assert task.deadline == 500.0
        assert task.processing_time == database.estimate_cost(txn)
        assert task.affinity == database.affinity_of(txn)
        assert task.tag == "indexed"

    def test_scan_task_tagged(self, database):
        value = database.schema.domain_for(2, 1).low
        txn = Transaction(txn_id=1, predicates={1: value})
        task = database.to_task(txn, deadline=5_000.0)
        assert task.tag == "scan"
        assert task.processing_time == 50.0  # r/d * k


class TestNodeViews:
    def test_executor_for_holds_local_replicas_only(self, database):
        for processor in range(4):
            executor = database.executor_for(processor)
            assert set(executor.subdatabases) == set(
                database.placement.contents_of(processor)
            )

    def test_affine_processor_can_execute(self, database):
        txn = self._txn_for_subdb(database, 0)
        processor = next(iter(database.affinity_of(txn)))
        outcome = database.executor_for(processor).execute(txn)
        assert outcome.subdb == 0

    def test_non_affine_processor_cannot_execute_locally(self, database):
        txn = self._txn_for_subdb(database, 0)
        holders = database.affinity_of(txn)
        outsiders = set(range(4)) - set(holders)
        if not outsiders:
            pytest.skip("fully replicated")
        with pytest.raises(LookupError):
            database.executor_for(next(iter(outsiders))).execute(txn)

    def test_global_executor_serves_everything(self, database):
        txn = self._txn_for_subdb(database, 3)
        outcome = database.global_executor().execute(txn)
        assert outcome.subdb == 3

    @staticmethod
    def _txn_for_subdb(database, subdb):
        key = database.schema.key_domain(subdb).low
        return Transaction(txn_id=0, predicates={0: key})
