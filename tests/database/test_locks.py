"""Tests for the sub-database lock manager."""

import pytest

from repro.database import LockError, LockManager, LockMode


class TestBasicModes:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.acquire(1, owner=11, mode=LockMode.SHARED)
        assert set(lm.holders_of(1)) == {10, 11}

    def test_exclusive_blocks_everyone(self):
        lm = LockManager()
        assert lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        assert not lm.acquire(1, owner=11, mode=LockMode.SHARED)
        assert not lm.acquire(1, owner=12, mode=LockMode.EXCLUSIVE)
        assert lm.waiters_of(1) == [11, 12]

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert not lm.acquire(1, owner=11, mode=LockMode.EXCLUSIVE)

    def test_different_resources_independent(self):
        lm = LockManager()
        assert lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        assert lm.acquire(2, owner=11, mode=LockMode.EXCLUSIVE)

    def test_reacquire_is_noop_grant(self):
        lm = LockManager()
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)

    def test_holds(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.holds(1, 10) is LockMode.SHARED
        assert lm.holds(1, 99) is None
        assert lm.holds(9, 10) is None


class TestRelease:
    def test_release_grants_next_waiter(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        lm.acquire(1, owner=11, mode=LockMode.EXCLUSIVE)
        granted = lm.release(1, owner=10)
        assert granted == [(11, LockMode.EXCLUSIVE)]
        assert lm.holds(1, 11) is LockMode.EXCLUSIVE

    def test_release_cascades_shared_grants(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        lm.acquire(1, owner=11, mode=LockMode.SHARED)
        lm.acquire(1, owner=12, mode=LockMode.SHARED)
        lm.acquire(1, owner=13, mode=LockMode.EXCLUSIVE)
        granted = lm.release(1, owner=10)
        assert granted == [(11, LockMode.SHARED), (12, LockMode.SHARED)]
        assert lm.waiters_of(1) == [13]

    def test_foreign_release_raises(self):
        lm = LockManager()
        with pytest.raises(LockError):
            lm.release(1, owner=10)

    def test_release_all(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        lm.acquire(2, owner=10, mode=LockMode.SHARED)
        lm.acquire(1, owner=11, mode=LockMode.SHARED)
        granted = lm.release_all(owner=10)
        assert (1, 11, LockMode.SHARED) in granted
        assert lm.holds(1, 10) is None
        assert lm.holds(2, 10) is None

    def test_empty_resources_garbage_collected(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.SHARED)
        lm.release(1, owner=10)
        assert lm.locked_resources() == set()


class TestFairness:
    def test_new_reader_waits_behind_queued_writer(self):
        """FIFO fairness: readers cannot starve a waiting writer."""
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert not lm.acquire(1, owner=11, mode=LockMode.EXCLUSIVE)
        # A new reader must queue behind the writer even though it is
        # compatible with the current holder.
        assert not lm.acquire(1, owner=12, mode=LockMode.SHARED)
        granted = lm.release(1, owner=10)
        assert granted[0] == (11, LockMode.EXCLUSIVE)

    def test_waiters_granted_in_order(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        for owner in (11, 12, 13):
            lm.acquire(1, owner=owner, mode=LockMode.EXCLUSIVE)
        order = []
        current = 10
        for _ in range(3):
            granted = lm.release(1, owner=current)
            assert len(granted) == 1
            current = granted[0][0]
            order.append(current)
        assert order == [11, 12, 13]


class TestUpgrade:
    def test_sole_holder_upgrades_immediately(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        assert lm.holds(1, 10) is LockMode.EXCLUSIVE

    def test_upgrade_waits_for_other_readers(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.SHARED)
        lm.acquire(1, owner=11, mode=LockMode.SHARED)
        assert not lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        granted = lm.release(1, owner=11)
        assert granted == [(10, LockMode.EXCLUSIVE)]

    def test_exclusive_holder_gets_shared_for_free(self):
        lm = LockManager()
        lm.acquire(1, owner=10, mode=LockMode.EXCLUSIVE)
        assert lm.acquire(1, owner=10, mode=LockMode.SHARED)
        assert lm.holds(1, 10) is LockMode.EXCLUSIVE


class TestSingleResourceNoDeadlock:
    def test_chain_always_drains(self):
        """With one resource per transaction, every queue eventually
        drains — the structural no-deadlock argument, exercised."""
        lm = LockManager()
        import random

        rng = random.Random(0)
        owners = list(range(50))
        lm.acquire(7, owner=owners[0], mode=LockMode.EXCLUSIVE)
        for owner in owners[1:]:
            lm.acquire(
                7,
                owner=owner,
                mode=rng.choice([LockMode.SHARED, LockMode.EXCLUSIVE]),
            )
        completed = set()
        active = {owners[0]}
        while active:
            owner = active.pop()
            for new_owner, _ in lm.release(7, owner):
                active.add(new_owner)
            completed.add(owner)
        assert completed == set(owners)
        assert lm.locked_resources() == set()
