"""Property-based tests on the lock manager and update consistency."""

import random

from hypothesis import given, settings, strategies as st

from repro.database import (
    GlobalIndex,
    LockManager,
    LockMode,
    Schema,
    generate_subdatabase,
)

SETTINGS = dict(max_examples=40, deadline=None)


class TestLockManagerProperties:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=99_999),
        num_owners=st.integers(min_value=1, max_value=12),
        steps=st.integers(min_value=1, max_value=120),
    )
    def test_invariants_under_random_traffic(self, seed, num_owners, steps):
        """At all times: at most one X holder, no S+X mix, FIFO drains."""
        rng = random.Random(seed)
        lm = LockManager()
        held = {}  # owner -> resource currently held or waited on
        for _ in range(steps):
            owner = rng.randrange(num_owners)
            if owner in held and rng.random() < 0.5:
                resource = held.pop(owner)
                if lm.holds(resource, owner) is not None:
                    for new_owner, _ in lm.release(resource, owner):
                        pass
            elif owner not in held:
                resource = rng.randrange(3)
                mode = rng.choice([LockMode.SHARED, LockMode.EXCLUSIVE])
                lm.acquire(resource, owner, mode)
                held[owner] = resource
            # Invariant check on every step.
            for resource in lm.locked_resources():
                holders = lm.holders_of(resource)
                modes = list(holders.values())
                if LockMode.EXCLUSIVE in modes:
                    assert len(holders) == 1
        # Drain everything: releasing all held locks must empty the manager
        # eventually (single-resource transactions cannot deadlock).
        for _ in range(num_owners * 4):
            progressed = False
            for resource in list(lm.locked_resources()):
                for owner in list(lm.holders_of(resource)):
                    lm.release(resource, owner)
                    progressed = True
            if not lm.locked_resources():
                break
            assert progressed
        assert lm.locked_resources() == set()


class TestUpdateIndexConsistency:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=9_999),
        num_updates=st.integers(min_value=1, max_value=15),
    )
    def test_incremental_index_matches_rebuild(self, seed, num_updates):
        """After random updates, incremental global-index maintenance gives
        exactly the same index a from-scratch rebuild would."""
        schema = Schema(num_subdatabases=2, num_attributes=3, domain_size=4)
        rng = random.Random(seed)
        subdbs = [
            generate_subdatabase(s, schema, 30, rng=random.Random(seed + s))
            for s in range(2)
        ]
        index = GlobalIndex.build(schema, subdbs)
        for _ in range(num_updates):
            subdb = rng.choice(subdbs)
            sid = subdb.subdb_id
            predicate_attr = rng.randrange(3)
            update_attr = rng.randrange(3)
            predicates = {
                predicate_attr: schema.domain_for(sid, predicate_attr).sample(rng)
            }
            updates = {
                update_attr: schema.domain_for(sid, update_attr).sample(rng)
            }
            _, deltas = subdb.apply_update(predicates, updates)
            index.apply_deltas(deltas)
        rebuilt = GlobalIndex.build(schema, subdbs)
        for subdb in subdbs:
            domain = schema.key_domain(subdb.subdb_id)
            for value in range(domain.low, domain.high):
                assert index.frequency(value) == rebuilt.frequency(value)
        assert index.total_indexed_tuples() == 60
