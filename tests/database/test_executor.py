"""Tests for transaction execution against local replicas."""

import random

import pytest

from repro.database import (
    Schema,
    Transaction,
    TransactionExecutor,
    generate_subdatabase,
)


@pytest.fixture
def schema():
    return Schema(num_subdatabases=2, num_attributes=3, domain_size=4)


@pytest.fixture
def subdbs(schema):
    return {
        s: generate_subdatabase(s, schema, records=30, rng=random.Random(s))
        for s in range(2)
    }


class TestExecutor:
    def test_key_probe_counts_and_matches(self, schema, subdbs):
        executor = TransactionExecutor(schema, subdbs)
        subdb = subdbs[0]
        key = next(iter(subdb.key_frequencies()))
        outcome = executor.execute(Transaction(0, {0: key}))
        assert outcome.subdb == 0
        assert outcome.match_count == subdb.key_frequency(key)
        assert outcome.tuples_checked == subdb.key_frequency(key)

    def test_scan_checks_whole_partition(self, schema, subdbs):
        executor = TransactionExecutor(schema, subdbs)
        value = schema.domain_for(1, 2).low
        outcome = executor.execute(Transaction(0, {2: value}))
        assert outcome.tuples_checked == 30
        assert all(row[2] == value for row in outcome.matches)

    def test_missing_replica_raises(self, schema, subdbs):
        executor = TransactionExecutor(schema, {0: subdbs[0]})
        value = schema.domain_for(1, 1).low
        with pytest.raises(LookupError):
            executor.execute(Transaction(0, {1: value}))

    def test_cost_scales_with_check_cost(self, schema, subdbs):
        executor = TransactionExecutor(schema, subdbs, check_cost=3.0)
        value = schema.domain_for(0, 1).low
        outcome = executor.execute(Transaction(0, {1: value}))
        assert outcome.cost == 3.0 * outcome.tuples_checked

    def test_check_cost_validation(self, schema, subdbs):
        with pytest.raises(ValueError):
            TransactionExecutor(schema, subdbs, check_cost=0.0)


class TestEstimatorAgreement:
    def test_actual_never_exceeds_estimate(self, schema, subdbs):
        """The host's worst-case estimate upper-bounds real checking work."""
        from repro.database import GlobalIndex, TransactionCostModel

        index = GlobalIndex.build(schema, subdbs.values())
        model = TransactionCostModel(schema, index, records_per_subdb=30)
        executor = TransactionExecutor(schema, subdbs)
        rng = random.Random(99)
        for txn_id in range(100):
            subdb = rng.randrange(2)
            count = rng.randint(1, 3)
            attributes = rng.sample(range(3), count)
            predicates = {
                a: schema.domain_for(subdb, a).sample(rng) for a in attributes
            }
            txn = Transaction(txn_id, predicates)
            assert executor.verify_estimate(txn, model)
