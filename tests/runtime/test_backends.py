"""The backend registry and the runner's dispatch through it."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_once
from repro.runtime import (
    BACKEND_NAMES,
    ExecutionBackend,
    RunReport,
    get_backend,
    register_backend,
)


class TestRegistry:
    def test_builtins_resolve_lazily_by_name(self):
        assert set(BACKEND_NAMES) == {"sim", "cluster", "service", "sharded"}
        backend = get_backend("sim")
        assert isinstance(backend, ExecutionBackend)
        assert backend.name == "sim"

    def test_none_means_sim(self):
        assert get_backend(None).name == "sim"

    def test_instances_pass_through_unwrapped(self):
        backend = get_backend("sim")
        assert get_backend(backend) is backend

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="unknown backend 'quantum'"):
            get_backend("quantum")

    def test_registering_a_custom_backend(self):
        class NullBackend(ExecutionBackend):
            name = "null-test"

            def run_once(self, config, scheduler_name, seed, **kwargs):
                raise AssertionError("never run")

        register_backend(NullBackend.name, NullBackend)
        assert isinstance(get_backend("null-test"), NullBackend)

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("", lambda: None)


class RecordingBackend(ExecutionBackend):
    """Captures dispatch arguments instead of running anything."""

    name = "recording-test"

    def __init__(self):
        self.calls = []

    def run_once(self, config, scheduler_name, seed, **kwargs):
        self.calls.append((config, scheduler_name, seed))
        return RunReport(
            backend=self.name,
            scheduler_name=scheduler_name,
            num_workers=config.num_processors,
            seed=seed,
            total_tasks=0,
            guaranteed=0,
            completed=0,
            deadline_hits=0,
            completed_late=0,
            expired=0,
            failed=0,
            guaranteed_violations=0,
            reschedules=0,
            workers_lost=0,
            makespan=0.0,
            wall_seconds=0.0,
        )


class TestRunnerDispatch:
    def test_run_once_follows_config_backend(self):
        backend = RecordingBackend()
        register_backend(backend.name, lambda: backend)
        config = ExperimentConfig.quick(runs=1).with_backend(backend.name)
        report = run_once(config, "rtsads", 7)
        assert backend.calls == [(config, "rtsads", 7)]
        assert report.backend == backend.name

    def test_explicit_backend_overrides_config(self):
        backend = RecordingBackend()
        config = ExperimentConfig.quick(runs=1)  # backend stays "sim"
        report = run_once(config, "dcols", 3, backend=backend)
        assert backend.calls == [(config, "dcols", 3)]
        assert report.scheduler_name == "dcols"

    def test_default_path_still_runs_the_simulator(self):
        config = ExperimentConfig.quick(
            num_transactions=20, runs=1, num_processors=2
        )
        report = run_once(config, "rtsads", config.base_seed)
        assert report.backend == "sim"
        assert report.total_tasks == 20
        assert report.trace.total_tasks() == 20  # sim extra present


class TestExperimentConfigBackend:
    def test_default_and_override(self):
        config = ExperimentConfig.quick()
        assert config.backend == "sim"
        assert config.with_backend("cluster").backend == "cluster"

    def test_empty_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig.quick(backend="")


class TestClusterBackendContract:
    def test_scheduler_overrides_are_refused_not_ignored(self):
        from repro.runtime.live import ClusterBackend

        with pytest.raises(NotImplementedError, match="simulator-only"):
            ClusterBackend().run_once(
                ExperimentConfig.quick(runs=1),
                "rtsads",
                1,
                evaluator=object(),
            )


class TestServiceBackendContract:
    def test_resolves_by_name(self):
        backend = get_backend("service")
        assert isinstance(backend, ExecutionBackend)
        assert backend.name == "service"

    def test_scheduler_overrides_are_refused_not_ignored(self):
        from repro.runtime.service import ServiceBackend

        with pytest.raises(NotImplementedError, match="simulator-only"):
            ServiceBackend().run_once(
                ExperimentConfig.quick(runs=1),
                "rtsads",
                1,
                quantum_policy=object(),
            )

    def test_with_port_clones_with_every_override_intact(self):
        from repro.runtime.service import ServiceBackend

        backend = ServiceBackend(
            drain_grace_seconds=2.0, submissions=8, seconds_per_unit=0.01
        )
        pinned = backend.with_port(4242)
        assert pinned is not backend
        assert pinned._cluster_overrides["port"] == 4242
        assert pinned._cluster_overrides["seconds_per_unit"] == 0.01
        assert pinned._service_overrides["drain_grace_seconds"] == 2.0
        assert pinned._load_overrides["submissions"] == 8
        assert "port" not in backend._cluster_overrides

    def test_unknown_override_rejected(self):
        from repro.runtime.service import ServiceBackend

        with pytest.raises(TypeError):
            ServiceBackend(bogus_knob=1)
