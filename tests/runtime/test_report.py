"""RunReport: one schema, every backend; ratios through one code path."""

from __future__ import annotations

import json

import pytest

from repro.metrics import report_to_json
from repro.runtime import ClusterReport, PhaseTrace, RunReport, SimulationResult


def make_report(**overrides) -> RunReport:
    defaults = dict(
        backend="sim",
        scheduler_name="rtsads",
        num_workers=4,
        seed=1,
        total_tasks=100,
        guaranteed=90,
        completed=88,
        deadline_hits=88,
        completed_late=0,
        expired=12,
        failed=0,
        guaranteed_violations=0,
        reschedules=0,
        workers_lost=0,
        makespan=5000.0,
        wall_seconds=5.0,
    )
    defaults.update(overrides)
    return RunReport(**defaults)


def make_phase(index: int = 0) -> PhaseTrace:
    return PhaseTrace(
        index=index,
        start=0.0,
        quantum=10.0,
        time_used=2.0,
        batch_size=5,
        scheduled=3,
        expired_before=1,
        dead_end=False,
        complete=True,
        max_depth=3,
        processors_touched=2,
        vertices_generated=12,
        delivered=3,
    )


class TestRatios:
    def test_hit_and_guarantee_ratios(self):
        report = make_report(total_tasks=200, guaranteed=150, deadline_hits=140)
        assert report.hit_ratio == pytest.approx(0.70)
        assert report.hit_percent == pytest.approx(70.0)
        assert report.guarantee_ratio == pytest.approx(0.75)

    def test_zero_tasks_yield_zero_not_a_crash(self):
        report = make_report(total_tasks=0, guaranteed=0, deadline_hits=0)
        assert report.hit_ratio == 0.0
        assert report.guarantee_ratio == 0.0


class TestDeprecatedAliases:
    def test_type_aliases_are_the_same_class(self):
        assert SimulationResult is RunReport
        assert ClusterReport is RunReport

    def test_field_aliases_mirror_the_new_names(self):
        report = make_report(makespan=123.0)
        assert report.compliance_ratio == report.hit_ratio
        assert report.makespan_units == 123.0


class TestExtras:
    def test_sim_extras_are_reachable_and_cluster_ones_refuse(self):
        report = make_report(
            backend="sim",
            extras={"trace": object(), "events_dispatched": 7},
        )
        assert report.events_dispatched == 7
        assert report.trace is not None
        with pytest.raises(AttributeError, match="binds no port"):
            report.port

    def test_cluster_extras_are_reachable_and_sim_ones_refuse(self):
        report = make_report(backend="cluster", extras={"port": 45000})
        assert report.port == 45000
        assert report.events_dispatched == 0  # harmless default
        with pytest.raises(AttributeError, match="no simulation trace"):
            report.trace


class TestSchema:
    def test_as_dict_schema_is_backend_invariant(self):
        """Keys AND value types match across backends — the contract the
        CI backend-matrix job enforces on real runs."""
        sim = make_report(
            backend="sim",
            phases=[make_phase()],
            extras={"trace": object(), "events_dispatched": 3},
        )
        cluster = make_report(
            backend="cluster",
            phases=[make_phase()],
            extras={"port": 45000},
        )
        sim_dict, cluster_dict = sim.as_dict(), cluster.as_dict()
        assert sorted(sim_dict) == sorted(cluster_dict)
        for key in sim_dict:
            assert type(sim_dict[key]) is type(cluster_dict[key]), key

    def test_extras_never_leak_into_the_export(self):
        report = make_report(extras={"port": 1, "trace": object()})
        exported = report.as_dict()
        assert "extras" not in exported
        assert "port" not in exported
        assert "trace" not in exported

    def test_report_to_json_round_trips(self):
        report = make_report(phases=[make_phase()])
        document = json.loads(report_to_json(report))
        assert document["num_phases"] == 1
        assert document["phases"][0]["delivered"] == 3
        assert document["hit_ratio"] == pytest.approx(report.hit_ratio)


class TestPresentation:
    def test_render_prints_both_ratios_and_the_backend(self):
        text = make_report(
            backend="cluster", total_tasks=100, guaranteed=90, deadline_hits=88
        ).render()
        assert "guarantee ratio:  0.900" in text
        assert "compliance ratio: 0.880" in text
        assert "cluster backend" in text

    def test_summary_is_one_line(self):
        summary = make_report(phases=[make_phase()]).summary()
        assert "\n" not in summary
        assert "rtsads" in summary
