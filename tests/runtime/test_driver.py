"""The backend-neutral phase driver: the loop both runtimes delegate to."""

from __future__ import annotations

from typing import List

import pytest

from repro.core import RTSADS, Task, UniformCommunicationModel, make_task
from repro.runtime import PhaseDriver, PhaseHooks


class RecordingHooks(PhaseHooks):
    """A minimal in-memory backend: flat loads, scripted acceptance."""

    def __init__(self, num_processors: int = 2):
        self.num_processors = num_processors
        self.capacity = True
        self.declined_ids: set = set()
        self.delivered: List[int] = []
        self.expired: List[int] = []

    def loads(self, now: float) -> List[float]:
        if not self.capacity:
            return []
        return [0.0] * self.num_processors

    def deliver_entry(self, entry, phase_index: int, now: float) -> bool:
        if entry.task.task_id in self.declined_ids:
            return False
        self.delivered.append(entry.task.task_id)
        return True

    def on_task_expired(self, task: Task, now: float) -> None:
        self.expired.append(task.task_id)


def make_driver(num_processors: int = 2):
    scheduler = RTSADS(
        comm=UniformCommunicationModel(remote_cost=5.0),
        per_vertex_cost=0.01,
    )
    hooks = RecordingHooks(num_processors=num_processors)
    return PhaseDriver(scheduler=scheduler, hooks=hooks), hooks


def easy_tasks(n: int = 4) -> List[Task]:
    """Comfortably feasible: loose deadlines, affinity everywhere."""
    return [
        make_task(i, 10.0, 1000.0, affinity=[0, 1]) for i in range(n)
    ]


class TestAdmissionStyles:
    def test_event_driven_admit_feeds_next_phase(self):
        driver, hooks = make_driver()
        driver.admit(easy_tasks(3))
        trace = driver.run_phase(now=0.0)
        assert trace is not None
        assert trace.scheduled == 3
        assert trace.delivered == 3
        assert sorted(hooks.delivered) == [0, 1, 2]
        assert driver.guaranteed_count == 3
        assert not driver.has_backlog()

    def test_staged_arrivals_admit_only_when_due(self):
        driver, hooks = make_driver()
        early = make_task(0, 10.0, 1000.0, affinity=[0], arrival_time=0.0)
        late = make_task(1, 10.0, 2000.0, affinity=[1], arrival_time=50.0)
        driver.stage_arrivals([late, early])  # driver sorts by arrival
        trace = driver.run_phase(now=0.0)
        assert trace.scheduled == 1
        assert hooks.delivered == [0]
        assert not driver.arrivals_exhausted()
        assert driver.has_backlog()  # task 1 still owed a decision
        trace = driver.run_phase(now=60.0)
        assert trace.scheduled == 1
        assert hooks.delivered == [0, 1]
        assert driver.arrivals_exhausted()
        assert not driver.has_backlog()


class TestExpiry:
    def test_hopeless_deadline_is_evicted_through_the_hook(self):
        driver, hooks = make_driver()
        doomed = make_task(0, 10.0, 5.0, affinity=[0])
        fine = make_task(1, 10.0, 1000.0, affinity=[1])
        driver.admit([doomed, fine])
        trace = driver.run_phase(now=100.0)  # deadline 5 already past
        assert hooks.expired == [0]
        assert driver.total_expired == 1
        assert trace.expired_before == 1
        assert trace.scheduled == 1

    def test_everything_expired_yields_no_phase(self):
        driver, hooks = make_driver()
        driver.admit([make_task(0, 10.0, 5.0, affinity=[0])])
        assert driver.run_phase(now=100.0) is None
        assert hooks.expired == [0]
        assert not driver.has_backlog()


class TestDelivery:
    def test_declined_entry_requeues_as_pending(self):
        """A mid-phase decline (dead worker, failed dispatch re-check)
        returns the task to pending; it re-enters at the next phase."""
        driver, hooks = make_driver()
        hooks.declined_ids = {1}
        driver.admit(easy_tasks(3))
        trace = driver.run_phase(now=0.0)
        assert trace.scheduled == 3
        assert trace.delivered == 2
        assert driver.guaranteed_count == 2
        assert driver.has_backlog()
        hooks.declined_ids = set()
        trace = driver.run_phase(now=trace.end)
        assert trace.delivered == 1
        assert 1 in hooks.delivered
        assert driver.guaranteed_count == 3
        assert not driver.has_backlog()

    def test_zero_capacity_skips_phase_and_keeps_batch(self):
        driver, hooks = make_driver()
        hooks.capacity = False
        driver.admit(easy_tasks(2))
        assert driver.run_phase(now=0.0) is None
        assert driver.has_backlog()
        hooks.capacity = True
        trace = driver.run_phase(now=1.0)
        assert trace.delivered == 2
        assert not driver.has_backlog()

    def test_open_phase_counts_as_backlog_until_delivered(self):
        driver, hooks = make_driver()
        driver.admit(easy_tasks(1))
        opened = driver.open_phase(now=0.0)
        assert opened is not None
        assert driver.has_backlog()
        driver.deliver_phase(opened, now=opened.result.phase_end)
        assert not driver.has_backlog()


class TestFailureRemap:
    def test_surrender_revokes_guarantees_and_requeues(self):
        driver, hooks = make_driver()
        tasks = easy_tasks(3)
        driver.admit(tasks)
        driver.run_phase(now=0.0)
        assert driver.guaranteed_count == 3

        driver.worker_lost()
        driver.surrender(tasks[:2])
        assert driver.workers_lost == 1
        assert driver.reschedules == 2
        assert driver.guaranteed_count == 1
        assert driver.has_backlog()

        trace = driver.run_phase(now=10.0)
        assert trace.delivered == 2
        assert driver.guaranteed_count == 3

    def test_revoke_voids_without_requeueing(self):
        driver, hooks = make_driver()
        driver.admit(easy_tasks(1))
        driver.run_phase(now=0.0)
        driver.revoke(0)
        assert driver.guaranteed_count == 0
        assert not driver.has_backlog()


class TestTrace:
    def test_phase_indices_and_batch_sizes_accumulate(self):
        driver, hooks = make_driver()
        driver.admit(easy_tasks(2))
        first = driver.run_phase(now=0.0)
        driver.admit(easy_tasks(2)[:1])
        second = driver.run_phase(now=first.end)
        assert [p.index for p in driver.phases] == [first.index, second.index]
        assert second.index == first.index + 1
        assert first.batch_size == 2
        assert first.end == pytest.approx(first.start + first.time_used)


class TestWithdraw:
    def test_withdraw_pending_before_any_phase(self):
        driver, hooks = make_driver()
        driver.admit(easy_tasks(3))
        withdrawn = driver.withdraw([1])
        assert [t.task_id for t in withdrawn] == [1]
        trace = driver.run_phase(now=0.0)
        assert trace is not None
        assert 1 not in hooks.delivered
        assert sorted(hooks.delivered) == [0, 2]

    def test_withdraw_from_batch_backlog(self):
        driver, hooks = make_driver()
        hooks.capacity = False  # no loads -> tasks stay in the batch
        driver.admit(easy_tasks(2))
        driver.run_phase(now=0.0)
        withdrawn = driver.withdraw([0, 1])
        assert {t.task_id for t in withdrawn} == {0, 1}
        assert not driver.has_backlog()

    def test_withdraw_unknown_id_is_empty(self):
        driver, _ = make_driver()
        driver.admit(easy_tasks(1))
        assert driver.withdraw([42]) == []

    def test_withdrawn_never_counts_as_scheduled(self):
        driver, hooks = make_driver()
        # Fold the tasks into the batch first (no capacity -> no schedule),
        # so the withdrawal hits the batch accounting, not the pending set.
        hooks.capacity = False
        driver.admit(easy_tasks(2))
        driver.run_phase(now=0.0)
        hooks.capacity = True
        driver.withdraw([0])
        driver.run_phase(now=0.0)
        assert driver.batch.total_withdrawn == 1
        assert driver.batch.total_scheduled == 1
        assert hooks.delivered == [1]
