"""Seeded workload generators shared by the conformance + property suites.

Every generator is a pure function of its ``seed``: the same seed always
yields the same task list, so a failing parametrization reproduces from
its test id alone.  Three load shapes cover the regimes the conformance
properties care about:

``uniform``
    Arrivals spread over a horizon with mixed slack — the steady-state
    regime where most tasks are schedulable but ordering matters.
``bursty``
    Everything arrives at t=0 (the paper's Section-5.1 shape): one giant
    first batch stresses packing and candidate ordering.
``tight``
    Slack factors straddling 1.0, including some provably-impossible
    tasks (``arrival + cost > deadline``) — the overload regime where
    the schedulability oracle's verdicts become non-trivial.

The admission-policy property tests (`tests/service/`) reuse these via
:func:`triples`, which projects tasks to the ``(arrival, cost,
deadline)`` tuples the demand-bound math consumes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.core import Task, make_task


def uniform_workload(
    seed: int, num_tasks: int = 24, num_processors: int = 4
) -> List[Task]:
    """Arrivals over a horizon, slack 1.5x-6x: mostly feasible."""
    rng = random.Random(0xA11CE ^ seed)
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(5.0, 40.0)
        arrival = rng.uniform(0.0, 120.0)
        slack = rng.uniform(1.5, 6.0)
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                arrival_time=arrival,
                deadline=arrival + processing * slack,
                affinity=_affinity(rng, num_processors),
            )
        )
    return tasks


def bursty_workload(
    seed: int, num_tasks: int = 24, num_processors: int = 4
) -> List[Task]:
    """One batch at t=0, moderate slack: the paper's arrival shape."""
    rng = random.Random(0xB0B ^ seed)
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(5.0, 30.0)
        slack = rng.uniform(2.0, 8.0)
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                deadline=processing * slack,
                affinity=_affinity(rng, num_processors),
            )
        )
    return tasks


def tight_workload(
    seed: int, num_tasks: int = 24, num_processors: int = 4
) -> List[Task]:
    """Overload: slack straddles 1.0 and some tasks are impossible."""
    rng = random.Random(0x7167 ^ seed)
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(10.0, 50.0)
        arrival = rng.uniform(0.0, 40.0)
        slack = rng.uniform(0.6, 1.8)
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                arrival_time=arrival,
                deadline=arrival + processing * slack,
                affinity=_affinity(rng, num_processors),
            )
        )
    return tasks


def _affinity(rng: random.Random, num_processors: int) -> List[int]:
    """A nonempty random residency set (replication ~60%)."""
    chosen = [p for p in range(num_processors) if rng.random() < 0.6]
    return chosen or [rng.randrange(num_processors)]


#: Name -> generator, the conformance suite's parametrization axis.
WORKLOADS: Dict[str, Callable[..., List[Task]]] = {
    "uniform": uniform_workload,
    "bursty": bursty_workload,
    "tight": tight_workload,
}


def triples(tasks: List[Task]) -> List[Tuple[float, float, float]]:
    """Tasks as the ``(arrival, cost, deadline)`` tuples oracles consume."""
    return [
        (task.arrival_time, task.processing_time, task.deadline)
        for task in tasks
    ]
