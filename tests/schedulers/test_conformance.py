"""Cross-scheduler conformance: invariants every registry entry must hold.

Parametrized over *every* registered scheduler so a new registration is
conformance-tested by construction.  The battery:

* **feasible dispatch** — no phase ever emits an entry whose completion
  bound violates the task's deadline (``validate_phases`` re-checks every
  schedule against the phase feasibility bound, and the runtime's
  guaranteed-violation count must stay zero under the accurate execution
  model);
* **guarantees never silently dropped** — every admitted task reaches
  exactly one terminal state, and the terminal counts reconcile;
* **determinism** — the same (workload, seed) yields a bit-identical
  run, full-precision floats included;
* **oracle soundness** — no scheduler beats the offline schedulability
  oracle's clairvoyant hits upper bound, on any workload shape;
* **sim/cluster agreement** — the live TCP backend runs the same
  workload with the same accounting identities (one fast smoke here;
  the full matrix is ``slow``).
"""

from __future__ import annotations

import pytest

from repro.analysis.schedulability import FEASIBLE, analyze_tasks
from repro.core import UniformCommunicationModel
from repro.core.registry import (
    SCHEDULER_NAMES,
    SchedulerContext,
    make_scheduler,
    registered_names,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_once
from repro.simulator import simulate

from ..differential.harness import simulation_fingerprint
from .workloads import WORKLOADS

ALL_SCHEDULERS = tuple(registered_names())
SEEDS = (0, 1)
WORKERS = 4
REMOTE_COST = 50.0


def build(name: str):
    """A fresh scheduler instance by registry name."""
    return make_scheduler(
        name,
        SchedulerContext(comm=UniformCommunicationModel(REMOTE_COST)),
    )


def run(name: str, workload_name: str, seed: int):
    """One validated simulation of one scheduler over one seeded workload."""
    tasks = WORKLOADS[workload_name](seed, num_processors=WORKERS)
    return (
        tasks,
        simulate(
            build(name),
            list(tasks),
            num_workers=WORKERS,
            validate_phases=True,
        ),
    )


class TestRegistry:
    def test_at_least_four_schedulers_registered(self):
        assert len(ALL_SCHEDULERS) >= 4

    def test_required_names_present(self):
        required = {"rtsads", "edf", "partitioned-edf", "candidate-sort"}
        assert required <= set(ALL_SCHEDULERS)

    def test_builtin_names_constant_matches_registry(self):
        assert set(SCHEDULER_NAMES) <= set(ALL_SCHEDULERS)

    def test_every_name_builds_a_named_scheduler(self):
        names = [build(name).name for name in ALL_SCHEDULERS]
        assert all(names)
        # Display names are distinct: reports must identify the scheduler.
        assert len(set(names)) == len(names)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("scheduler_name", ALL_SCHEDULERS)
class TestConformance:
    def test_no_infeasible_dispatch(self, scheduler_name, workload_name, seed):
        """validate_phases re-checks every entry; violations must be zero.

        Under the default (accurate) execution model a dispatched task
        runs exactly its planned cost, so any guaranteed task missing
        its deadline means the scheduler emitted an infeasible entry.
        """
        _, report = run(scheduler_name, workload_name, seed)
        assert report.guaranteed_violations == 0, (
            f"{scheduler_name} dispatched a task past its deadline on "
            f"{workload_name}/seed={seed}"
        )

    def test_guarantees_never_silently_dropped(
        self, scheduler_name, workload_name, seed
    ):
        """Terminal accounting reconciles: no task vanishes."""
        tasks, report = run(scheduler_name, workload_name, seed)
        assert report.total_tasks == len(tasks)
        assert (
            report.completed + report.expired + report.failed
            == report.total_tasks
        )
        # No failures injected: every guarantee must run to completion.
        assert report.failed == 0
        assert report.completed == report.guaranteed
        assert report.deadline_hits + report.completed_late == report.completed

    def test_determinism_across_runs(self, scheduler_name, workload_name, seed):
        """Two fresh runs agree to full float precision."""
        _, first = run(scheduler_name, workload_name, seed)
        _, second = run(scheduler_name, workload_name, seed)
        assert simulation_fingerprint(first) == simulation_fingerprint(second)

    def test_oracle_soundness(self, scheduler_name, workload_name, seed):
        """No scheduler beats the clairvoyant oracle's hits upper bound."""
        tasks, report = run(scheduler_name, workload_name, seed)
        verdict = analyze_tasks(tasks, WORKERS)
        assert report.deadline_hits <= verdict.hits_upper_bound, (
            f"{scheduler_name} reported {report.deadline_hits} hits on "
            f"{workload_name}/seed={seed}, above the proven bound "
            f"{verdict.hits_upper_bound}"
        )
        # The regret arithmetic the runner exports is internally coherent.
        assert verdict.regret(report.deadline_hits) == (
            verdict.hits_upper_bound - report.deadline_hits
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheduler_name", ALL_SCHEDULERS)
def test_feasible_verdict_means_every_deadline_was_reachable(
    scheduler_name, seed
):
    """On oracle-feasible workloads the bound is total — misses are regret."""
    tasks = WORKLOADS["uniform"](seed, num_processors=WORKERS)
    verdict = analyze_tasks(tasks, WORKERS)
    if verdict.verdict != FEASIBLE:
        pytest.skip("generator produced a non-feasible instance")
    assert verdict.hits_upper_bound == len(tasks)
    _, report = run(scheduler_name, "uniform", seed)
    assert report.deadline_hits <= len(tasks)


def _cluster_cell(num_transactions: int = 24) -> ExperimentConfig:
    return ExperimentConfig.quick(
        num_transactions=num_transactions, runs=1, num_processors=3
    )


def _assert_cluster_agrees(scheduler_name: str) -> None:
    """Sim and cluster runs of one cell agree on everything timing-free.

    Wall-clock execution can change *which* deadlines are met, but the
    workload identity, the accounting identities, the report schema, and
    the oracle's bound hold on both backends.
    """
    config = _cluster_cell()
    seed = config.base_seed
    sim = run_once(config, scheduler_name, seed)
    live = run_once(
        config.with_backend("cluster"), scheduler_name, seed
    )
    assert live.backend == "cluster"
    assert live.total_tasks == sim.total_tasks
    assert live.num_workers == sim.num_workers
    assert (
        live.completed + live.expired + live.failed == live.total_tasks
    )
    assert sorted(sim.as_dict()) == sorted(live.as_dict())
    # Both backends ran the same reconstructible workload, so both carry
    # the same oracle verdict — and neither may beat its bound.
    assert live.regret["verdict"] == sim.regret["verdict"]
    assert live.regret["hits_upper_bound"] == sim.regret["hits_upper_bound"]
    assert live.deadline_hits <= live.regret["hits_upper_bound"]
    assert sim.deadline_hits <= sim.regret["hits_upper_bound"]


def test_sim_cluster_agreement_smoke():
    """One live-cluster conformance pass for a non-RT-SADS scheduler."""
    _assert_cluster_agrees("edf")


@pytest.mark.slow
@pytest.mark.parametrize(
    "scheduler_name", [n for n in ALL_SCHEDULERS if n != "edf"]
)
def test_sim_cluster_agreement_matrix(scheduler_name):
    """The full cross-backend matrix (minutes of wall clock; CI's slow job)."""
    _assert_cluster_agrees(scheduler_name)


def _sharded_cell() -> ExperimentConfig:
    # Enough pressure that domains interact, small enough to stay fast.
    return ExperimentConfig.quick(
        num_transactions=40, runs=1, num_processors=4
    ).with_domains(2)


@pytest.mark.parametrize("scheduler_name", ALL_SCHEDULERS)
class TestShardedConformance:
    """Every registered scheduler must also conform on the sharded backend.

    Sharding multiplies the scheduler, it must not change its contract:
    the same accounting identities, the same report schema as the
    single-master simulator, the oracle bound still unbeatable, the
    migration ledger balanced, and the whole run deterministic.  Pure
    simulation, so the full matrix runs in the fast tier.
    """

    def test_accounting_and_schema(self, scheduler_name):
        config = _sharded_cell()
        seed = config.base_seed
        sim = run_once(config.with_domains(1), scheduler_name, seed)
        sharded = run_once(config, scheduler_name, seed)
        assert sharded.backend == "sharded"
        assert sharded.total_tasks == sim.total_tasks
        assert (
            sharded.completed + sharded.expired + sharded.failed
            == sharded.total_tasks
        )
        # No failures injected: guarantees run to completion exactly once,
        # whether they were honoured locally or after a migration.
        assert sharded.failed == 0
        assert sharded.completed == sharded.guaranteed
        assert sharded.guaranteed_violations == 0
        assert sorted(sim.as_dict()) == sorted(sharded.as_dict())

    def test_oracle_soundness_and_migration_ledger(self, scheduler_name):
        config = _sharded_cell()
        report = run_once(config, scheduler_name, config.base_seed)
        assert report.deadline_hits <= report.regret["hits_upper_bound"]
        section = report.migration
        assert (
            section["offers"]
            == section["accepted"] + section["declined"] + section["timeouts"]
        )
        assert sum(section["out_by_domain"].values()) == section["offers"]
        assert sum(section["in_by_domain"].values()) == section["accepted"]

    def test_determinism(self, scheduler_name):
        config = _sharded_cell()
        first = run_once(config, scheduler_name, config.base_seed).as_dict()
        second = run_once(config, scheduler_name, config.base_seed).as_dict()
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second
