"""Transport tests: hub/channel loopback, disconnects, fragmentation."""

from __future__ import annotations

import socket

import pytest

from repro.cluster import protocol
from repro.cluster.network import (
    CONNECT,
    DISCONNECT,
    MESSAGE,
    ConnectionLost,
    MessageHub,
    WorkerChannel,
)


@pytest.fixture
def hub():
    hub = MessageHub()
    yield hub
    hub.close()


def poll_until(hub, predicate, attempts=200, timeout=0.02):
    """Poll the hub until some collected event satisfies ``predicate``."""
    collected = []
    for _ in range(attempts):
        collected.extend(hub.poll(timeout))
        if predicate(collected):
            return collected
    raise AssertionError(f"condition never met; events: {collected}")


class TestLoopback:
    def test_connect_send_receive_round_trip(self, hub):
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        try:
            events = poll_until(
                hub, lambda evs: any(e.kind == CONNECT for e in evs)
            )
            conn_id = next(e.conn_id for e in events if e.kind == CONNECT)

            channel.send(protocol.hello(0, 123, "test"))
            events = poll_until(
                hub, lambda evs: any(e.kind == MESSAGE for e in evs)
            )
            message = next(
                e.message for e in events if e.kind == MESSAGE
            )
            assert message["type"] == protocol.HELLO
            assert message["pid"] == 123

            assert hub.send(conn_id, protocol.welcome(0, [1, 2]))
            received = []
            for _ in range(200):
                received.extend(channel.poll(0.02))
                if received:
                    break
            assert received[0]["type"] == protocol.WELCOME
            assert received[0]["residency"] == [1, 2]
        finally:
            channel.close()

    def test_broadcast_reaches_every_connection(self, hub):
        channels = [
            WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
            for _ in range(3)
        ]
        try:
            poll_until(
                hub,
                lambda evs: sum(e.kind == CONNECT for e in evs) == 3,
            )
            assert hub.broadcast(protocol.shutdown()) == 3
            for channel in channels:
                received = []
                for _ in range(200):
                    received.extend(channel.poll(0.02))
                    if received:
                        break
                assert received[0]["type"] == protocol.SHUTDOWN
        finally:
            for channel in channels:
                channel.close()

    def test_large_message_survives_fragmentation(self, hub):
        """A frame much larger than one recv chunk still arrives whole."""
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        try:
            big_host = "h" * 200_000  # ~3x RECV_CHUNK
            channel.send(protocol.hello(1, 1, big_host))
            events = poll_until(
                hub, lambda evs: any(e.kind == MESSAGE for e in evs)
            )
            message = next(e.message for e in events if e.kind == MESSAGE)
            assert message["host"] == big_host
        finally:
            channel.close()


class TestDisconnects:
    def test_hub_detects_closed_channel(self, hub):
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        poll_until(hub, lambda evs: any(e.kind == CONNECT for e in evs))
        channel.close()
        events = poll_until(
            hub, lambda evs: any(e.kind == DISCONNECT for e in evs)
        )
        assert any(e.kind == DISCONNECT for e in events)

    def test_messages_delivered_before_disconnect(self, hub):
        """Data already on the wire must not be lost to a close."""
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        channel.send(protocol.heartbeat(0, 1, 2))
        channel.close()
        events = poll_until(
            hub, lambda evs: any(e.kind == DISCONNECT for e in evs)
        )
        kinds = [e.kind for e in events if e.kind != CONNECT]
        assert MESSAGE in kinds
        assert kinds.index(MESSAGE) < kinds.index(DISCONNECT)

    def test_send_to_gone_connection_returns_false(self, hub):
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        events = poll_until(
            hub, lambda evs: any(e.kind == CONNECT for e in evs)
        )
        conn_id = next(e.conn_id for e in events if e.kind == CONNECT)
        hub.close_connection(conn_id)
        assert hub.send(conn_id, protocol.shutdown()) is False
        channel.close()

    def test_channel_poll_raises_when_hub_closes(self, hub):
        channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
        poll_until(hub, lambda evs: any(e.kind == CONNECT for e in evs))
        hub.close()
        with pytest.raises(ConnectionLost):
            for _ in range(200):
                channel.poll(0.02)
        channel.close()

    def test_connect_times_out_against_dead_port(self):
        # Reserve a port and close it so nothing is listening there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionLost):
            WorkerChannel.connect("127.0.0.1", port, timeout=0.3)


class TestLifecycle:
    def test_port_is_ephemeral_and_stable(self, hub):
        assert hub.port > 0
        assert hub.port == hub.port

    def test_close_is_idempotent_and_frees_port(self):
        hub = MessageHub()
        port = hub.port
        hub.close()
        hub.close()
        assert hub.closed
        # The port must be immediately re-bindable (SO_REUSEADDR honored,
        # listener actually closed).
        rebind = socket.socket()
        rebind.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        rebind.bind(("127.0.0.1", port))
        rebind.close()
        # Address survives close for late report reads.
        assert hub.port == port
