"""Wire-protocol unit tests: framing, versioning, round trips."""

from __future__ import annotations

import json

import pytest

from repro.cluster import protocol
from repro.cluster.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    pack,
    unpack,
)

ALL_MESSAGES = [
    protocol.hello(worker_id=3, pid=4242, host="127.0.0.1"),
    protocol.welcome(worker_id=3, residency=[5, 1, 2]),
    protocol.assign(
        task_id=17,
        worker_id=3,
        total_cost=123.5,
        communication_cost=80.0,
        deadline=950.25,
    ),
    protocol.task_done(
        task_id=17,
        worker_id=3,
        actual_cost=101.0,
        estimated_cost=123.5,
        exec_seconds=0.104,
    ),
    protocol.heartbeat(worker_id=3, queue_depth=2, tasks_done=9, mono=12.5),
    protocol.telemetry(
        worker_id=3,
        events=[
            {"event": "task", "transition": "exec_started", "w_mono": 11.75},
            {"event": "heartbeat_lag", "gap_seconds": 0.31, "w_mono": 12.0},
        ],
        mono=12.5,
    ),
    protocol.shutdown(reason="complete"),
    protocol.submit(
        request_id=5, template_id=12, relative_deadline=250.0, mono=1.5
    ),
    protocol.accept(request_id=5, task_id=1012, deadline=980.0),
    protocol.reject(request_id=6, reason="backlog-full", policy="reject-newest"),
    protocol.result(
        request_id=5,
        task_id=1012,
        status="completed",
        met_deadline=True,
        finished_at=970.5,
    ),
]


class TestPackUnpack:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: m["type"]
    )
    def test_round_trip_preserves_every_field(self, message):
        recovered = unpack(pack(message)[HEADER.size:])
        expected = dict(message)
        expected["v"] = PROTOCOL_VERSION
        assert recovered == expected

    def test_pack_prefixes_exact_body_length(self):
        frame = pack(protocol.shutdown())
        (length,) = HEADER.unpack_from(frame)
        assert length == len(frame) - HEADER.size

    def test_pack_rejects_unknown_type(self):
        with pytest.raises(ProtocolError):
            pack({"type": "GOSSIP"})

    def test_unpack_rejects_version_mismatch(self):
        body = json.dumps(
            {"type": protocol.HEARTBEAT, "v": PROTOCOL_VERSION + 1}
        ).encode()
        with pytest.raises(ProtocolError, match="version"):
            unpack(body)

    def test_unpack_rejects_missing_version(self):
        body = json.dumps({"type": protocol.HEARTBEAT}).encode()
        with pytest.raises(ProtocolError, match="version"):
            unpack(body)

    def test_unpack_rejects_unknown_type(self):
        body = json.dumps({"type": "GOSSIP", "v": PROTOCOL_VERSION}).encode()
        with pytest.raises(ProtocolError, match="unknown message type"):
            unpack(body)

    def test_unpack_rejects_non_object_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError):
            unpack(body)

    def test_unpack_rejects_garbage_bytes(self):
        with pytest.raises(ProtocolError):
            unpack(b"\xff\xfe not json")


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        (message,) = decoder.feed(pack(protocol.shutdown()))
        assert message["type"] == protocol.SHUTDOWN
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_reassembly(self):
        """TCP may deliver any fragmentation; one byte at a time is the
        worst case and must still reassemble every message in order."""
        stream = b"".join(pack(m) for m in ALL_MESSAGES)
        decoder = FrameDecoder()
        received = []
        for i in range(len(stream)):
            received.extend(decoder.feed(stream[i:i + 1]))
        assert [m["type"] for m in received] == [
            m["type"] for m in ALL_MESSAGES
        ]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_feed(self):
        stream = b"".join(pack(m) for m in ALL_MESSAGES)
        received = FrameDecoder().feed(stream)
        assert len(received) == len(ALL_MESSAGES)

    def test_partial_frame_stays_pending(self):
        frame = pack(protocol.heartbeat(0, 0, 0))
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        (message,) = decoder.feed(frame[-1:])
        assert message["type"] == protocol.HEARTBEAT

    def test_oversized_frame_is_rejected_not_buffered(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="corrupt"):
            decoder.feed(HEADER.pack(MAX_FRAME_BYTES + 1))

    def test_pack_rejects_oversized_payload(self):
        huge = protocol.hello(0, 0, "x" * (MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            pack(huge)


class TestServiceFrames:
    def test_result_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            protocol.result(
                request_id=1,
                task_id=2,
                status="vanished",
                met_deadline=False,
                finished_at=0.0,
            )

    def test_assign_defaults_to_batch_mode_template(self):
        message = protocol.assign(
            task_id=17,
            worker_id=3,
            total_cost=1.0,
            communication_cost=0.0,
            deadline=10.0,
        )
        assert message["template_id"] == -1

    def test_assign_carries_template_id(self):
        message = protocol.assign(
            task_id=1017,
            worker_id=3,
            total_cost=1.0,
            communication_cost=0.0,
            deadline=10.0,
            template_id=17,
        )
        assert message["template_id"] == 17
