"""Unit tests for the worker-side telemetry buffer."""

import pytest

from repro.cluster.telemetry import DEFAULT_BUFFER_CAP, TelemetryBuffer


class TestEmit:
    def test_stamps_worker_monotonic_clock(self):
        buffer = TelemetryBuffer()
        buffer.emit({"event": "task", "transition": "exec_started"})
        [event] = buffer.drain(10)
        assert isinstance(event["w_mono"], float)

    def test_existing_stamp_is_preserved(self):
        buffer = TelemetryBuffer()
        buffer.emit({"event": "task", "w_mono": 42.5})
        [event] = buffer.drain(10)
        assert event["w_mono"] == 42.5

    def test_caller_event_dict_not_mutated(self):
        buffer = TelemetryBuffer()
        original = {"event": "task"}
        buffer.emit(original)
        assert "w_mono" not in original


class TestBounding:
    def test_oldest_events_drop_first(self):
        buffer = TelemetryBuffer(cap=3)
        for index in range(5):
            buffer.emit({"event": "task", "task_id": index, "w_mono": 1.0})
        assert len(buffer) == 3
        assert buffer.events_dropped == 2
        assert buffer.events_buffered == 5

    def test_drop_marker_prepended_on_next_drain(self):
        buffer = TelemetryBuffer(cap=2)
        for index in range(4):
            buffer.emit({"event": "task", "task_id": index, "w_mono": 1.0})
        batch = buffer.drain(10)
        assert batch[0]["event"] == "telemetry_dropped"
        assert batch[0]["dropped"] == 2
        assert [e["task_id"] for e in batch[1:]] == [2, 3]
        # The loss is reported exactly once.
        assert buffer.drain(10) == []

    def test_drop_marker_rides_on_top_of_max_events(self):
        """The marker must not displace a payload event from the batch.

        A drain capped at ``max_events`` returns up to that many *real*
        events plus the marker — otherwise every drop would also delay
        one live event per heartbeat, and a persistently full buffer
        could starve payload delivery entirely.
        """
        buffer = TelemetryBuffer(cap=3)
        for index in range(5):
            buffer.emit({"event": "task", "task_id": index, "w_mono": 1.0})
        batch = buffer.drain(3)
        assert len(batch) == 4
        assert batch[0]["event"] == "telemetry_dropped"
        assert batch[0]["dropped"] == 2
        assert [e["task_id"] for e in batch[1:]] == [2, 3, 4]
        assert buffer.drain(3) == []

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            TelemetryBuffer(cap=0)

    def test_default_cap(self):
        assert TelemetryBuffer().cap == DEFAULT_BUFFER_CAP


class TestDrain:
    def test_batches_respect_max_events(self):
        buffer = TelemetryBuffer()
        for index in range(5):
            buffer.emit({"event": "task", "task_id": index, "w_mono": 1.0})
        first = buffer.drain(3)
        second = buffer.drain(3)
        assert [e["task_id"] for e in first] == [0, 1, 2]
        assert [e["task_id"] for e in second] == [3, 4]
        assert not buffer

    def test_truthiness_tracks_pending_work(self):
        buffer = TelemetryBuffer(cap=1)
        assert not buffer
        buffer.emit({"event": "task", "w_mono": 1.0})
        assert buffer
        buffer.emit({"event": "task", "w_mono": 2.0})  # drops the first
        buffer.drain(10)
        # Drained empty, no pending drop report: falsy again.
        assert not buffer
