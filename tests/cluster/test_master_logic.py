"""Master-side pure logic: affinity remapping and report arithmetic."""

from __future__ import annotations

import random

import pytest

from repro.cluster import ClusterReport, remap_tasks
from repro.core import RTSADS, UniformCommunicationModel, make_task


def make_report(**overrides) -> ClusterReport:
    defaults = dict(
        backend="cluster",
        scheduler_name="rtsads",
        num_workers=4,
        seed=1,
        total_tasks=100,
        guaranteed=90,
        completed=88,
        deadline_hits=88,
        completed_late=0,
        expired=12,
        failed=0,
        guaranteed_violations=0,
        reschedules=0,
        workers_lost=0,
        makespan=5000.0,
        wall_seconds=5.0,
        extras={"port": 45000},
    )
    defaults.update(overrides)
    return ClusterReport(**defaults)


class TestRemapTasks:
    def test_identity_when_all_workers_alive(self):
        tasks = [
            make_task(0, 10.0, 100.0, affinity=[0, 2]),
            make_task(1, 10.0, 100.0, affinity=[1]),
        ]
        remapped = remap_tasks(tasks, alive=[0, 1, 2])
        assert remapped == tasks

    def test_affinities_shift_into_survivor_index_space(self):
        """With worker 1 dead, survivors [0, 2, 3] become indices
        [0, 1, 2]; a task pinned to real worker 3 must point at index 2."""
        tasks = [make_task(0, 10.0, 100.0, affinity=[3])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2, 3])
        assert remapped.affinity == frozenset({2})

    def test_dead_worker_drops_out_of_affinity(self):
        tasks = [make_task(0, 10.0, 100.0, affinity=[1, 2])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2])
        assert remapped.affinity == frozenset({1})  # worker 2 -> index 1

    def test_fully_dead_affinity_degrades_to_remote_everywhere(self):
        tasks = [make_task(0, 10.0, 100.0, affinity=[1])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2])
        assert remapped.affinity == frozenset()

    def test_everything_but_affinity_is_preserved(self):
        task = make_task(5, 12.5, 80.0, affinity=[1], arrival_time=3.0)
        (remapped,) = remap_tasks([task], alive=[1, 2])
        assert remapped.task_id == task.task_id
        assert remapped.processing_time == task.processing_time
        assert remapped.arrival_time == task.arrival_time
        assert remapped.deadline == task.deadline

    def test_all_workers_dead_empties_every_affinity(self):
        """With no survivors the index space is empty; remap degrades every
        affinity set to all-remote rather than raising.  (The master never
        schedules in this state — loads() returns [] and the driver skips
        the phase — but remap itself must stay total.)"""
        tasks = [
            make_task(0, 10.0, 100.0, affinity=[0, 1, 2]),
            make_task(1, 10.0, 100.0),  # already affinity-free
        ]
        remapped = remap_tasks(tasks, alive=[])
        assert all(t.affinity == frozenset() for t in remapped)

    def test_slack_that_cannot_survive_remapping_is_not_guaranteed(self):
        """A task whose only resident replica died must pay the remote
        cost; when its deadline cannot absorb that, the feasibility search
        on the survivors must leave it unscheduled (it will expire) rather
        than hand out a guarantee it cannot keep."""
        comm = UniformCommunicationModel(remote_cost=400.0)
        scheduler = RTSADS(comm=comm, per_vertex_cost=0.005)
        # Feasible while worker 1 lives: cost 10, deadline 50.  Remote it
        # costs 10 + 400 = 410 > 50.
        task = make_task(0, 10.0, 50.0, affinity=[1])
        (remapped,) = remap_tasks([task], alive=[0, 2])
        assert remapped.affinity == frozenset()
        loads = [0.0, 0.0]
        quantum = scheduler.plan_quantum([remapped], loads, now=0.0)
        result = scheduler.schedule_phase([remapped], loads, 0.0, quantum)
        assert task.task_id not in result.schedule.task_ids()

    def test_remap_composes_across_successive_failures(self):
        """Losing workers one at a time must land on the same affinities as
        losing them all at once: remapping through an intermediate alive
        set, then remapping the survivors' *positions*, equals remapping
        straight to the final alive set.  Seeded like the differential
        suite so failures reproduce."""
        for seed in range(10):
            rng = random.Random(1998 + seed)
            workers = list(range(6))
            tasks = [
                make_task(
                    i,
                    10.0,
                    500.0,
                    affinity=rng.sample(workers, rng.randint(0, 4)),
                )
                for i in range(20)
            ]
            alive_first = sorted(rng.sample(workers, 4))
            alive_final = sorted(rng.sample(alive_first, 2))
            positions = [alive_first.index(w) for w in alive_final]

            stepwise = remap_tasks(
                remap_tasks(tasks, alive=alive_first), alive=positions
            )
            direct = remap_tasks(tasks, alive=alive_final)
            assert stepwise == direct, f"seed {1998 + seed}"


class TestMidPhaseDisconnect:
    def test_declined_dispatch_requeues_and_reschedules_on_survivors(self):
        """A worker dying between phase start and dispatch: deliver_entry
        returns False for its entries, the driver requeues them, and the
        next phase (with the dead worker remapped away) re-guarantees
        them.  This is the master's decline path in miniature."""
        from repro.runtime import PhaseDriver, PhaseHooks

        class FlakyWorkerHooks(PhaseHooks):
            def __init__(self):
                self.alive = [0, 1]
                self.dead_processor = None
                self.dispatched = []

            def loads(self, now):
                return [0.0] * len(self.alive)

            def transform_batch(self, tasks, now):
                return remap_tasks(tasks, self.alive)

            def deliver_entry(self, entry, phase_index, now):
                if entry.processor == self.dead_processor:
                    return False
                self.dispatched.append(entry.task.task_id)
                return True

            def on_task_expired(self, task, now):
                raise AssertionError("nothing should expire here")

        scheduler = RTSADS(
            comm=UniformCommunicationModel(remote_cost=5.0),
            per_vertex_cost=0.01,
        )
        hooks = FlakyWorkerHooks()
        driver = PhaseDriver(scheduler=scheduler, hooks=hooks)
        driver.admit(
            [make_task(i, 10.0, 1000.0, affinity=[i % 2]) for i in range(4)]
        )

        hooks.dead_processor = 1  # dies mid-phase: dispatches decline
        first = driver.run_phase(now=0.0)
        assert first.scheduled == 4
        assert first.delivered < 4
        declined = first.scheduled - first.delivered
        assert driver.has_backlog()

        # The master notices the loss before the next phase: survivors
        # only, and the declined tasks re-enter through the normal path.
        hooks.alive = [0]
        hooks.dead_processor = None
        second = driver.run_phase(now=first.end)
        assert second.delivered == declined
        assert driver.guaranteed_count == 4
        assert not driver.has_backlog()


class TestClusterReport:
    def test_ratios(self):
        report = make_report(
            total_tasks=200, guaranteed=150, deadline_hits=140
        )
        assert report.guarantee_ratio == pytest.approx(0.75)
        assert report.compliance_ratio == pytest.approx(0.70)

    def test_zero_task_run_yields_zero_ratios(self):
        report = make_report(total_tasks=0, guaranteed=0, deadline_hits=0)
        assert report.guarantee_ratio == 0.0
        assert report.compliance_ratio == 0.0

    def test_render_prints_both_ratios(self):
        text = make_report(
            total_tasks=100, guaranteed=90, deadline_hits=88
        ).render()
        assert "guarantee ratio:  0.900" in text
        assert "compliance ratio: 0.880" in text
        assert "rtsads" in text

    def test_render_surfaces_failures_and_reschedules(self):
        text = make_report(workers_lost=1, reschedules=7).render()
        assert "workers lost 1" in text
        assert "reschedules 7" in text
