"""Master-side pure logic: affinity remapping and report arithmetic."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterReport, remap_tasks
from repro.core import make_task


def make_report(**overrides) -> ClusterReport:
    defaults = dict(
        scheduler_name="rtsads",
        num_workers=4,
        total_tasks=100,
        guaranteed=90,
        completed=88,
        deadline_hits=88,
        completed_late=0,
        expired=12,
        guaranteed_violations=0,
        reschedules=0,
        workers_lost=0,
        phases=10,
        makespan_units=5000.0,
        wall_seconds=5.0,
        port=45000,
        seed=1,
    )
    defaults.update(overrides)
    return ClusterReport(**defaults)


class TestRemapTasks:
    def test_identity_when_all_workers_alive(self):
        tasks = [
            make_task(0, 10.0, 100.0, affinity=[0, 2]),
            make_task(1, 10.0, 100.0, affinity=[1]),
        ]
        remapped = remap_tasks(tasks, alive=[0, 1, 2])
        assert remapped == tasks

    def test_affinities_shift_into_survivor_index_space(self):
        """With worker 1 dead, survivors [0, 2, 3] become indices
        [0, 1, 2]; a task pinned to real worker 3 must point at index 2."""
        tasks = [make_task(0, 10.0, 100.0, affinity=[3])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2, 3])
        assert remapped.affinity == frozenset({2})

    def test_dead_worker_drops_out_of_affinity(self):
        tasks = [make_task(0, 10.0, 100.0, affinity=[1, 2])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2])
        assert remapped.affinity == frozenset({1})  # worker 2 -> index 1

    def test_fully_dead_affinity_degrades_to_remote_everywhere(self):
        tasks = [make_task(0, 10.0, 100.0, affinity=[1])]
        (remapped,) = remap_tasks(tasks, alive=[0, 2])
        assert remapped.affinity == frozenset()

    def test_everything_but_affinity_is_preserved(self):
        task = make_task(5, 12.5, 80.0, affinity=[1], arrival_time=3.0)
        (remapped,) = remap_tasks([task], alive=[1, 2])
        assert remapped.task_id == task.task_id
        assert remapped.processing_time == task.processing_time
        assert remapped.arrival_time == task.arrival_time
        assert remapped.deadline == task.deadline


class TestClusterReport:
    def test_ratios(self):
        report = make_report(
            total_tasks=200, guaranteed=150, deadline_hits=140
        )
        assert report.guarantee_ratio == pytest.approx(0.75)
        assert report.compliance_ratio == pytest.approx(0.70)

    def test_zero_task_run_yields_zero_ratios(self):
        report = make_report(total_tasks=0, guaranteed=0, deadline_hits=0)
        assert report.guarantee_ratio == 0.0
        assert report.compliance_ratio == 0.0

    def test_render_prints_both_ratios(self):
        text = make_report(
            total_tasks=100, guaranteed=90, deadline_hits=88
        ).render()
        assert "guarantee ratio:  0.900" in text
        assert "compliance ratio: 0.880" in text
        assert "rtsads" in text

    def test_render_surfaces_failures_and_reschedules(self):
        text = make_report(workers_lost=1, reschedules=7).render()
        assert "workers lost 1" in text
        assert "reschedules 7" in text
