"""End-to-end live runs: real processes, real sockets, real execution.

Determinism discipline for CI: fixed seeds, generous deadlines (SF=3),
small workloads, the package-wide SIGALRM hard timeout, and an explicit
no-leaked-children assertion after every launch.
"""

from __future__ import annotations

import socket

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import (
    ClusterConfig,
    FailurePlan,
    launch_cluster,
)


def assert_port_released(port: int) -> None:
    """The master's listener must be gone the moment launch returns."""
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        probe.bind(("127.0.0.1", port))
    finally:
        probe.close()


class TestLiveCluster:
    def test_smoke_run_completes_with_full_accounting(
        self, assert_no_leaked_children
    ):
        config = ClusterConfig.smoke(workers=2, tasks=24, seed=7)
        report = launch_cluster(config)

        # Every task reached exactly one terminal state.
        assert report.completed + report.expired == report.total_tasks
        assert report.total_tasks == 24
        # The theorem under test: dispatched guarantees hold on the wall
        # clock.  With no injected failure nothing may be lost either.
        assert report.guaranteed_violations == 0
        assert report.workers_lost == 0
        assert report.reschedules == 0
        # Generous-deadline smoke workload schedules comfortably; anything
        # below this means the live path is broken, not merely jittery.
        assert report.compliance_ratio >= 0.5
        assert report.guarantee_ratio >= report.compliance_ratio - 1e-9
        assert report.num_phases >= 1
        assert report.wall_seconds < config.max_wall_seconds
        assert_port_released(report.port)

    def test_deterministic_workload_across_runs(
        self, assert_no_leaked_children
    ):
        """Same seed, same config => same task population and guarantees
        (completion timing may jitter, the guarantee decision may not in a
        comfortably feasible workload)."""
        config = ClusterConfig.smoke(workers=2, tasks=16, seed=3)
        first = launch_cluster(config)
        second = launch_cluster(config)
        assert first.total_tasks == second.total_tasks
        assert first.guaranteed_violations == 0
        assert second.guaranteed_violations == 0
        assert_port_released(first.port)
        assert_port_released(second.port)

    def test_worker_failure_degrades_gracefully(
        self, assert_no_leaked_children
    ):
        """Kill one worker mid-run: the master must detect the silence,
        reschedule the surrendered queue, and still finish cleanly."""
        config = ClusterConfig.smoke(
            workers=3,
            tasks=48,
            seed=11,
            failure=FailurePlan(worker_index=1, after_seconds=0.8),
        )
        report = launch_cluster(config)

        assert report.workers_lost == 1
        # The dead worker's queue was surrendered and re-entered the batch.
        assert report.reschedules >= 1
        # Surrender revokes the guarantee, so even the disrupted run keeps
        # the theorem intact.
        assert report.guaranteed_violations == 0
        assert report.completed + report.expired == report.total_tasks
        # Survivors kept working: the run did not collapse with the worker.
        assert report.completed > 0
        assert_port_released(report.port)


class TestClusterCli:
    def test_cluster_is_a_cli_choice_but_not_in_all(self):
        from repro.experiments.cli import (
            CLUSTER_COMMAND,
            EXPERIMENTS,
            build_parser,
        )

        assert CLUSTER_COMMAND not in EXPERIMENTS  # "all" stays simulation
        args = build_parser().parse_args(
            ["cluster", "--workers", "2", "--tasks", "40", "--seed", "1"]
        )
        assert args.experiment == CLUSTER_COMMAND
        assert args.workers == 2
        assert args.tasks == 40
        assert args.seed == 1

    def test_kill_worker_flag_parses_into_plan(self):
        from repro.cluster import FailurePlan

        plan = FailurePlan.parse("1@0.5")
        assert plan.worker_index == 1
        assert plan.after_seconds == 0.5

    def test_cli_end_to_end_prints_both_ratios(
        self, capsys, assert_no_leaked_children
    ):
        from repro.experiments.cli import main

        rc = main(
            [
                "cluster",
                "--workers",
                "2",
                "--tasks",
                "12",
                "--seed",
                "7",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "guarantee ratio:" in out
        assert "compliance ratio:" in out
