"""Live sharded clusters: k real masters, real sockets, real migrations.

Two end-to-end runs: a standard two-domain smoke through the public
launcher, and a deterministic forced-migration run (every task misrouted
to domain 0) with full tracing, so the migration protocol, the merged
report, and the trace pipeline's cross-domain attribution are all
exercised against real processes.  Same CI discipline as the other live
tests: fixed seeds, the package-wide hard timeout, and the leaked-child
assertion after every launch.
"""

from __future__ import annotations

import socket
from dataclasses import replace

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import ClusterConfig, launch_cluster
from repro.experiments import ExperimentConfig
from repro.observability import (
    Instrumentation,
    JsonlSink,
    attribute_misses,
    read_jsonl,
    render_attribution,
)
from repro.sharding.cluster import launch_sharded_cluster


def assert_port_released(port: int) -> None:
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        probe.bind(("127.0.0.1", port))
    finally:
        probe.close()


def _forced_migration_config() -> ClusterConfig:
    """Tight slack + a small wall-clock scale: offers are inevitable once
    the router piles all forty tasks onto domain 0's two workers."""
    experiment = ExperimentConfig.quick(
        num_transactions=40,
        num_processors=4,
        base_seed=7,
        slack_factor=1.4,
        runs=1,
    ).with_domains(2)
    return ClusterConfig(
        experiment=experiment,
        heartbeat_interval=0.15,
        max_wall_seconds=90.0,
        seconds_per_unit=0.0005,
    )


class TestLiveShardedCluster:
    def test_two_domain_smoke_through_the_launcher(
        self, assert_no_leaked_children
    ):
        """launch_cluster dispatches on experiment.domains transparently."""
        config = ClusterConfig.smoke(workers=4, tasks=24, seed=7)
        config = replace(
            config, experiment=config.experiment.with_domains(2)
        )
        report = launch_cluster(config)

        assert report.backend == "cluster"
        assert report.total_tasks == 24
        assert report.completed + report.expired == report.total_tasks
        assert report.guaranteed_violations == 0
        assert report.workers_lost == 0
        # The merged report carries the sharding identity.
        assert len(report.extras["partition"]["domains"]) == 2
        section = report.migration
        assert (
            section["offers"]
            == section["accepted"] + section["declined"] + section["timeouts"]
        )
        for port in report.extras["ports"]:
            assert_port_released(port)

    def test_forced_migration_accounts_and_attributes(
        self, tmp_path, assert_no_leaked_children
    ):
        """Misroute everything to domain 0: offers must flow to domain 1
        over the real protocol, the ledger must balance, and the merged
        trace must attribute every miss — migrated ones labelled."""
        trace_path = tmp_path / "sharded.jsonl"
        sink = JsonlSink(trace_path)
        obs = Instrumentation(sink=sink)
        try:
            report = launch_sharded_cluster(
                _forced_migration_config(),
                instrumentation=obs,
                router=lambda task: 0,
            )
        finally:
            sink.close()

        section = report.migration
        assert section["offers"] > 0
        assert section["accepted"] >= 1  # domain 1 starts idle
        assert (
            section["offers"]
            == section["accepted"] + section["declined"] + section["timeouts"]
        )
        assert sum(section["out_by_domain"].values()) == section["offers"]
        assert sum(section["in_by_domain"].values()) == section["accepted"]
        # Guarantee accounting absorbed the handoffs without double counts.
        assert report.total_tasks == 40
        assert (
            report.completed + report.expired + report.failed
            == report.total_tasks
        )
        for port in report.extras["ports"]:
            assert_port_released(port)

        events = read_jsonl(trace_path)
        run_end = [e for e in events if e.get("event") == "run_end"]
        assert len(run_end) == 1
        assert run_end[0]["domains"] == 2
        assert run_end[0]["migrations"] == section["accepted"]
        assert "telemetry_dropped" in run_end[0]

        attribution = attribute_misses(events)
        assert attribution.total_tasks == 40
        # 100% attribution: every miss gets exactly one known cause.
        assert sum(attribution.by_cause.values()) == len(attribution.misses)
        if attribution.misses:
            assert "100% attributed" in render_attribution(attribution)
        migrated = [m for m in attribution.misses if m.migration]
        for miss in migrated:
            assert miss.migration == "0->1"
        assert attribution.migrated_misses == len(migrated)
