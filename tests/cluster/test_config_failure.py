"""ClusterConfig validation/conversions and failure-plan/monitor logic."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import ClusterConfig, FailurePlan, HeartbeatMonitor
from repro.experiments.config import ExperimentConfig


class TestClusterConfig:
    def test_workers_mirror_experiment_processors(self):
        config = ClusterConfig.default(workers=6, tasks=50)
        assert config.num_workers == 6
        assert config.experiment.num_processors == 6
        assert config.experiment.num_transactions == 50

    def test_unit_conversions_are_inverse(self):
        config = ClusterConfig.default(workers=2, tasks=10)
        assert config.units_to_seconds(250.0) == pytest.approx(
            250.0 * config.seconds_per_unit
        )
        assert config.seconds_to_units(
            config.units_to_seconds(321.5)
        ) == pytest.approx(321.5)

    def test_guarantee_margin_in_units(self):
        config = ClusterConfig.default(workers=2, tasks=10)
        assert config.guarantee_margin_units == pytest.approx(
            config.guarantee_margin_seconds / config.seconds_per_unit
        )

    def test_heartbeat_timeout_is_two_intervals_by_default(self):
        config = ClusterConfig.default(workers=2, tasks=10)
        assert config.heartbeat_timeout == pytest.approx(
            2.0 * config.heartbeat_interval
        )

    def test_with_port_preserves_everything_else(self):
        config = ClusterConfig.smoke()
        moved = config.with_port(5555)
        assert moved.port == 5555
        assert moved.experiment == config.experiment
        assert moved.heartbeat_interval == config.heartbeat_interval

    def test_rejects_nonpositive_time_scale(self):
        with pytest.raises(ValueError, match="seconds_per_unit"):
            ClusterConfig.smoke(seconds_per_unit=0.0)

    def test_rejects_failure_target_outside_cluster(self):
        with pytest.raises(ValueError, match="failure targets worker"):
            ClusterConfig.smoke(
                workers=2, failure=FailurePlan(worker_index=5, after_seconds=1)
            )

    def test_config_is_frozen(self):
        config = ClusterConfig.smoke()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.port = 1234

    def test_config_survives_pickling(self):
        """Workers receive the config through multiprocessing spawn."""
        import pickle

        config = ClusterConfig.smoke(
            failure=FailurePlan(worker_index=1, after_seconds=0.5)
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config


class TestBuildClusterWorkload:
    def test_master_and_worker_builds_are_identical(self):
        """Both sides rebuild from (config, seed); any drift breaks the
        no-data-on-the-wire design."""
        from repro.cluster import build_cluster_workload

        experiment = ExperimentConfig.quick(
            num_transactions=20, num_processors=3, runs=1
        )
        db_a, tasks_a, txns_a = build_cluster_workload(experiment, seed=5)
        db_b, tasks_b, txns_b = build_cluster_workload(experiment, seed=5)
        assert [t.task_id for t in tasks_a] == [t.task_id for t in tasks_b]
        assert [t.deadline for t in tasks_a] == [t.deadline for t in tasks_b]
        assert [t.affinity for t in tasks_a] == [t.affinity for t in tasks_b]
        for processor in range(3):
            assert db_a.placement.contents_of(
                processor
            ) == db_b.placement.contents_of(processor)
        assert len(txns_a) == len(txns_b) == 20


class TestFailurePlan:
    def test_parse_valid_spec(self):
        plan = FailurePlan.parse("1@0.5")
        assert plan.worker_index == 1
        assert plan.after_seconds == 0.5

    @pytest.mark.parametrize(
        "spec", ["", "1", "@", "one@2", "1@soon", "1.5@2"]
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            FailurePlan.parse(spec)

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            FailurePlan(worker_index=-1, after_seconds=0.0)
        with pytest.raises(ValueError):
            FailurePlan(worker_index=0, after_seconds=-1.0)

    def test_due_only_for_target_after_delay(self):
        plan = FailurePlan(worker_index=2, after_seconds=1.0)
        assert not plan.due(worker_index=0, elapsed_seconds=99.0)
        assert not plan.due(worker_index=2, elapsed_seconds=0.5)
        assert plan.due(worker_index=2, elapsed_seconds=1.0)


class TestHeartbeatMonitor:
    def test_detection_within_two_intervals(self):
        """The acceptance bound: silence past interval*2 means dead."""
        monitor = HeartbeatMonitor(interval=0.25, miss_factor=2.0)
        monitor.register(0, now=0.0)
        assert monitor.expired(now=0.5) == []  # exactly at the bound
        assert monitor.expired(now=0.501) == [0]

    def test_beat_defers_expiry(self):
        monitor = HeartbeatMonitor(interval=1.0)
        monitor.register(0, now=0.0)
        monitor.beat(0, now=1.9)
        assert monitor.expired(now=2.5) == []
        assert monitor.expired(now=4.0) == [0]

    def test_each_death_reported_once(self):
        monitor = HeartbeatMonitor(interval=0.1)
        monitor.register(0, now=0.0)
        monitor.register(1, now=0.0)
        assert sorted(monitor.expired(now=10.0)) == [0, 1]
        assert monitor.expired(now=20.0) == []

    def test_beat_from_unknown_worker_is_ignored(self):
        monitor = HeartbeatMonitor(interval=0.1)
        monitor.beat(7, now=1.0)
        assert monitor.watched() == []

    def test_forget_stops_watching(self):
        monitor = HeartbeatMonitor(interval=0.1)
        monitor.register(0, now=0.0)
        monitor.forget(0)
        assert monitor.expired(now=10.0) == []

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(interval=1.0, miss_factor=0.5)
