"""Tests for trace sinks and the JSONL round trip."""

import io
import json

import pytest

from repro.observability import JsonlSink, MemorySink, read_jsonl


class TestMemorySink:
    def test_collects_and_filters_by_kind(self):
        sink = MemorySink()
        sink.emit({"event": "span", "name": "phase"})
        sink.emit({"event": "task", "transition": "arrived"})
        assert len(sink) == 2
        assert sink.of_kind("task") == [
            {"event": "task", "transition": "arrived"}
        ]
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_one_compact_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "run_start", "tasks": 3})
        sink.emit({"event": "run_end", "tasks": 3})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"event": "run_start", "tasks": 3}
        assert sink.events_written == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "span"})
        sink.close()
        assert path.exists()

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"event": "span"})
        sink.close()
        # Caller owns the stream; the sink must leave it open.
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"event": "span"}


class TestReadJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            {"event": "run_start", "scheduler": "rtsads"},
            {"event": "span", "name": "phase", "wall_s": 0.001},
        ]
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert read_jsonl(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [e["event"] for e in read_jsonl(path)] == ["a", "b"]

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\nnot-json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_missing_event_kind_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="'event'"):
            read_jsonl(path)
