"""Tests for trace sinks and the JSONL round trip."""

import io
import json
import subprocess
import sys
import textwrap

import pytest

from repro.observability import JsonlSink, MemorySink, read_jsonl


class TestMemorySink:
    def test_collects_and_filters_by_kind(self):
        sink = MemorySink()
        sink.emit({"event": "span", "name": "phase"})
        sink.emit({"event": "task", "transition": "arrived"})
        assert len(sink) == 2
        assert sink.of_kind("task") == [
            {"event": "task", "transition": "arrived"}
        ]
        sink.clear()
        assert len(sink) == 0


class TestJsonlSink:
    def test_writes_one_compact_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "run_start", "tasks": 3})
        sink.emit({"event": "run_end", "tasks": 3})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"event": "run_start", "tasks": 3}
        assert sink.events_written == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "span"})
        sink.close()
        assert path.exists()

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"event": "span"})
        sink.close()
        # Caller owns the stream; the sink must leave it open.
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"event": "span"}

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit({"event": "span"})
        sink.close()
        sink.close()  # second close from a re-entered finally: no error

    def test_every_emit_is_flushed(self, tmp_path):
        """The trace must be readable while the sink is still open —
        that is what makes a mid-run kill recoverable."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        try:
            sink.emit({"event": "run_start", "tasks": 1})
            sink.emit({"event": "task", "transition": "arrived"})
            # No close, no explicit flush: the lines must already be on disk.
            assert len(read_jsonl(path)) == 2
        finally:
            sink.close()

    def test_killed_process_leaves_a_readable_trace(self, tmp_path):
        """A process that dies without any cleanup (os._exit bypasses
        atexit, finally, and buffering flushes) must still leave every
        emitted event parseable on disk."""
        path = tmp_path / "trace.jsonl"
        script = tmp_path / "crasher.py"
        script.write_text(
            textwrap.dedent(
                f"""
                import os
                from repro.observability import JsonlSink

                sink = JsonlSink({str(path)!r})
                for index in range(25):
                    sink.emit({{"event": "task", "task_id": index}})
                os._exit(1)  # simulated crash: no close, no flush
                """
            )
        )
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True
        )
        assert result.returncode == 1, result.stderr
        events = read_jsonl(path)
        assert [e["task_id"] for e in events] == list(range(25))


class TestReadJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            {"event": "run_start", "scheduler": "rtsads"},
            {"event": "span", "name": "phase", "wall_s": 0.001},
        ]
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert read_jsonl(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [e["event"] for e in read_jsonl(path)] == ["a", "b"]

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "a"}\nnot-json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_missing_event_kind_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="'event'"):
            read_jsonl(path)
