"""End-to-end: an instrumented simulation emits the documented events."""

import pytest

from repro.core import RTSADS, UniformCommunicationModel, make_task
from repro.observability import Instrumentation, MemorySink, get_instrumentation
from repro.simulator import simulate


@pytest.fixture
def instrumented_run():
    sink = MemorySink()
    obs = Instrumentation(sink=sink)
    tasks = [
        make_task(i, processing_time=10.0, deadline=5_000.0) for i in range(6)
    ]
    result = simulate(
        RTSADS(UniformCommunicationModel(50.0)),
        tasks,
        num_workers=2,
        instrumentation=obs,
    )
    return result, obs, sink


class TestRunEvents:
    def test_run_start_and_end_bracket_the_trace(self, instrumented_run):
        result, _, sink = instrumented_run
        (start,) = sink.of_kind("run_start")
        (end,) = sink.of_kind("run_end")
        assert start["scheduler"] == "RT-SADS"
        assert start["tasks"] == 6
        assert start["workers"] == 2
        assert end["makespan"] == pytest.approx(result.makespan)
        assert end["deadline_hits"] == 6
        assert sink.events[0] is start
        assert sink.events[-1] is end

    def test_task_lifecycle_transitions_recorded(self, instrumented_run):
        _, _, sink = instrumented_run
        transitions = [e["transition"] for e in sink.of_kind("task")]
        assert transitions.count("arrived") == 6
        assert transitions.count("delivered") == 6
        assert transitions.count("started") == 6
        assert transitions.count("finished") == 6
        finished = [
            e for e in sink.of_kind("task") if e["transition"] == "finished"
        ]
        assert all(e["met_deadline"] for e in finished)

    def test_events_carry_scheduler_context(self, instrumented_run):
        _, _, sink = instrumented_run
        assert all(e["scheduler"] == "RT-SADS" for e in sink.events)


class TestPhaseSpans:
    def test_phase_spans_carry_search_internals(self, instrumented_run):
        result, _, sink = instrumented_run
        spans = [e for e in sink.of_kind("span") if e["name"] == "phase"]
        assert len(spans) == len(result.phases)
        for span in spans:
            assert span["quantum"] > 0
            assert span["vertices_generated"] >= 0
            assert span["feasibility_rejections"] >= 0
            assert span["batch_size"] >= 1
            assert span["wall_s"] >= 0


class TestMetrics:
    def test_per_scheduler_counters_accumulate(self, instrumented_run):
        result, obs, _ = instrumented_run
        counters = obs.metrics.snapshot()["counters"]
        assert counters["scheduler_phases{scheduler=RT-SADS}"] == len(
            result.phases
        )
        assert counters["runtime_runs"] == 1
        assert (
            counters["runtime_task_transitions{transition=finished}"] == 6
        )

    def test_explicit_instrumentation_leaves_global_default_alone(
        self, instrumented_run
    ):
        _, obs, _ = instrumented_run
        assert get_instrumentation() is not obs
        assert not get_instrumentation().enabled


class TestDisabledIsInert:
    def test_uninstrumented_run_matches_instrumented(self, instrumented_run):
        result, _, _ = instrumented_run
        tasks = [
            make_task(i, processing_time=10.0, deadline=5_000.0)
            for i in range(6)
        ]
        plain = simulate(
            RTSADS(UniformCommunicationModel(50.0)), tasks, num_workers=2
        )
        assert plain.makespan == pytest.approx(result.makespan)
        assert len(plain.phases) == len(result.phases)
        assert plain.trace.hit_ratio() == result.trace.hit_ratio()
