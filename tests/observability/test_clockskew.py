"""Tests for the one-way min-filter clock-offset estimator.

The math under test: every sample is ``receive - send = offset + latency``
with ``latency >= 0``, so the minimum sample over a run upper-bounds the
true offset by the smallest latency any message saw.  The estimator must
therefore only ever tighten (never loosen), track peers independently,
and translate worker clock readings by simple addition.
"""

from repro.observability import ClockOffsetEstimator


class TestObserve:
    def test_first_sample_is_the_estimate(self):
        est = ClockOffsetEstimator()
        assert est.observe(1, sent_mono=10.0, received_mono=12.5) == 2.5
        assert est.offset(1) == 2.5

    def test_minimum_sample_wins(self):
        """offset=2.0 with latencies 0.5, 0.25, 0.75 -> estimate 2.25."""
        est = ClockOffsetEstimator()
        est.observe(1, 10.0, 12.5)   # offset + 0.5
        est.observe(1, 20.0, 22.25)  # offset + 0.25  <- tightest
        est.observe(1, 30.0, 32.75)  # offset + 0.75
        assert est.offset(1) == 2.25

    def test_estimate_never_loosens(self):
        est = ClockOffsetEstimator()
        est.observe(1, 10.0, 12.25)
        loosened = est.observe(1, 20.0, 29.0)  # huge latency spike
        assert loosened == 2.25
        assert est.offset(1) == 2.25

    def test_negative_offsets_supported(self):
        """A worker whose clock is AHEAD of the master yields offset < 0."""
        est = ClockOffsetEstimator()
        est.observe(1, sent_mono=100.0, received_mono=97.5)
        assert est.offset(1) == -2.5

    def test_peers_are_independent(self):
        est = ClockOffsetEstimator()
        est.observe(1, 10.0, 12.0)
        est.observe(2, 10.0, 15.0)
        assert est.offset(1) == 2.0
        assert est.offset(2) == 5.0
        assert est.known_peers() == {1: 2.0, 2: 5.0}

    def test_sample_counts(self):
        est = ClockOffsetEstimator()
        assert est.samples(1) == 0
        est.observe(1, 10.0, 12.0)
        est.observe(1, 20.0, 22.0)
        assert est.samples(1) == 2
        assert est.samples(2) == 0


class TestCorrect:
    def test_unknown_peer_returns_none(self):
        est = ClockOffsetEstimator()
        assert est.offset(9) is None
        assert est.correct(9, 50.0) is None

    def test_translation_is_additive(self):
        est = ClockOffsetEstimator()
        est.observe(1, 10.0, 12.0)
        assert est.correct(1, 50.0) == 52.0

    def test_round_trip_recovers_master_time(self):
        """Zero-latency samples recover master timestamps exactly."""
        true_offset = 3.25
        est = ClockOffsetEstimator()
        for worker_time in (5.0, 6.0, 7.0):
            est.observe(1, worker_time, worker_time + true_offset)
        # An event stamped at worker time w happened at master time
        # w + true_offset; the estimator must reproduce it.
        assert est.correct(1, 8.5) == 8.5 + true_offset
