"""Tests for the Instrumentation bundle: binding, spans, the global default."""

import pytest

from repro.observability import (
    NULL_INSTRUMENTATION,
    NULL_SPAN,
    Instrumentation,
    MemorySink,
    get_instrumentation,
    instrumented,
    set_instrumentation,
)


def make_obs():
    sink = MemorySink()
    return Instrumentation(sink=sink), sink


class TestDisabled:
    def test_null_instrumentation_is_off(self):
        assert not NULL_INSTRUMENTATION.enabled

    def test_emit_is_noop_when_disabled(self):
        sink = MemorySink()
        obs = Instrumentation(sink=sink, enabled=False)
        obs.emit("task", transition="arrived")
        assert len(sink) == 0

    def test_span_returns_shared_null_span(self):
        obs = Instrumentation.disabled()
        assert obs.span("phase") is NULL_SPAN
        # The null span accepts the full protocol silently.
        with obs.span("phase") as span:
            span.set(quantum=1.0)

    def test_record_cell_is_noop_when_disabled(self):
        obs = Instrumentation.disabled()
        obs.record_cell({"scheduler": "rtsads"})
        assert obs.cells == []


class TestEmit:
    def test_emit_merges_bound_context(self):
        obs, sink = make_obs()
        bound = obs.bind(scheduler="rtsads", seed=7)
        bound.emit("task", transition="arrived", task_id=3)
        assert sink.events == [
            {
                "event": "task",
                "scheduler": "rtsads",
                "seed": 7,
                "transition": "arrived",
                "task_id": 3,
            }
        ]

    def test_bind_shares_metrics_sink_and_cells(self):
        obs, sink = make_obs()
        bound = obs.bind(seed=1)
        assert bound.metrics is obs.metrics
        assert bound.sink is sink
        bound.record_cell({"scheduler": "rtsads"})
        assert obs.cells == [{"scheduler": "rtsads"}]

    def test_nested_bind_merges_context(self):
        obs, sink = make_obs()
        obs.bind(scheduler="rtsads").bind(seed=2).emit("task")
        assert sink.events[0] == {
            "event": "task",
            "scheduler": "rtsads",
            "seed": 2,
        }


class TestSpan:
    def test_span_emits_event_and_observes_histogram(self):
        obs, sink = make_obs()
        with obs.span("phase", scheduler="rtsads") as span:
            span.set(quantum=2.5)
        (event,) = sink.of_kind("span")
        assert event["name"] == "phase"
        assert event["scheduler"] == "rtsads"
        assert event["quantum"] == 2.5
        assert event["wall_s"] >= 0
        snap = obs.metrics.snapshot()
        assert snap["histograms"]["span_seconds{span=phase}"]["count"] == 1

    def test_span_records_error_kind_on_exception(self):
        obs, sink = make_obs()
        with pytest.raises(RuntimeError):
            with obs.span("phase"):
                raise RuntimeError("boom")
        (event,) = sink.of_kind("span")
        assert event["error"] == "RuntimeError"

    def test_span_inherits_bound_context(self):
        obs, sink = make_obs()
        with obs.bind(seed=9).span("phase"):
            pass
        assert sink.of_kind("span")[0]["seed"] == 9


class TestGlobalDefault:
    def test_default_is_disabled(self):
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_set_and_restore(self):
        obs, _ = make_obs()
        try:
            assert set_instrumentation(obs) is obs
            assert get_instrumentation() is obs
        finally:
            set_instrumentation(None)
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_instrumented_context_manager_restores_on_exit(self):
        obs, _ = make_obs()
        with instrumented(obs) as active:
            assert active is obs
            assert get_instrumentation() is obs
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_instrumented_restores_on_exception(self):
        obs, _ = make_obs()
        with pytest.raises(RuntimeError):
            with instrumented(obs):
                raise RuntimeError("boom")
        assert get_instrumentation() is NULL_INSTRUMENTATION
