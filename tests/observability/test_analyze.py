"""Miss attribution on synthetic traces with known ground-truth causes.

Each test constructs a minimal event list whose correct classification is
known by construction, one per cause in the cascade, plus the properties
the cascade guarantees: attribution is total (every miss gets a cause)
and exclusive (exactly one, drawn from CAUSES).
"""

from repro.observability import (
    CAUSES,
    attribute_misses,
    diff_traces,
    render_attribution,
    render_diff,
    render_timeline,
)
from repro.observability.analyze import (
    CAUSE_ADMISSION_WAIT,
    CAUSE_DISPATCH_DELAY,
    CAUSE_EXECUTION_OVERRUN,
    CAUSE_SEARCH_LATENCY,
    CAUSE_WORKER_FAILURE,
    OUTCOME_EXPIRED,
    OUTCOME_LATE,
    OUTCOME_MET,
    phase_windows,
)


def task(task_id, transition, **fields):
    event = {"event": "task", "task_id": task_id, "transition": transition}
    event.update(fields)
    return event


def phase_span(t, time_used, name="phase"):
    return {"event": "span", "name": name, "t": t, "time_used": time_used}


def single_cause(events):
    """Attribute a one-miss trace and return (cause, attribution)."""
    report = attribute_misses(events)
    assert len(report.misses) == 1, report.misses
    miss = report.misses[0]
    assert miss.cause in CAUSES
    return miss.cause, miss


# ----- one synthetic trace per cause ----------------------------------------


def worker_failure_trace(task_id=1):
    return [
        task(task_id, "arrived", t=0.0, deadline=10.0),
        task(task_id, "dispatched", t=1.0, processor=0, phase=0,
             deadline=10.0),
        task(task_id, "surrendered", t=5.0, processor=0, deadline=10.0),
        task(task_id, "expired", t=10.0, deadline=10.0),
    ]


def execution_overrun_trace(task_id=2):
    return [
        task(task_id, "arrived", t=0.0, deadline=10.0),
        task(task_id, "dispatched", t=1.0, processor=0, phase=0,
             deadline=10.0, planned_cost=3.0),
        task(task_id, "started", t=2.0, processor=0),
        task(task_id, "finished", t=12.0, processor=0, met_deadline=False,
             overrun_seconds=0.8, deadline=10.0),
    ]


def dispatch_delay_trace(task_id=3):
    return [
        task(task_id, "arrived", t=0.0, deadline=10.0),
        task(task_id, "dispatched", t=9.5, processor=0, phase=1,
             deadline=10.0),
        task(task_id, "expired", t=10.0, deadline=10.0),
    ]


def search_latency_trace(task_id=4):
    return [
        phase_span(t=2.0, time_used=1.0),
        task(task_id, "arrived", t=0.0, arrival=0.0, deadline=10.0),
        task(task_id, "expired", t=10.0, arrival=0.0, deadline=10.0),
    ]


def admission_wait_trace(task_id=5, start=0.0):
    return [
        task(task_id, "arrived", t=start, deadline=start + 5.0),
        task(task_id, "expired", t=start + 5.0, deadline=start + 5.0),
    ]


class TestCascadeGroundTruth:
    def test_worker_failure(self):
        cause, miss = single_cause(worker_failure_trace())
        assert cause == CAUSE_WORKER_FAILURE
        assert miss.outcome == OUTCOME_EXPIRED

    def test_execution_overrun_from_stamped_overrun(self):
        cause, miss = single_cause(execution_overrun_trace())
        assert cause == CAUSE_EXECUTION_OVERRUN
        assert miss.outcome == OUTCOME_LATE
        assert "0.8" in miss.detail

    def test_execution_overrun_from_budget_arithmetic(self):
        """Sim traces carry no overrun_seconds; the budget check catches
        a task that started with room to finish yet finished late."""
        events = [
            task(2, "arrived", t=0.0, deadline=10.0),
            task(2, "delivered", t=1.0, processor=0, phase=0,
                 deadline=10.0, planned_cost=3.0),
            task(2, "started", t=2.0, processor=0),
            task(2, "finished", t=12.0, processor=0, met_deadline=False,
                 deadline=10.0),
        ]
        cause, _ = single_cause(events)
        assert cause == CAUSE_EXECUTION_OVERRUN

    def test_dispatch_delay_when_placed_too_late(self):
        cause, miss = single_cause(dispatch_delay_trace())
        assert cause == CAUSE_DISPATCH_DELAY
        assert miss.phase == 1

    def test_dispatch_delay_from_rejection(self):
        events = [
            task(3, "arrived", t=0.0, deadline=10.0),
            task(3, "dispatch_rejected", t=9.0, processor=0, deadline=10.0),
            task(3, "expired", t=10.0, deadline=10.0),
        ]
        cause, miss = single_cause(events)
        assert cause == CAUSE_DISPATCH_DELAY
        assert "re-validation" in miss.detail

    def test_dispatch_delay_beats_overrun_without_budget(self):
        """Started too late to ever make it: the execution is blameless,
        the placement delay is the cause."""
        events = [
            task(3, "arrived", t=0.0, deadline=10.0),
            task(3, "dispatched", t=8.5, processor=0, phase=0,
                 deadline=10.0, planned_cost=3.0),
            task(3, "started", t=9.0, processor=0),
            task(3, "finished", t=12.0, processor=0, met_deadline=False,
                 deadline=10.0),
        ]
        cause, _ = single_cause(events)
        assert cause == CAUSE_DISPATCH_DELAY

    def test_search_latency(self):
        cause, _ = single_cause(search_latency_trace())
        assert cause == CAUSE_SEARCH_LATENCY

    def test_admission_wait_with_no_phases(self):
        cause, _ = single_cause(admission_wait_trace())
        assert cause == CAUSE_ADMISSION_WAIT

    def test_admission_wait_when_phases_missed_the_window(self):
        """A phase that opened after the deadline cannot be the search's
        fault: the task was never considered."""
        events = [
            phase_span(t=50.0, time_used=2.0),
            task(5, "arrived", t=0.0, arrival=0.0, deadline=10.0),
            task(5, "expired", t=10.0, arrival=0.0, deadline=10.0),
        ]
        cause, _ = single_cause(events)
        assert cause == CAUSE_ADMISSION_WAIT

    def test_failure_dominates_everything(self):
        """A surrendered task that also overran still blames the crash."""
        events = [
            task(1, "arrived", t=0.0, deadline=10.0),
            task(1, "dispatched", t=1.0, processor=0, phase=0,
                 deadline=10.0, planned_cost=3.0),
            task(1, "started", t=2.0, processor=0),
            task(1, "surrendered", t=4.0, processor=0, deadline=10.0),
            task(1, "failed", t=4.0, processor=0, deadline=10.0),
        ]
        cause, _ = single_cause(events)
        assert cause == CAUSE_WORKER_FAILURE


class TestAttributionProperties:
    def combined(self):
        events = []
        events += worker_failure_trace(1)
        events += execution_overrun_trace(2)
        events += dispatch_delay_trace(3)
        events += search_latency_trace(4)
        # Arrives long after the only phase window ([2, 3]) closed, so the
        # search cannot be blamed: pure admission wait.
        events += admission_wait_trace(5, start=100.0)
        # One met task: must never appear among the misses.
        events += [
            task(6, "arrived", t=0.0, deadline=20.0),
            task(6, "dispatched", t=1.0, processor=1, phase=0,
                 deadline=20.0),
            task(6, "started", t=2.0, processor=1),
            task(6, "finished", t=5.0, processor=1, met_deadline=True,
                 deadline=20.0),
        ]
        return events

    def test_every_miss_gets_exactly_one_known_cause(self):
        report = attribute_misses(self.combined())
        assert report.total_tasks == 6
        assert report.outcomes[OUTCOME_MET] == 1
        assert len(report.misses) == 5
        assert [m.cause for m in report.misses] == [
            "worker_failure",
            "execution_overrun",
            "dispatch_delay",
            "search_latency",
            "admission_wait",
        ]
        assert all(m.cause in CAUSES for m in report.misses)
        # Total: sum over causes equals the miss count (nothing dropped,
        # nothing double counted).
        assert sum(report.by_cause.values()) == len(report.misses)

    def test_met_outcome_derived_from_deadline_when_unstamped(self):
        events = [
            task(7, "arrived", t=0.0, deadline=10.0),
            task(7, "finished", t=9.0, deadline=10.0),
        ]
        report = attribute_misses(events)
        assert report.outcomes[OUTCOME_MET] == 1
        assert not report.misses

    def test_render_mentions_full_attribution(self):
        text = render_attribution(attribute_misses(self.combined()))
        assert "deadline misses: 5 (100% attributed)" in text
        assert "worker_failure" in text

    def test_render_with_no_misses(self):
        events = [
            task(1, "arrived", t=0.0, deadline=10.0),
            task(1, "finished", t=5.0, met_deadline=True, deadline=10.0),
        ]
        text = render_attribution(attribute_misses(events))
        assert "nothing to attribute" in text


class TestPhaseWindows:
    def test_plain_phase_spans(self):
        windows = phase_windows(
            [phase_span(1.0, 2.0), phase_span(5.0, 0.5)]
        )
        assert windows == [(1.0, 3.0), (5.0, 5.5)]

    def test_cluster_spans_preferred_to_avoid_double_counting(self):
        """Live traces nest scheduler ``phase`` spans inside
        ``cluster_phase`` spans; only the outer kind must count."""
        events = [
            phase_span(1.0, 2.0, name="phase"),
            phase_span(1.0, 2.5, name="cluster_phase"),
            phase_span(5.0, 1.0, name="phase"),
            phase_span(5.0, 1.2, name="cluster_phase"),
        ]
        assert phase_windows(events) == [(1.0, 3.5), (5.0, 6.2)]


class TestTimeline:
    def trace(self):
        return [
            task(12, "arrived", t=0.0, deadline=30.0),
            task(12, "dispatched", t=1.0, processor=0, phase=0,
                 deadline=30.0),
            task(12, "started", t=2.0, processor=0),
            task(12, "finished", t=20.0, processor=0, met_deadline=True,
                 deadline=30.0),
            task(7, "arrived", t=0.0, deadline=10.0),
            task(7, "dispatched", t=1.0, processor=1, phase=0,
                 deadline=10.0),
            task(7, "started", t=3.0, processor=1),
            task(7, "finished", t=15.0, processor=1, met_deadline=False,
                 deadline=10.0),
        ]

    def test_rows_digits_and_miss_marker(self):
        chart = render_timeline(self.trace(), width=40)
        lines = chart.splitlines()
        p0 = next(line for line in lines if line.startswith("P0"))
        p1 = next(line for line in lines if line.startswith("P1"))
        assert "2" in p0  # task 12 draws its id mod 10
        assert "!" in p1  # task 7 missed
        assert "!" not in p0

    def test_phase_filter_and_empty_scope(self):
        assert "no executed tasks" in render_timeline(
            self.trace(), phase=99
        )


class TestDiff:
    def test_identical_traces(self):
        events = dispatch_delay_trace()
        diff = diff_traces(events, list(events))
        assert diff.identical_outcomes
        assert "same outcome" in render_diff(diff, "sim", "cluster")

    def test_outcome_change_and_presence(self):
        sim = [
            task(1, "arrived", t=0.0, deadline=10.0),
            task(1, "finished", t=5.0, met_deadline=True, deadline=10.0),
            task(2, "arrived", t=0.0, deadline=10.0),
            task(2, "finished", t=5.0, met_deadline=True, deadline=10.0),
        ]
        cluster = [
            task(1, "arrived", t=0.0, deadline=10.0),
            task(1, "finished", t=11.0, met_deadline=False, deadline=10.0),
            task(3, "arrived", t=0.0, deadline=10.0),
            task(3, "finished", t=5.0, met_deadline=True, deadline=10.0),
        ]
        diff = diff_traces(sim, cluster)
        assert not diff.identical_outcomes
        assert diff.only_in_a == [2]
        assert diff.only_in_b == [3]
        assert diff.outcome_changes == [(1, OUTCOME_MET, OUTCOME_LATE)]
        text = render_diff(diff, "sim", "cluster")
        assert "only in sim: [2]" in text
        assert "only in cluster: [3]" in text
