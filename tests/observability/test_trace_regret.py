"""Regret labeling: misses classified against the workload oracle.

Ground-truth traces, one per workload class the analyzer can assign:

* provably **feasible** — every miss is *regret* (the scheduler alone is
  to blame; a clairvoyant scheduler would have missed nothing);
* provably **infeasible** — at least one miss was forced by the workload
  no matter the scheduler, so nothing beyond the oracle's floor is
  claimed as regret;
* **unknown** — the trace predates arrival enrichment (no per-task cost
  or no ``run_start`` worker count), so no claim is made at all.

Plus the end-to-end check that an instrumented simulator run emits
enriched ``arrived`` events the oracle can actually consume.
"""

from repro.analysis.schedulability import FEASIBLE, INFEASIBLE, UNKNOWN
from repro.core import RTSADS, UniformCommunicationModel, make_task
from repro.observability import (
    Instrumentation,
    MemorySink,
    attribute_misses,
    render_attribution,
    trace_oracle,
)
from repro.observability.analyze import build_timelines
from repro.simulator import simulate


def run_start(workers=1, tasks=1):
    return {"event": "run_start", "workers": workers, "tasks": tasks}


def task(task_id, transition, **fields):
    event = {"event": "task", "task_id": task_id, "transition": transition}
    event.update(fields)
    return event


def feasible_trace_with_regret():
    """Two small tasks, one worker, generous deadlines — yet one misses.

    Demand is 2+2=4 units against a deadline horizon of 20 on one
    worker, and the clairvoyant EDF witness schedules both, so the
    oracle says *feasible*; the trace nevertheless records task 2
    expiring (say the scheduler sat on it), which is pure regret.
    """
    return [
        run_start(workers=1, tasks=2),
        task(1, "arrived", t=0.0, deadline=20.0, cost=2.0),
        task(2, "arrived", t=0.0, deadline=20.0, cost=2.0),
        task(1, "dispatched", t=1.0, processor=0, phase=0, deadline=20.0),
        task(1, "started", t=1.0, processor=0),
        task(1, "finished", t=3.0, processor=0, met_deadline=True,
             deadline=20.0),
        task(2, "expired", t=20.0, deadline=20.0),
    ]


def infeasible_trace():
    """A task that cannot make its deadline on any machine.

    Arrival 0, cost 30, deadline 10: ``a + p > d``, so the oracle proves
    the workload infeasible with one forced miss — the recorded expiry
    is not (provably) the scheduler's fault.
    """
    return [
        run_start(workers=2, tasks=2),
        task(1, "arrived", t=0.0, deadline=10.0, cost=30.0),
        task(2, "arrived", t=0.0, deadline=50.0, cost=2.0),
        task(2, "dispatched", t=1.0, processor=0, phase=0, deadline=50.0),
        task(2, "started", t=1.0, processor=0),
        task(2, "finished", t=3.0, processor=0, met_deadline=True,
             deadline=50.0),
        task(1, "expired", t=10.0, deadline=10.0),
    ]


def legacy_trace_without_costs():
    """Pre-enrichment trace: arrivals carry no cost, no claim possible."""
    return [
        run_start(workers=1, tasks=1),
        task(1, "arrived", t=0.0, deadline=10.0),
        task(1, "expired", t=10.0, deadline=10.0),
    ]


class TestGroundTruthPerClass:
    def test_feasible_workload_miss_is_regret(self):
        report = attribute_misses(feasible_trace_with_regret())
        assert report.workload_class == FEASIBLE
        assert report.oracle is not None
        assert report.oracle.forced_misses == 0
        (miss,) = report.misses
        assert miss.workload == FEASIBLE
        assert miss.is_regret
        assert report.regret_misses == 1

    def test_infeasible_workload_miss_is_not_regret(self):
        report = attribute_misses(infeasible_trace())
        assert report.workload_class == INFEASIBLE
        assert report.oracle.forced_misses >= 1
        (miss,) = report.misses
        assert miss.workload == INFEASIBLE
        assert not miss.is_regret
        # One miss, and the oracle forced at least one: no regret claimed.
        assert report.regret_misses == 0

    def test_legacy_trace_classifies_unknown(self):
        report = attribute_misses(legacy_trace_without_costs())
        assert report.workload_class == UNKNOWN
        assert report.oracle is None
        (miss,) = report.misses
        assert miss.workload == UNKNOWN
        assert not miss.is_regret
        assert report.regret_misses == 0

    def test_missing_run_start_classifies_unknown(self):
        events = [e for e in feasible_trace_with_regret()
                  if e["event"] != "run_start"]
        report = attribute_misses(events)
        assert report.workload_class == UNKNOWN

    def test_partial_cost_coverage_classifies_unknown(self):
        """One undocumented task poisons the reconstruction entirely.

        A partial triple set could flip the verdict (the heavy tasks may
        be exactly the ones missing costs), so the oracle must decline.
        """
        events = feasible_trace_with_regret()
        events[2] = task(2, "arrived", t=0.0, deadline=20.0)  # cost dropped
        report = attribute_misses(events)
        assert report.workload_class == UNKNOWN
        assert report.oracle is None


class TestRegretBeyondForcedFloor:
    def test_extra_misses_on_infeasible_workload_count_as_regret(self):
        """Forced floor 1, but two misses: one of them was avoidable."""
        events = infeasible_trace()
        # Replace task 2's happy ending with an expiry: now 2 misses.
        events = [e for e in events
                  if not (e.get("task_id") == 2
                          and e["transition"] in ("dispatched", "started",
                                                  "finished"))]
        events.append(task(2, "expired", t=50.0, deadline=50.0))
        report = attribute_misses(events)
        assert report.workload_class == INFEASIBLE
        assert len(report.misses) == 2
        assert report.regret_misses == len(report.misses) - \
            report.oracle.forced_misses


class TestRendering:
    def test_feasible_render_mentions_regret(self):
        text = render_attribution(
            attribute_misses(feasible_trace_with_regret())
        )
        assert "provably feasible" in text
        assert "regret" in text

    def test_infeasible_render_mentions_forced_floor(self):
        text = render_attribution(attribute_misses(infeasible_trace()))
        assert "provably infeasible" in text
        assert "forced" in text

    def test_unknown_render_mentions_unknown(self):
        text = render_attribution(
            attribute_misses(legacy_trace_without_costs())
        )
        assert "workload oracle: unknown" in text


class TestSimulatorEmitsOracleReadyTraces:
    def test_sim_trace_resolves_an_oracle_verdict(self):
        sink = MemorySink()
        obs = Instrumentation(sink=sink)
        tasks = [
            make_task(i, processing_time=10.0, deadline=5_000.0)
            for i in range(4)
        ]
        simulate(
            RTSADS(UniformCommunicationModel(50.0)),
            tasks,
            num_workers=2,
            instrumentation=obs,
        )
        arrived = [e for e in sink.of_kind("task")
                   if e["transition"] == "arrived"]
        assert len(arrived) == 4
        assert all("cost" in e and "deadline" in e for e in arrived)
        verdict = trace_oracle(sink.events, build_timelines(sink.events))
        assert verdict is not None
        assert verdict.verdict == FEASIBLE
        report = attribute_misses(sink.events)
        assert report.workload_class == FEASIBLE
        assert report.regret_misses == 0
