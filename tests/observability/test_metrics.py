"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.observability import (
    HISTOGRAM_SAMPLE_CAP,
    MetricsRegistry,
    format_key,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("phases")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("phases")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_and_labels_share_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("phases", scheduler="rtsads")
        b = registry.counter("phases", scheduler="rtsads")
        assert a is b

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("phases", scheduler="rtsads")
        b = registry.counter("phases", scheduler="dcols")
        assert a is not b
        a.inc(3)
        assert b.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("quantum")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_quantiles_nearest_rank(self):
        hist = MetricsRegistry().histogram("quantum")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(0.5) == 51.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_out_of_range_rejected(self):
        hist = MetricsRegistry().histogram("quantum")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_sample_cap_keeps_exact_aggregates(self):
        hist = MetricsRegistry().histogram("quantum")
        n = HISTOGRAM_SAMPLE_CAP + 500
        for value in range(n):
            hist.observe(float(value))
        # count/total/min/max stay exact past the cap...
        assert hist.count == n
        assert hist.max == float(n - 1)
        # ...while the stored sample stops growing.
        assert len(hist._samples) == HISTOGRAM_SAMPLE_CAP

    def test_empty_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("quantum").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p95"] == 0.0


class TestRegistry:
    def test_snapshot_renders_labelled_keys(self):
        registry = MetricsRegistry()
        registry.counter("phases", scheduler="rtsads").inc(7)
        registry.gauge("depth").set(3)
        registry.histogram("quantum", scheduler="rtsads").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"]["phases{scheduler=rtsads}"] == 7
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["quantum{scheduler=rtsads}"]["count"] == 1

    def test_snapshot_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x", b="2", a="1")
        b = registry.counter("x", a="1", b="2")
        assert a is b
        assert format_key(a.key) == "x{a=1,b=2}"

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("phases")
        counter.inc(9)
        hist = registry.histogram("quantum")
        hist.observe(4.0)
        registry.reset()
        # Handed-out references stay live and read zero.
        assert counter.value == 0
        assert hist.count == 0
        counter.inc()
        assert registry.snapshot()["counters"]["phases"] == 1

    def test_name_label_is_reserved(self):
        # Through the registry methods Python itself rejects the collision
        # with the positional parameter; the key builder backs that up for
        # any direct-dict path.
        from repro.observability.metrics import _key

        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.counter("phases", name="rtsads")
        with pytest.raises(ValueError, match="reserved"):
            _key("phases", {"name": "rtsads"})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
