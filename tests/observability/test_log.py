"""Tests for the structured logger: levels, binding, formatting."""

import io

import pytest

from repro.observability import (
    DEBUG,
    ERROR,
    INFO,
    OFF,
    WARNING,
    StructuredLogger,
    parse_level,
)


def make_logger(level="info", **kwargs):
    stream = io.StringIO()
    return StructuredLogger(level=level, stream=stream, **kwargs), stream


class TestLevels:
    def test_parse_level_accepts_names_and_ints(self):
        assert parse_level("debug") == DEBUG
        assert parse_level("INFO") == INFO
        assert parse_level("off") == OFF
        assert parse_level(WARNING) == WARNING

    def test_parse_level_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_level("chatty")

    def test_records_below_level_are_dropped(self):
        logger, stream = make_logger(level="warning")
        logger.info("hidden")
        logger.warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_off_silences_everything(self):
        logger, stream = make_logger(level=OFF)
        logger.error("still hidden")
        assert stream.getvalue() == ""


class TestFormatting:
    def test_line_carries_level_name_and_fields(self):
        logger, stream = make_logger(name="repro.test")
        logger.info("phase done", scheduler="rtsads", hit=91.25)
        line = stream.getvalue().strip()
        assert " INFO repro.test phase done " in line
        assert "scheduler=rtsads" in line
        assert "hit=91.25" in line

    def test_values_with_spaces_are_quoted(self):
        logger, stream = make_logger()
        logger.info("msg", note="two words")
        assert "note='two words'" in stream.getvalue()


class TestBinding:
    def test_bound_context_appears_on_every_record(self):
        logger, stream = make_logger()
        child = logger.bind(scheduler="dcols", seed=7)
        child.info("repetition done")
        line = stream.getvalue()
        assert "scheduler=dcols" in line
        assert "seed=7" in line

    def test_call_fields_override_bound_context(self):
        logger, stream = make_logger()
        child = logger.bind(phase=1)
        child.info("msg", phase=2)
        assert "phase=2" in stream.getvalue()
        assert "phase=1" not in stream.getvalue()

    def test_set_level_propagates_across_bind_tree(self):
        logger, stream = make_logger(level="warning")
        child = logger.bind(scheduler="rtsads")
        child.debug("hidden")
        logger.set_level("debug")
        # The child was created before the level change and still sees it.
        child.debug("now visible")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "now visible" in output

    def test_is_enabled_for(self):
        logger, _ = make_logger(level="info")
        assert logger.is_enabled_for(ERROR)
        assert not logger.is_enabled_for(DEBUG)
