"""Unit tests of the admission policies (pure logic, no sockets)."""

from __future__ import annotations

import pytest

from repro.core import make_task
from repro.service import (
    ADMISSION_POLICY_NAMES,
    AdmissionState,
    QueuedTask,
    build_policy,
)


def queued(task_id, cost=10.0, deadline=100.0):
    return QueuedTask(task_id=task_id, cost=cost, deadline=deadline)


def newcomer(cost=10.0, deadline=100.0):
    return make_task(999, processing_time=cost, deadline=deadline)


def state(pending=(), outstanding=(), now=0.0, workers=2, capacity=40.0):
    return AdmissionState(
        now=now,
        workers=workers,
        capacity_units=capacity,
        pending=tuple(pending),
        outstanding=tuple(outstanding),
    )


class TestRegistry:
    @pytest.mark.parametrize("name", ADMISSION_POLICY_NAMES)
    def test_every_name_builds_with_matching_name(self, name):
        assert build_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_policy("lifo")


class TestRejectNewest:
    def test_admits_under_capacity(self):
        policy = build_policy("reject-newest")
        decision = policy.decide(newcomer(), 10.0, state(capacity=40.0))
        assert decision.accept
        assert decision.shed == ()

    def test_rejects_on_overflow(self):
        policy = build_policy("reject-newest")
        decision = policy.decide(
            newcomer(),
            10.0,
            state(pending=[queued(0, cost=35.0)], capacity=40.0),
        )
        assert not decision.accept
        assert decision.reason == "backlog-full"

    def test_exact_fit_admits(self):
        policy = build_policy("reject-newest")
        decision = policy.decide(
            newcomer(),
            10.0,
            state(pending=[queued(0, cost=30.0)], capacity=40.0),
        )
        assert decision.accept

    def test_outstanding_work_does_not_count_against_backlog(self):
        """Dispatched work left the queue; only pending fills the bound."""
        policy = build_policy("reject-newest")
        decision = policy.decide(
            newcomer(),
            10.0,
            state(outstanding=[queued(0, cost=500.0)], capacity=40.0),
        )
        assert decision.accept


class TestLeastSlack:
    def test_sheds_tighter_pending_to_fit_newcomer(self):
        policy = build_policy("least-slack")
        tight = queued(0, cost=35.0, deadline=40.0)  # slack 5
        decision = policy.decide(
            newcomer(cost=10.0, deadline=200.0),  # slack 190
            10.0,
            state(pending=[tight], capacity=40.0),
        )
        assert decision.accept
        assert decision.shed == (0,)

    def test_rejects_newcomer_with_least_slack(self):
        policy = build_policy("least-slack")
        loose = queued(0, cost=35.0, deadline=1000.0)
        decision = policy.decide(
            newcomer(cost=10.0, deadline=25.0),  # slack 15, the tightest
            10.0,
            state(pending=[loose], capacity=40.0),
        )
        assert not decision.accept
        assert decision.reason == "least-slack"
        assert decision.shed == ()

    def test_sheds_in_least_slack_order_until_fit(self):
        policy = build_policy("least-slack")
        pending = [
            queued(0, cost=15.0, deadline=30.0),  # slack 15 (tightest)
            queued(1, cost=15.0, deadline=60.0),  # slack 45
            queued(2, cost=15.0, deadline=90.0),  # slack 75
        ]
        decision = policy.decide(
            newcomer(cost=10.0, deadline=500.0),
            10.0,
            state(pending=pending, capacity=40.0),
        )
        assert decision.accept
        assert decision.shed == (0,)  # one eviction already fits

    def test_no_shedding_when_it_fits(self):
        policy = build_policy("least-slack")
        decision = policy.decide(
            newcomer(), 10.0, state(pending=[queued(0)], capacity=40.0)
        )
        assert decision.accept
        assert decision.shed == ()

    def test_deterministic_tie_break_on_task_id(self):
        policy = build_policy("least-slack")
        twins = [
            queued(7, cost=20.0, deadline=50.0),
            queued(3, cost=20.0, deadline=50.0),
        ]
        decision = policy.decide(
            newcomer(cost=10.0, deadline=500.0),
            10.0,
            state(pending=twins, capacity=40.0),
        )
        assert decision.accept
        assert decision.shed == (3,)  # equal slack -> lowest id first


class TestSchedulability:
    def test_admits_when_demand_fits(self):
        policy = build_policy("schedulability")
        decision = policy.decide(
            newcomer(cost=10.0, deadline=100.0),
            10.0,
            state(workers=2),
        )
        assert decision.accept

    def test_rejects_when_demand_exceeds_capacity(self):
        policy = build_policy("schedulability")
        # Demand by t=20: 3 * 15 units; supply: 2 workers * 20 = 40.
        pending = [
            queued(0, cost=15.0, deadline=20.0),
            queued(1, cost=15.0, deadline=20.0),
        ]
        decision = policy.decide(
            newcomer(cost=15.0, deadline=20.0),
            15.0,
            state(pending=pending, workers=2),
        )
        assert not decision.accept
        assert decision.reason == "demand-exceeds-capacity"

    def test_counts_outstanding_work_in_demand(self):
        policy = build_policy("schedulability")
        outstanding = [
            queued(0, cost=15.0, deadline=20.0),
            queued(1, cost=15.0, deadline=20.0),
        ]
        decision = policy.decide(
            newcomer(cost=15.0, deadline=20.0),
            15.0,
            state(outstanding=outstanding, workers=2),
        )
        assert not decision.accept

    def test_earlier_deadlines_do_not_block_admission(self):
        """Work due before the newcomer's deadline still adds to demand at
        the newcomer's checkpoint, but no checkpoint earlier than the
        newcomer's own deadline is inspected."""
        policy = build_policy("schedulability")
        # Hopeless early deadline, but the newcomer's own checkpoint at
        # t=1000 has plenty of supply.
        pending = [queued(0, cost=50.0, deadline=1.0)]
        decision = policy.decide(
            newcomer(cost=10.0, deadline=1000.0),
            10.0,
            state(pending=pending, workers=2),
        )
        assert decision.accept

    def test_no_workers_rejects(self):
        policy = build_policy("schedulability")
        decision = policy.decide(
            newcomer(), 10.0, state(workers=0)
        )
        assert not decision.accept
        assert decision.reason == "no-capacity"

    def test_more_workers_admit_more(self):
        policy = build_policy("schedulability")
        crowded = [queued(i, cost=20.0, deadline=25.0) for i in range(2)]
        tight = state(pending=crowded, workers=2)
        roomy = state(pending=crowded, workers=4)
        task = newcomer(cost=20.0, deadline=25.0)
        assert not policy.decide(task, 20.0, tight).accept
        assert policy.decide(task, 20.0, roomy).accept


class TestDeterminism:
    @pytest.mark.parametrize("name", ADMISSION_POLICY_NAMES)
    def test_same_state_same_decision(self, name):
        policy = build_policy(name)
        snapshot = state(
            pending=[queued(0, cost=30.0, deadline=35.0)],
            outstanding=[queued(1, cost=10.0, deadline=50.0)],
            capacity=35.0,
        )
        task = newcomer(cost=10.0, deadline=80.0)
        first = policy.decide(task, 10.0, snapshot)
        second = policy.decide(task, 10.0, snapshot)
        assert first == second
