"""End-to-end service runs: elastic joins, fail-stop, SIGTERM, traces.

These drive :func:`repro.service.run_service` the way the CLI does —
real worker processes, a real load generator on the wire — and assert
the service-mode invariants: every submission settles, membership
changes are absorbed, and a traced run attributes every deadline miss.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import ClusterConfig, FailurePlan
from repro.observability import (
    Instrumentation,
    JsonlSink,
    attribute_misses,
    read_jsonl,
)
from repro.service import (
    JoinPlan,
    LoadSpec,
    ServiceClient,
    ServiceConfig,
    run_load,
    run_service,
)


def smoke_service(workers=2, tasks=24, seed=7, **overrides) -> ServiceConfig:
    cluster = ClusterConfig.smoke(workers=workers, tasks=tasks, seed=seed)
    return ServiceConfig(cluster=cluster, **overrides)


def make_driver(spec: LoadSpec, holder: dict):
    """A drive_load callable that parks its LoadReport in ``holder``."""

    def _drive(host: str, port: int) -> None:
        holder["report"] = run_load(host, port, spec)

    return _drive


class TestServiceUnderLoad:
    def test_elastic_join_and_failstop_absorb_load(
        self, assert_no_leaked_children
    ):
        """One worker joins mid-run, another fail-stops; the stream keeps
        settling and the books balance on both sides of the wire."""
        service = smoke_service(workers=2, tasks=24)
        service = service.with_cluster(
            service.cluster.with_failure(
                FailurePlan(worker_index=1, after_seconds=0.8)
            )
        )
        spec = LoadSpec(
            experiment=service.cluster.experiment,
            arrival="burst",
            offered_load=1.0,
            submissions=24,
            seed=3,
            seconds_per_unit=service.cluster.seconds_per_unit,
        )
        holder: dict = {}
        report = run_service(
            service,
            joins=[JoinPlan(worker_index=2, after_seconds=0.4)],
            drive_load=make_driver(spec, holder),
        )
        load = holder["report"]
        assert load.submitted == 24
        assert load.unsettled == 0
        assert load.accepted + load.rejected == load.submitted
        # Client-side and master-side ledgers must agree.
        assert report.extras["submitted"] == load.submitted
        assert report.extras["accepted"] == load.accepted
        # Both membership events really happened.
        assert report.extras["distinct_workers"] == 3
        assert report.workers_lost >= 1
        # Fail-stop surrenders guarantees; it never violates them.
        assert report.guaranteed_violations == 0

    def test_concurrent_clients_offer_one_shared_stream(
        self, assert_no_leaked_children
    ):
        """--clients N deals the same stream over N connections: the
        union of submissions is unchanged and both ledgers still agree."""
        service = smoke_service(workers=2, tasks=24)
        spec = LoadSpec(
            experiment=service.cluster.experiment,
            arrival="burst",
            offered_load=1.0,
            submissions=24,
            seed=3,
            seconds_per_unit=service.cluster.seconds_per_unit,
            clients=3,
        )
        holder: dict = {}
        report = run_service(service, drive_load=make_driver(spec, holder))
        load = holder["report"]
        assert load.submitted == 24
        assert load.unsettled == 0
        assert load.accepted + load.rejected == load.submitted
        assert report.extras["submitted"] == load.submitted
        assert report.extras["accepted"] == load.accepted

    def test_nonpositive_clients_rejected(self):
        with pytest.raises(ValueError, match="clients"):
            LoadSpec(
                experiment=ClusterConfig.smoke().experiment, clients=0
            )

    def test_traced_run_fully_attributes_every_miss(
        self, tmp_path, assert_no_leaked_children
    ):
        trace_path = tmp_path / "service-trace.jsonl"
        service = smoke_service(workers=2, tasks=16)
        spec = LoadSpec(
            experiment=service.cluster.experiment,
            arrival="poisson",
            offered_load=1.5,  # overload on purpose: we want misses
            submissions=24,
            seed=11,
            seconds_per_unit=service.cluster.seconds_per_unit,
        )
        holder: dict = {}
        obs = Instrumentation(sink=JsonlSink(os.fspath(trace_path)))
        try:
            report = run_service(
                service,
                instrumentation=obs,
                drive_load=make_driver(spec, holder),
            )
        finally:
            obs.close()
        assert holder["report"].unsettled == 0
        events = read_jsonl(os.fspath(trace_path))
        assert events, "traced run produced no events"
        attribution = attribute_misses(events)
        # Every accepted submission reached a terminal state in the trace,
        # and every miss carries a cause — nothing vanishes unexplained.
        assert attribution.total_tasks == report.extras["accepted"]
        assert sum(attribution.outcomes.values()) == attribution.total_tasks
        miss_ids = [m.task_id for m in attribution.misses]
        assert len(miss_ids) == len(set(miss_ids)), (
            "a task was attributed twice"
        )
        for miss in attribution.misses:
            assert miss.cause, f"miss {miss.task_id} has no cause"


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_cleanly(
        self, tmp_path, assert_no_leaked_children
    ):
        """`repro serve` under SIGTERM: every in-flight submission settles
        (completed or surrendered) and the process exits 0."""
        serve = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "serve",
                "--workers",
                "2",
                "--transactions",
                "16",
                "--time-scale",
                "0.02",  # slow clock: work is genuinely in flight at kill
                "--drain-grace",
                "2.0",
                "--verbose",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        client = None
        try:
            port = self._scrape_port(serve)
            client = ServiceClient.connect("127.0.0.1", port)
            for template_id in range(8):
                client.submit(template_id)
            client.poll(0.3)  # let ACCEPTs land before the kill
            serve.send_signal(signal.SIGTERM)
            assert client.drain(timeout=60.0), (
                "submissions left unsettled across SIGTERM: "
                f"{[o.request_id for o in client.unsettled()]}"
            )
            statuses = {
                o.status for o in client.outcomes.values() if o.accepted
            }
            assert statuses <= {"completed", "expired", "surrendered"}
            stdout, _stderr = serve.communicate(timeout=60)
        finally:
            if client is not None:
                client.close()
            if serve.poll() is None:
                serve.kill()
                serve.communicate(timeout=30)
        assert serve.returncode == 0, stdout
        assert "service backend" in stdout

    @staticmethod
    def _scrape_port(serve: subprocess.Popen) -> int:
        """The bound port, from the structured 'cluster ready' log line."""
        lines = []
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = serve.stderr.readline()
            if not line:
                if serve.poll() is not None:
                    break
                time.sleep(0.05)
                continue
            lines.append(line)
            match = re.search(r"port=(\d+)", line)
            if match:
                return int(match.group(1))
        raise AssertionError(
            "serve never reported its port:\n" + "".join(lines)
        )
