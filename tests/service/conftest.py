"""Fixtures for the service-mode suite: hard timeouts, leak detection.

Service tests run real processes and sockets (like the live-cluster
suite), so every test here runs under a SIGALRM hard timeout and the
integration tests assert zero leaked children afterwards.
"""

from __future__ import annotations

import multiprocessing
import signal

import pytest

#: Generous per-test ceiling; the in-test budgets are far tighter.
HARD_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def hard_timeout():
    """Abort any test in this package that wedges, with a clear message."""

    def _alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError(
            f"service test exceeded the {HARD_TIMEOUT_SECONDS}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(HARD_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def assert_no_leaked_children():
    """Fails the test if it leaves live child processes behind."""
    yield
    leaked = [
        p for p in multiprocessing.active_children() if p.is_alive()
    ]
    for process in leaked:  # clean up before failing, keep the suite sane
        process.terminate()
        process.join(timeout=2.0)
    assert not leaked, f"leaked worker processes: {leaked}"
