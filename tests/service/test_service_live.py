"""Live service-mode behavior: admission, results, drain, elastic joins.

Same determinism discipline as the live-cluster suite: fixed seeds,
generous deadlines, small workloads, the package SIGALRM hard timeout,
and explicit no-leaked-children assertions.
"""

from __future__ import annotations

import contextlib
import dataclasses
import socket
import threading
import time

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import ClusterConfig, reap_workers, spawn_worker
from repro.observability import get_instrumentation
from repro.service import ServiceClient, ServiceConfig, ServiceMaster


def smoke_service(workers=2, tasks=16, seed=7, **overrides) -> ServiceConfig:
    cluster = ClusterConfig.smoke(workers=workers, tasks=tasks, seed=seed)
    return ServiceConfig(cluster=cluster, **overrides)


def assert_port_released(port: int) -> None:
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        probe.bind(("127.0.0.1", port))
    finally:
        probe.close()


@contextlib.contextmanager
def live_service(service: ServiceConfig):
    """Master in a thread, real worker fleet; always reaps and joins."""
    master = ServiceMaster(service)
    worker_config = service.cluster.with_port(master.port)
    workers = [
        spawn_worker(worker_config, index)
        for index in range(service.cluster.num_workers)
    ]
    box: dict = {}

    def _run() -> None:
        try:
            box["report"] = master.run()
        except BaseException as exc:  # surfaced after teardown
            box["error"] = exc

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    try:
        yield master, workers, box
    finally:
        master.request_stop("test-teardown")
        thread.join(timeout=60)
        master.close()
        reap_workers(workers, get_instrumentation())
    if "error" in box:
        raise box["error"]
    assert thread.is_alive() is False, "service loop failed to stop"


def await_ready(master: ServiceMaster, timeout: float = 30.0) -> None:
    """Block until the master started its virtual clock."""
    deadline = time.monotonic() + timeout
    while master._t0 is None:
        assert time.monotonic() < deadline, "service never became ready"
        time.sleep(0.02)


class TestResultDiscipline:
    def test_every_accept_gets_exactly_one_result(
        self, assert_no_leaked_children
    ):
        service = smoke_service(stop_when_idle=False)
        with live_service(service) as (master, _workers, box):
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                for template_id in sorted(
                    t.task_id for t in master.templates.values()
                )[:12]:
                    client.submit(template_id)
                assert client.drain(timeout=60.0)
                outcomes = list(client.outcomes.values())
                assert len(outcomes) == 12
                assert all(o.accepted for o in outcomes)
                assert all(
                    o.status in ("completed", "expired") for o in outcomes
                )
                # Fresh task ids, all distinct, none a template id.
                minted = {o.task_id for o in outcomes}
                assert len(minted) == 12
                assert minted.isdisjoint(master.templates)
            finally:
                client.close()
        report = box["report"]
        assert report.total_tasks == 12
        assert report.extras["accepted"] == 12
        assert report.extras["rejected"] == 0
        assert report.guaranteed_violations == 0
        assert_port_released(report.extras["port"])

    def test_unknown_template_is_rejected_not_fatal(
        self, assert_no_leaked_children
    ):
        with live_service(smoke_service(stop_when_idle=False)) as (
            master, _workers, _box,
        ):
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                outcome = client.submit(999999)
                assert client.drain(timeout=30.0)
                assert outcome.accepted is False
                assert outcome.reject_reason == "unknown-template"
                # The service keeps serving after a bad submission.
                good = client.submit(min(master.templates))
                assert client.drain(timeout=60.0)
                assert good.accepted is True
            finally:
                client.close()


class TestGracefulDrain:
    def test_drain_settles_every_accepted_submission(
        self, assert_no_leaked_children
    ):
        """SIGTERM-style stop: whatever cannot finish inside the grace is
        surrendered, and no ACCEPT is ever left without a RESULT."""
        # Slow the clock so the backlog is genuinely in flight at stop.
        service = smoke_service(
            tasks=24,
            stop_when_idle=False,
            drain_grace_seconds=0.5,
        )
        service = service.with_cluster(
            dataclasses.replace(service.cluster, seconds_per_unit=0.01)
        )
        with live_service(service) as (master, _workers, box):
            await_ready(master)
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                for template_id in sorted(master.templates):
                    client.submit(template_id)
                client.poll(0.2)  # let a few ACCEPTs land
                master.request_stop("test-stop")
                assert client.drain(timeout=60.0), (
                    "unsettled submissions after drain: "
                    f"{[o.request_id for o in client.unsettled()]}"
                )
                outcomes = list(client.outcomes.values())
                accepted = [o for o in outcomes if o.accepted]
                assert accepted, "drain test needs accepted work in flight"
                for outcome in accepted:
                    assert outcome.status in (
                        "completed", "expired", "surrendered"
                    )
                surrendered = [
                    o for o in accepted if o.status == "surrendered"
                ]
                assert surrendered, (
                    "0.5s grace on a slowed clock must strand some work"
                )
            finally:
                client.close()
        report = box["report"]
        # Surrendered guarantees are revoked, never violated.
        assert report.guaranteed_violations == 0
        assert report.extras["drain_reason"] == "test-stop"
        assert report.extras["surrendered"] == len(surrendered)
        # The master's ledger is empty: nothing orphaned inside either.
        assert master.records == {}

    def test_submissions_during_drain_are_rejected(
        self, assert_no_leaked_children
    ):
        # In-flight work on a slowed clock keeps the drain window open
        # long enough to probe it; an idle drain finishes instantly.
        service = smoke_service(
            stop_when_idle=False, drain_grace_seconds=8.0
        )
        service = service.with_cluster(
            dataclasses.replace(service.cluster, seconds_per_unit=0.05)
        )
        with live_service(service) as (master, _workers, _box):
            await_ready(master)
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                inflight = client.submit(min(master.templates))
                client.poll(0.2)
                assert inflight.accepted is True
                master.request_stop("early-stop")
                deadline = time.monotonic() + 10.0
                while not master.draining and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert master.draining
                late = client.submit(min(master.templates))
                assert client.drain(timeout=60.0)
                assert late.accepted is False
                assert late.reject_reason == "draining"
            finally:
                client.close()


class TestElasticMembership:
    def test_late_join_expands_the_live_pool(
        self, assert_no_leaked_children
    ):
        service = smoke_service(workers=2, stop_when_idle=False)
        with live_service(service) as (master, workers, box):
            await_ready(master)
            # An index beyond the data placement: pure elastic capacity.
            workers.append(
                spawn_worker(service.cluster.with_port(master.port), 5)
            )
            deadline = time.monotonic() + 30.0
            while 5 not in master.workers and time.monotonic() < deadline:
                time.sleep(0.05)
            assert 5 in master.workers, "late HELLO was not registered"
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                for template_id in sorted(master.templates)[:8]:
                    client.submit(template_id)
                assert client.drain(timeout=60.0)
            finally:
                client.close()
        report = box["report"]
        assert report.extras["distinct_workers"] == 3
        assert report.guaranteed_violations == 0
