"""ServiceConfig / JoinPlan validation and parsing (no sockets)."""

from __future__ import annotations

import pytest

from repro.service import JoinPlan, ServiceConfig


class TestJoinPlan:
    def test_parse(self):
        plan = JoinPlan.parse("3@2.5")
        assert plan.worker_index == 3
        assert plan.after_seconds == 2.5

    @pytest.mark.parametrize("spec", ["3", "@2", "a@1", "1@b", ""])
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            JoinPlan.parse(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinPlan(worker_index=-1, after_seconds=0.0)
        with pytest.raises(ValueError):
            JoinPlan(worker_index=0, after_seconds=-1.0)


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert config.admission_policy == "reject-newest"
        assert config.max_backlog_units == 0.0
        assert config.stop_when_idle is True

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(admission_policy="lifo")
        with pytest.raises(ValueError):
            ServiceConfig(max_backlog_units=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(drain_grace_seconds=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_service_seconds=-1.0)

    def test_with_helpers(self):
        config = ServiceConfig()
        assert config.with_policy("least-slack").admission_policy == (
            "least-slack"
        )
        replaced = config.with_cluster(config.cluster.with_port(4242))
        assert replaced.cluster.port == 4242
        assert config.cluster.port != 4242  # frozen original untouched
