"""Property-based tests of the EDF demand-bound admission gate.

The :class:`SchedulabilityPolicy` is the service's only oracle-backed
policy, so it carries the strongest promises; hypothesis drives them with
the same seeded workload generators the scheduler conformance suite uses
(`tests/schedulers/workloads.py`):

* **soundness** — the set of tasks the policy has accepted *never*
  violates the EDF demand bound: at every accepted deadline ``d``, work
  due by ``d`` fits in ``workers * (d - now)`` processor-units;
* **monotonicity in offered load** — piling more queued work onto the
  state can never flip a rejection into an acceptance, and neither can
  inflating the newcomer's cost;
* **determinism** — same state, same decision (the service's cell
  reproducibility depends on it).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.service.admission import (
    EPSILON,
    AdmissionState,
    QueuedTask,
    SchedulabilityPolicy,
    build_policy,
)

from ..schedulers.workloads import WORKLOADS, triples

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _Submission:
    """A task-shaped record with just what admission reads."""

    def __init__(self, task_id: int, deadline: float) -> None:
        self.task_id = task_id
        self.deadline = deadline


def demand_bound_holds(
    accepted: list, workers: int, now: float = 0.0
) -> bool:
    """The EDF necessary condition over one accepted (cost, deadline) set."""
    for _, deadline in accepted:
        demand = sum(c for c, d in accepted if d <= deadline + EPSILON)
        if demand > workers * (deadline - now) + EPSILON:
            return False
    return True


@st.composite
def admission_streams(draw):
    """A seeded arrival stream from the shared conformance generators."""
    shape = draw(st.sampled_from(sorted(WORKLOADS)))
    seed = draw(st.integers(min_value=0, max_value=99_999))
    workers = draw(st.integers(min_value=1, max_value=8))
    num_tasks = draw(st.integers(min_value=1, max_value=24))
    tasks = WORKLOADS[shape](seed, num_tasks=num_tasks, num_processors=workers)
    # Admission sees arrivals in order but decides against a fixed "now";
    # project to (cost, deadline) with deadlines kept absolute.
    stream = [
        (cost, deadline) for _, cost, deadline in sorted(triples(tasks))
    ]
    return workers, stream


def replay(policy, workers, stream, now: float = 0.0):
    """Feed a stream through the policy; returns the accepted set."""
    accepted: list = []
    for index, (cost, deadline) in enumerate(stream):
        state = AdmissionState(
            now=now,
            workers=workers,
            capacity_units=float("inf"),
            pending=tuple(
                QueuedTask(task_id=i, cost=c, deadline=d)
                for i, (c, d) in enumerate(accepted)
            ),
        )
        decision = policy.decide(_Submission(index, deadline), cost, state)
        if decision.accept:
            accepted.append((cost, deadline))
    return accepted


class TestNeverOverAdmits:
    @given(data=admission_streams())
    @settings(**SETTINGS)
    def test_accepted_set_always_satisfies_demand_bound(self, data):
        workers, stream = data
        accepted = replay(SchedulabilityPolicy(), workers, stream)
        assert demand_bound_holds(accepted, workers), (
            f"policy admitted a demand-bound-violating set with "
            f"{workers} workers: {accepted}"
        )

    @given(data=admission_streams())
    @settings(**SETTINGS)
    def test_impossible_newcomer_is_always_refused(self, data):
        """cost > workers * horizon can never be admitted."""
        workers, stream = data
        policy = SchedulabilityPolicy()
        accepted = replay(policy, workers, stream)
        state = AdmissionState(
            now=0.0,
            workers=workers,
            capacity_units=float("inf"),
            pending=tuple(
                QueuedTask(task_id=i, cost=c, deadline=d)
                for i, (c, d) in enumerate(accepted)
            ),
        )
        horizon = 10.0
        doomed_cost = workers * horizon + 1.0
        decision = policy.decide(
            _Submission(10_000, horizon), doomed_cost, state
        )
        assert not decision.accept


class TestMonotoneInOfferedLoad:
    @given(
        data=admission_streams(),
        extra_cost=st.floats(min_value=0.5, max_value=50.0),
        extra_deadline=st.floats(min_value=1.0, max_value=300.0),
        probe_cost=st.floats(min_value=0.5, max_value=100.0),
        probe_deadline=st.floats(min_value=0.5, max_value=300.0),
    )
    @settings(**SETTINGS)
    def test_more_queued_work_never_flips_reject_to_accept(
        self, data, extra_cost, extra_deadline, probe_cost, probe_deadline
    ):
        workers, stream = data
        policy = SchedulabilityPolicy()
        accepted = replay(policy, workers, stream)
        pending = tuple(
            QueuedTask(task_id=i, cost=c, deadline=d)
            for i, (c, d) in enumerate(accepted)
        )
        lighter = AdmissionState(
            now=0.0, workers=workers, capacity_units=float("inf"),
            pending=pending,
        )
        heavier = AdmissionState(
            now=0.0, workers=workers, capacity_units=float("inf"),
            pending=pending + (
                QueuedTask(
                    task_id=90_000, cost=extra_cost, deadline=extra_deadline
                ),
            ),
        )
        probe = _Submission(90_001, probe_deadline)
        if not policy.decide(probe, probe_cost, lighter).accept:
            assert not policy.decide(probe, probe_cost, heavier).accept, (
                "adding queued work flipped a rejection into an acceptance"
            )

    @given(
        data=admission_streams(),
        probe_cost=st.floats(min_value=0.5, max_value=100.0),
        probe_deadline=st.floats(min_value=0.5, max_value=300.0),
        inflation=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(**SETTINGS)
    def test_costlier_newcomer_never_flips_reject_to_accept(
        self, data, probe_cost, probe_deadline, inflation
    ):
        workers, stream = data
        policy = SchedulabilityPolicy()
        accepted = replay(policy, workers, stream)
        state = AdmissionState(
            now=0.0, workers=workers, capacity_units=float("inf"),
            pending=tuple(
                QueuedTask(task_id=i, cost=c, deadline=d)
                for i, (c, d) in enumerate(accepted)
            ),
        )
        probe = _Submission(90_001, probe_deadline)
        if not policy.decide(probe, probe_cost, state).accept:
            assert not policy.decide(
                probe, probe_cost * inflation, state
            ).accept


class TestDeterminismAndRegistry:
    @given(data=admission_streams())
    @settings(**SETTINGS)
    def test_same_stream_same_decisions(self, data):
        workers, stream = data
        first = replay(SchedulabilityPolicy(), workers, stream)
        second = replay(build_policy("schedulability"), workers, stream)
        assert first == second
