"""Soak: thousands of submissions through the live streaming service.

A ~30s open-loop pounding of one :class:`ServiceMaster` with a real
worker fleet, asserting the two properties that keep a long-lived
service long-lived:

* **bounded memory** — per-record pruning on RESULT keeps the master's
  ledger proportional to work *in flight*, never to work *ever seen*:
  the high-water mark of ``master.records`` must stay far below the
  submission count, and the ledger must be empty once everything
  settles;
* **result discipline** — every ACCEPT gets exactly one terminal
  RESULT (and every submission exactly one ACCEPT-or-REJECT), even at
  soak rates: the client settles every request and the master's
  terminal counts reconcile with its admission counters.
"""

from __future__ import annotations

import itertools
import time

import pytest

pytestmark = pytest.mark.slow

from repro.service import ServiceClient

from .test_service_live import (
    assert_port_released,
    await_ready,
    live_service,
    smoke_service,
)

#: Wall-clock budget for the submission loop (the whole test stays
#: comfortably inside the package hard timeout).
SOAK_SECONDS = 20.0
#: Submissions per burst between polls; small enough that ACCEPTs and
#: RESULTs interleave with admission instead of arriving in one wave.
BURST = 25
#: Flow-control window: stop submitting while this many requests are
#: unsettled, so the soak applies sustained load without overrunning the
#: master's TCP accept/response path (a blocked send is a client bug in
#: an open-loop generator, not a service property).
MAX_UNSETTLED = 400
#: The soak must actually soak: below this it proves nothing.
MIN_SUBMISSIONS = 1000


class TestServiceSoak:
    def test_bounded_records_and_exact_result_discipline(
        self, assert_no_leaked_children
    ):
        service = smoke_service(workers=3, tasks=32, stop_when_idle=False)
        submitted = 0
        high_water = 0
        with live_service(service) as (master, _workers, box):
            await_ready(master)
            client = ServiceClient.connect("127.0.0.1", master.port)
            try:
                templates = itertools.cycle(sorted(master.templates))
                deadline = time.monotonic() + SOAK_SECONDS
                while time.monotonic() < deadline:
                    if len(client.unsettled()) < MAX_UNSETTLED:
                        for _ in range(BURST):
                            client.submit(next(templates))
                        submitted += BURST
                    client.poll(0.01)
                    high_water = max(high_water, len(master.records))
                assert client.drain(timeout=120.0), (
                    "unsettled submissions after soak: "
                    f"{len(client.unsettled())} of {submitted}"
                )
                outcomes = list(client.outcomes.values())
                assert len(outcomes) == submitted
                assert submitted >= MIN_SUBMISSIONS, (
                    f"soak too shallow to mean anything: {submitted} "
                    f"submissions in {SOAK_SECONDS}s"
                )
                # Exactly-one-RESULT: every accepted submission settled
                # in a terminal state; every rejection settled at REJECT.
                accepted = [o for o in outcomes if o.accepted]
                rejected = [o for o in outcomes if not o.accepted]
                assert all(
                    o.status in ("completed", "expired", "surrendered")
                    for o in accepted
                )
                assert all(o.reject_reason for o in rejected)
                # Minted task ids are unique: no RESULT was double-booked.
                minted = [o.task_id for o in accepted]
                assert len(set(minted)) == len(minted)
            finally:
                client.close()
            # Pruning bound: the ledger tracked in-flight work only.  A
            # leak of even a fraction of the soak's records blows this.
            assert high_water < max(200, submitted // 4), (
                f"master.records high-water {high_water} for {submitted} "
                f"submissions: records are not being pruned per-RESULT"
            )
            assert master.records == {}, (
                "settled records left in the ledger after drain"
            )
        report = box["report"]
        assert report.extras["accepted"] == len(accepted)
        assert report.extras["rejected"] == len(rejected)
        assert report.total_tasks == len(accepted) + len(rejected)
        assert (
            report.completed
            + report.expired
            + report.extras["surrendered"]
            == len(accepted)
        )
        # No zero-violation claim here: a wall-clock fleet under sustained
        # overload may blow a handful of guarantees (the gentle-load tests
        # assert zero); the soak's contract is accounting, not timing.
        assert_port_released(report.extras["port"])
