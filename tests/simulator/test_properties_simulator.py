"""Property-based tests on the full on-line runtime.

The heavyweight invariant: across random workloads, machines and both
schedulers, **no scheduled task ever finishes after its deadline** (the
paper's theorem), every task terminates, and the virtual clock is
consistent.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import DCOLS, RTSADS, GreedyEDFScheduler, UniformCommunicationModel, make_task
from repro.simulator import STATUS_COMPLETED, STATUS_EXPIRED, simulate

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def online_workloads(draw):
    seed = draw(st.integers(min_value=0, max_value=99_999))
    num_processors = draw(st.integers(min_value=1, max_value=5))
    num_tasks = draw(st.integers(min_value=1, max_value=30))
    bursty = draw(st.booleans())
    rng = random.Random(seed)
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(1.0, 30.0)
        arrival = 0.0 if bursty else rng.uniform(0.0, 100.0)
        laxity = rng.uniform(1.5, 15.0)
        affinity = frozenset(
            p for p in range(num_processors) if rng.random() < 0.5
        ) or frozenset({rng.randrange(num_processors)})
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                arrival_time=arrival,
                deadline=arrival + processing * laxity,
                affinity=affinity,
            )
        )
    remote_cost = rng.uniform(0.0, 60.0)
    return tasks, num_processors, remote_cost


def _scheduler(kind, comm):
    if kind == "rtsads":
        return RTSADS(comm)
    if kind == "dcols":
        return DCOLS(comm)
    return GreedyEDFScheduler(comm)


class TestRuntimeProperties:
    @settings(**SETTINGS)
    @given(
        workload=online_workloads(),
        kind=st.sampled_from(["rtsads", "dcols", "greedy"]),
    )
    def test_theorem_scheduled_tasks_meet_deadlines(self, workload, kind):
        tasks, m, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = simulate(
            _scheduler(kind, comm), tasks, num_workers=m, validate_phases=True
        )
        assert result.trace.scheduled_but_missed() == []

    @settings(**SETTINGS)
    @given(workload=online_workloads())
    def test_every_task_terminates(self, workload):
        tasks, m, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = simulate(RTSADS(comm), tasks, num_workers=m)
        assert result.trace.total_tasks() == len(tasks)
        for record in result.trace.records.values():
            assert record.status in (STATUS_COMPLETED, STATUS_EXPIRED)

    @settings(**SETTINGS)
    @given(workload=online_workloads())
    def test_execution_windows_consistent(self, workload):
        """start >= arrival, finish = start + p + c, per-worker no overlap."""
        tasks, m, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = simulate(RTSADS(comm), tasks, num_workers=m)
        for record in result.trace.records.values():
            if record.status != STATUS_COMPLETED:
                continue
            assert record.started_at >= record.task.arrival_time - 1e-9
            expected_cost = comm.execution_cost(record.task, record.processor)
            assert record.finished_at - record.started_at == (
                __import__("pytest").approx(expected_cost)
            )
        for lane in result.trace.gantt().values():
            for (_, _, finish), (_, start, _) in zip(lane, lane[1:]):
                assert start >= finish - 1e-9

    @settings(**SETTINGS)
    @given(workload=online_workloads())
    def test_hit_ratio_counts_match(self, workload):
        tasks, m, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = simulate(DCOLS(comm), tasks, num_workers=m)
        hits = sum(
            1 for r in result.trace.records.values() if r.met_deadline
        )
        assert result.trace.deadline_hits() == hits
        assert result.trace.hit_ratio() == hits / len(tasks)
