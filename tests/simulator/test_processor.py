"""Tests for the worker-processor model."""

import pytest

from repro.core import ScheduleEntry, make_task
from repro.simulator import WorkerProcessor


def _entry(task_id, p=10.0, comm=0.0, deadline=1000.0):
    task = make_task(task_id, processing_time=p, deadline=deadline)
    return ScheduleEntry(
        task=task, processor=0, communication_cost=comm, scheduled_end=p + comm
    )


class TestQueueing:
    def test_starts_idle_and_empty(self):
        worker = WorkerProcessor(0)
        assert worker.is_idle
        assert not worker.is_busy
        assert worker.load(0.0) == 0.0

    def test_deliver_enqueues_fifo(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0), now=1.0)
        worker.deliver(_entry(1), now=1.0)
        assert [w.task.task_id for w in worker.queue] == [0, 1]
        assert not worker.is_idle  # queued work pending

    def test_load_sums_queue_and_running_remainder(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.deliver(_entry(1, p=20.0), now=0.0)
        worker.start_next(0.0)
        # At t=4: 6 left of the running task plus 20 queued.
        assert worker.load(4.0) == pytest.approx(26.0)

    def test_load_includes_communication_cost(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0, comm=5.0), now=0.0)
        assert worker.load(0.0) == 15.0


class TestExecution:
    def test_start_next_runs_fifo_order(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.deliver(_entry(1, p=5.0), now=0.0)
        running = worker.start_next(0.0)
        assert running.task.task_id == 0
        assert running.finishes_at == 10.0

    def test_start_next_noop_when_busy(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0), now=0.0)
        worker.deliver(_entry(1), now=0.0)
        worker.start_next(0.0)
        assert worker.start_next(0.0) is None

    def test_start_next_noop_when_empty(self):
        assert WorkerProcessor(0).start_next(0.0) is None

    def test_complete_current(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.start_next(0.0)
        finished = worker.complete_current(10.0)
        assert finished.task.task_id == 0
        assert worker.is_idle
        assert worker.completed_count == 1
        assert worker.busy_time == 10.0

    def test_complete_at_wrong_time_raises(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.start_next(0.0)
        with pytest.raises(RuntimeError):
            worker.complete_current(9.0)

    def test_complete_without_running_raises(self):
        with pytest.raises(RuntimeError):
            WorkerProcessor(0).complete_current(0.0)

    def test_non_preemptive_execution(self):
        """A delivered entry cannot jump ahead of the running task."""
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.start_next(0.0)
        worker.deliver(_entry(1, p=1.0, deadline=5.0), now=1.0)
        # Still the original task running.
        assert worker.running.task.task_id == 0
        finished = worker.complete_current(10.0)
        assert finished.task.task_id == 0
        nxt = worker.start_next(10.0)
        assert nxt.task.task_id == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerProcessor(-1)
