"""Tests for execution-time models and resource reclaiming."""

import random

import pytest

from repro.core import (
    RTSADS,
    ScheduleEntry,
    UniformCommunicationModel,
    make_task,
)
from repro.database import DatabaseConfig, DistributedDatabase
from repro.simulator import (
    ExecutionModelError,
    FirstMatchDatabaseExecution,
    ScaledExecution,
    StochasticExecution,
    WorstCaseExecution,
    resolve_actual_cost,
    simulate,
)
from repro.workload import (
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)


def _entry(p=10.0, comm=5.0, task_id=0):
    task = make_task(task_id, processing_time=p, deadline=10_000.0)
    return ScheduleEntry(
        task=task, processor=0, communication_cost=comm, scheduled_end=p + comm
    )


class TestModels:
    def test_worst_case_identity(self):
        entry = _entry()
        assert WorstCaseExecution().actual_cost(entry) == entry.total_cost

    def test_scaled_keeps_communication(self):
        entry = _entry(p=10.0, comm=5.0)
        assert ScaledExecution(0.5).actual_cost(entry) == 10.0  # 5 + 0.5*10

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            ScaledExecution(0.0)
        with pytest.raises(ValueError):
            ScaledExecution(1.5)

    def test_stochastic_within_bounds_and_deterministic(self):
        model = StochasticExecution(0.3, 0.8, seed=1)
        entry = _entry(p=10.0, comm=0.0)
        values = {model.actual_cost(entry) for _ in range(5)}
        assert len(values) == 1  # deterministic per task
        value = values.pop()
        assert 3.0 <= value <= 8.0

    def test_stochastic_varies_across_tasks(self):
        model = StochasticExecution(0.1, 0.9, seed=1)
        costs = {
            model.actual_cost(_entry(p=10.0, comm=0.0, task_id=i))
            for i in range(20)
        }
        assert len(costs) > 5

    def test_stochastic_validation(self):
        with pytest.raises(ValueError):
            StochasticExecution(0.0, 0.5)
        with pytest.raises(ValueError):
            StochasticExecution(0.9, 0.5)


class TestResolve:
    def test_none_model_returns_plan(self):
        entry = _entry()
        assert resolve_actual_cost(None, entry) == entry.total_cost

    def test_rejects_cost_above_plan(self):
        class Bad:
            name = "Bad"

            def actual_cost(self, entry):
                return entry.total_cost * 2

        with pytest.raises(ExecutionModelError, match="worst case"):
            resolve_actual_cost(Bad(), _entry())

    def test_rejects_non_positive(self):
        class Zero:
            name = "Zero"

            def actual_cost(self, entry):
                return 0.0

        with pytest.raises(ExecutionModelError):
            resolve_actual_cost(Zero(), _entry())


class TestReclaimingRuntime:
    def _workload(self):
        return SyntheticWorkloadGenerator(
            SyntheticWorkloadConfig(
                num_tasks=40,
                num_processors=3,
                affinity_probability=0.5,
                slack_factor=1.5,
                seed=4,
            )
        ).generate()

    def test_reclaimed_time_recorded(self):
        comm = UniformCommunicationModel(20.0)
        result = simulate(
            RTSADS(comm),
            self._workload(),
            num_workers=3,
            execution_model=ScaledExecution(0.5),
        )
        assert result.trace.total_reclaimed_time() > 0
        for record in result.trace.records.values():
            if record.actual_cost is not None:
                assert record.actual_cost <= record.planned_cost + 1e-9

    def test_theorem_survives_early_completion(self):
        comm = UniformCommunicationModel(20.0)
        result = simulate(
            RTSADS(comm),
            self._workload(),
            num_workers=3,
            execution_model=StochasticExecution(0.2, 1.0, seed=9),
            validate_phases=True,
        )
        assert result.trace.scheduled_but_missed() == []

    def test_reclaiming_never_reduces_hit_ratio(self):
        comm = UniformCommunicationModel(20.0)
        worst = simulate(RTSADS(comm), self._workload(), num_workers=3)
        reclaimed = simulate(
            RTSADS(comm),
            self._workload(),
            num_workers=3,
            execution_model=ScaledExecution(0.4),
        )
        assert reclaimed.hit_ratio >= worst.hit_ratio

    def test_worst_case_model_is_noop(self):
        comm = UniformCommunicationModel(20.0)
        plain = simulate(RTSADS(comm), self._workload(), num_workers=3)
        explicit = simulate(
            RTSADS(comm),
            self._workload(),
            num_workers=3,
            execution_model=WorstCaseExecution(),
        )
        assert plain.hit_ratio == explicit.hit_ratio
        assert explicit.trace.total_reclaimed_time() == 0.0


class TestFirstMatchDatabaseExecution:
    def test_actual_bounded_by_estimate(self):
        database = DistributedDatabase.build(
            config=DatabaseConfig(
                num_subdatabases=4, records_per_subdb=60, domain_size=6
            ),
            num_processors=4,
            replication_rate=0.5,
            rng=random.Random(2),
        )
        generator = TransactionWorkloadGenerator(
            database=database,
            config=TransactionWorkloadConfig(num_transactions=50, seed=2),
        )
        tasks, txns = generator.generate()
        model = FirstMatchDatabaseExecution(database, txns)
        by_id = {t.task_id: t for t in tasks}
        for txn in txns:
            task = by_id[txn.txn_id]
            entry = ScheduleEntry(
                task=task,
                processor=0,
                communication_cost=0.0,
                scheduled_end=task.processing_time,
            )
            actual = model.actual_cost(entry)
            assert 0 < actual <= entry.total_cost + 1e-9

    def test_unknown_task_falls_back_to_plan(self):
        database = DistributedDatabase.build(
            config=DatabaseConfig(num_subdatabases=2, records_per_subdb=20),
            num_processors=2,
            replication_rate=0.5,
            rng=random.Random(1),
        )
        model = FirstMatchDatabaseExecution(database, [])
        entry = _entry()
        assert model.actual_cost(entry) == entry.total_cost

    def test_end_to_end_with_database_execution(self):
        database = DistributedDatabase.build(
            config=DatabaseConfig(
                num_subdatabases=4, records_per_subdb=60, domain_size=6
            ),
            num_processors=4,
            replication_rate=0.5,
            rng=random.Random(2),
        )
        generator = TransactionWorkloadGenerator(
            database=database,
            config=TransactionWorkloadConfig(num_transactions=50, seed=2),
        )
        tasks, txns = generator.generate()
        comm = UniformCommunicationModel(30.0)
        result = simulate(
            RTSADS(comm, per_vertex_cost=0.02),
            tasks,
            num_workers=4,
            execution_model=FirstMatchDatabaseExecution(database, txns),
        )
        assert result.trace.scheduled_but_missed() == []


class TestFirstMatchProbe:
    def test_probe_first_match_early_exit(self):
        from repro.database import Schema, SubDatabase

        schema = Schema(num_subdatabases=1, num_attributes=2, domain_size=4)
        d0, d1 = schema.all_domains(0)
        rows = [
            (d0.low, d1.low + 1),
            (d0.low + 1, d1.low),  # first full match for the query below
            (d0.low + 2, d1.low),
        ]
        subdb = SubDatabase(0, schema, rows)
        match, checked = subdb.probe_first_match({1: d1.low})
        assert match == rows[1]
        assert checked == 2  # stopped before the third row

    def test_probe_first_match_no_match_scans_all(self):
        from repro.database import Schema, SubDatabase

        schema = Schema(num_subdatabases=1, num_attributes=2, domain_size=4)
        d0, d1 = schema.all_domains(0)
        rows = [(d0.low, d1.low)] * 3
        subdb = SubDatabase(0, schema, rows)
        match, checked = subdb.probe_first_match({1: d1.low + 1})
        assert match is None
        assert checked == 3
