"""Tests for the machine assembly."""

import pytest

from repro.core import ScheduleEntry, UniformCommunicationModel, make_task
from repro.simulator import Machine, MachineConfig


def _machine(m=3, C=50.0):
    return Machine(
        MachineConfig(num_workers=m, comm=UniformCommunicationModel(C))
    )


def _deliver(machine, proc, task_id, p=10.0):
    task = make_task(task_id, processing_time=p, deadline=10_000.0)
    machine.workers[proc].deliver(
        ScheduleEntry(task=task, processor=proc, communication_cost=0.0,
                      scheduled_end=p),
        now=0.0,
    )


class TestMachine:
    def test_workers_created(self):
        machine = _machine(m=4)
        assert machine.num_workers == 4
        assert [w.processor_id for w in machine.workers] == [0, 1, 2, 3]

    def test_loads_reflect_queues(self):
        machine = _machine(m=3)
        _deliver(machine, 1, 0, p=25.0)
        assert machine.loads(0.0) == [0.0, 25.0, 0.0]

    def test_all_idle(self):
        machine = _machine()
        assert machine.all_idle()
        _deliver(machine, 0, 0)
        assert not machine.all_idle()

    def test_total_completed(self):
        machine = _machine()
        _deliver(machine, 0, 0, p=5.0)
        machine.workers[0].start_next(0.0)
        machine.workers[0].complete_current(5.0)
        assert machine.total_completed() == 1

    def test_utilization(self):
        machine = _machine(m=2)
        _deliver(machine, 0, 0, p=5.0)
        machine.workers[0].start_next(0.0)
        machine.workers[0].complete_current(5.0)
        assert machine.utilization(10.0) == [0.5, 0.0]
        assert machine.utilization(0.0) == [0.0, 0.0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(num_workers=0)

    def test_default_comm_model(self):
        machine = Machine(MachineConfig(num_workers=2))
        assert isinstance(machine.comm, UniformCommunicationModel)
