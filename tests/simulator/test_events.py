"""Tests for event types and the event queue."""

import pytest

from repro.core import make_task
from repro.simulator import EventQueue, TaskArrived, TaskFinished


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, "b")
        queue.push(1.0, "a")
        queue.push(3.0, "c")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "c", "b"]

    def test_same_time_pops_in_insertion_order(self):
        queue = EventQueue()
        for label in ("first", "second", "third"):
            queue.push(2.0, label)
        assert [queue.pop()[1] for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_pop_returns_time(self):
        queue = EventQueue()
        queue.push(4.5, "x")
        time, event = queue.pop()
        assert time == 4.5
        assert event == "x"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(9.0, "x")
        assert queue.peek_time() == 9.0
        assert len(queue) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_truthiness_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, "x")
        assert queue
        assert len(queue) == 1


class TestEventTypes:
    def test_task_arrived_carries_task(self):
        task = make_task(3, processing_time=1.0, deadline=10.0)
        assert TaskArrived(task).task is task

    def test_task_finished_fields(self):
        event = TaskFinished(processor=2, task_id=7)
        assert event.processor == 2
        assert event.task_id == 7

    def test_events_are_immutable(self):
        event = TaskFinished(processor=2, task_id=7)
        with pytest.raises(AttributeError):
            event.processor = 3
