"""Tests for fail-stop processor crashes and rescheduling."""

import pytest

from repro.core import (
    DCOLS,
    RTSADS,
    ScheduleEntry,
    UniformCommunicationModel,
    make_task,
)
from repro.simulator import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    WorkerProcessor,
    simulate,
)
from repro.workload import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


def _entry(task_id, p=10.0):
    task = make_task(task_id, processing_time=p, deadline=100_000.0)
    return ScheduleEntry(
        task=task, processor=0, communication_cost=0.0, scheduled_end=p
    )


def _workload(n=50, m=4, sf=3.0, seed=5):
    return SyntheticWorkloadGenerator(
        SyntheticWorkloadConfig(
            num_tasks=n, num_processors=m, slack_factor=sf, seed=seed
        )
    ).generate()


class TestWorkerFailure:
    def test_fail_surrenders_queue_and_loses_running(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0), now=0.0)
        worker.deliver(_entry(1), now=0.0)
        worker.deliver(_entry(2), now=0.0)
        worker.start_next(0.0)
        lost, survivors = worker.fail(5.0)
        assert lost.task.task_id == 0
        assert [w.task.task_id for w in survivors] == [1, 2]
        assert worker.failed
        assert worker.is_idle

    def test_failed_worker_reports_infinite_load(self):
        worker = WorkerProcessor(0)
        worker.fail(0.0)
        assert worker.load(0.0) == float("inf")

    def test_failed_worker_rejects_delivery_and_start(self):
        worker = WorkerProcessor(0)
        worker.fail(0.0)
        with pytest.raises(RuntimeError):
            worker.deliver(_entry(0), now=1.0)
        assert worker.start_next(1.0) is None

    def test_double_failure_raises(self):
        worker = WorkerProcessor(0)
        worker.fail(0.0)
        with pytest.raises(RuntimeError):
            worker.fail(1.0)

    def test_busy_time_accounts_partial_run(self):
        worker = WorkerProcessor(0)
        worker.deliver(_entry(0, p=10.0), now=0.0)
        worker.start_next(0.0)
        worker.fail(4.0)
        assert worker.busy_time == pytest.approx(4.0)


class TestRuntimeFailures:
    def _run(self, scheduler_cls=RTSADS, failures=(), **kwargs):
        comm = UniformCommunicationModel(20.0)
        return simulate(
            scheduler_cls(comm),
            list(_workload(**kwargs)),
            num_workers=4,
            failures=list(failures),
            validate_phases=True,
        )

    def test_in_flight_task_marked_failed(self):
        result = self._run(failures=[(50.0, 0)])
        failed = result.trace.failed()
        assert len(failed) <= 1  # at most the in-flight task
        for record in failed:
            assert record.status == STATUS_FAILED
            assert not record.met_deadline

    def test_queued_tasks_rescheduled_elsewhere(self):
        result = self._run(failures=[(30.0, 0)])
        for record in result.trace.records.values():
            if record.status == STATUS_COMPLETED:
                assert record.processor != 0 or (
                    record.finished_at is not None
                    and record.finished_at <= 30.0 + 1e-9
                )

    def test_theorem_survives_failures(self):
        result = self._run(failures=[(40.0, 0), (90.0, 2)])
        assert result.trace.scheduled_but_missed() == []

    def test_theorem_survives_failures_dcols(self):
        result = self._run(scheduler_cls=DCOLS, failures=[(40.0, 1)])
        assert result.trace.scheduled_but_missed() == []

    def test_compliance_degrades_gracefully(self):
        healthy = self._run()
        crashed = self._run(failures=[(50.0, 0)])
        assert crashed.hit_ratio <= healthy.hit_ratio
        # Losing 1 of 4 processors mid-run must not collapse compliance.
        assert crashed.hit_ratio > 0.5 * healthy.hit_ratio

    def test_all_processors_failing_expires_everything(self):
        result = self._run(
            failures=[(1.0, p) for p in range(4)], n=10, sf=1.5
        )
        for record in result.trace.records.values():
            assert record.status in (
                STATUS_COMPLETED,
                STATUS_EXPIRED,
                STATUS_FAILED,
            )
        # Nothing can complete after t=1 on a dead machine.
        late_finishes = [
            r
            for r in result.trace.records.values()
            if r.finished_at is not None and r.finished_at > 1.0
        ]
        assert late_finishes == []

    def test_duplicate_failure_events_tolerated(self):
        result = self._run(failures=[(40.0, 0), (60.0, 0)])
        assert result.trace.total_tasks() == 50

    def test_failure_validation(self):
        comm = UniformCommunicationModel(20.0)
        with pytest.raises(ValueError):
            simulate(
                RTSADS(comm), list(_workload()), 4, failures=[(1.0, 9)]
            )
        with pytest.raises(ValueError):
            simulate(
                RTSADS(comm), list(_workload()), 4, failures=[(-1.0, 0)]
            )
