"""Tests for simulation traces and their aggregate views."""

import pytest

from repro.core import make_task
from repro.simulator import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    PhaseTrace,
    SimulationTrace,
)


def _trace_with(records):
    """records: list of (task, status, processor, phase, finished_at)."""
    trace = SimulationTrace()
    for task, status, processor, phase, finished in records:
        record = trace.add_task(task)
        record.status = status
        record.processor = processor
        record.scheduled_phase = phase
        record.finished_at = finished
        if finished is not None:
            record.started_at = finished - task.processing_time
    return trace


def _task(task_id, p=10.0, d=100.0):
    return make_task(task_id, processing_time=p, deadline=d)


class TestTaskRecord:
    def test_met_deadline(self):
        trace = _trace_with([
            (_task(0, d=100.0), STATUS_COMPLETED, 0, 0, 99.0),
            (_task(1, d=100.0), STATUS_COMPLETED, 0, 0, 101.0),
        ])
        assert trace.records[0].met_deadline
        assert not trace.records[1].met_deadline

    def test_boundary_finish_meets_deadline(self):
        trace = _trace_with([
            (_task(0, d=100.0), STATUS_COMPLETED, 0, 0, 100.0),
        ])
        assert trace.records[0].met_deadline

    def test_expired_never_meets(self):
        trace = _trace_with([
            (_task(0), STATUS_EXPIRED, None, None, None),
        ])
        assert not trace.records[0].met_deadline

    def test_response_time(self):
        trace = _trace_with([
            (_task(0), STATUS_COMPLETED, 0, 0, 42.0),
        ])
        assert trace.records[0].response_time == 42.0

    def test_duplicate_task_rejected(self):
        trace = SimulationTrace()
        trace.add_task(_task(0))
        with pytest.raises(ValueError):
            trace.add_task(_task(0))


class TestAggregates:
    def _mixed_trace(self):
        return _trace_with([
            (_task(0, d=100.0), STATUS_COMPLETED, 0, 0, 50.0),
            (_task(1, d=100.0), STATUS_COMPLETED, 1, 0, 120.0),  # late
            (_task(2, d=100.0), STATUS_EXPIRED, None, None, None),
            (_task(3, d=100.0), STATUS_COMPLETED, 0, 1, 80.0),
        ])

    def test_hit_ratio(self):
        assert self._mixed_trace().hit_ratio() == 0.5

    def test_hit_ratio_empty(self):
        assert SimulationTrace().hit_ratio() == 0.0

    def test_completed_and_expired(self):
        trace = self._mixed_trace()
        assert len(trace.completed()) == 3
        assert len(trace.expired()) == 1

    def test_scheduled_but_missed_finds_theorem_violations(self):
        trace = self._mixed_trace()
        violators = trace.scheduled_but_missed()
        assert [r.task_id for r in violators] == [1]

    def test_gantt_lanes_sorted_by_start(self):
        trace = self._mixed_trace()
        lanes = trace.gantt()
        assert set(lanes) == {0, 1}
        starts = [start for _, start, _ in lanes[0]]
        assert starts == sorted(starts)


class TestPhaseAggregates:
    def _phase(self, index, dead_end=False, depth=3, touched=2):
        return PhaseTrace(
            index=index,
            start=float(index),
            quantum=5.0,
            time_used=2.0,
            batch_size=10,
            scheduled=depth,
            expired_before=0,
            dead_end=dead_end,
            complete=False,
            max_depth=depth,
            processors_touched=touched,
            vertices_generated=40,
        )

    def test_dead_end_rate(self):
        trace = SimulationTrace()
        trace.phases = [self._phase(0, dead_end=True), self._phase(1)]
        assert trace.dead_end_rate() == 0.5

    def test_dead_end_rate_empty(self):
        assert SimulationTrace().dead_end_rate() == 0.0

    def test_mean_depth_and_processors(self):
        trace = SimulationTrace()
        trace.phases = [
            self._phase(0, depth=2, touched=1),
            self._phase(1, depth=4, touched=3),
        ]
        assert trace.mean_depth() == 3.0
        assert trace.mean_processors_touched() == 2.0

    def test_total_scheduling_time(self):
        trace = SimulationTrace()
        trace.phases = [self._phase(0), self._phase(1)]
        assert trace.total_scheduling_time() == 4.0

    def test_phase_end(self):
        phase = self._phase(0)
        assert phase.end == 2.0
