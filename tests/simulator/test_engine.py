"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simulator import (
    SimulationEngine,
    SimulationError,
    SimulationObserver,
)


class Ping:
    def __init__(self, label="ping"):
        self.label = label


class Pong:
    pass


class TestDispatch:
    def test_dispatches_to_registered_handler(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe(Ping, lambda now, e: seen.append((now, e.label)))
        engine.schedule_at(2.0, Ping("a"))
        engine.run()
        assert seen == [(2.0, "a")]

    def test_clock_advances_monotonically(self):
        engine = SimulationEngine()
        times = []
        engine.subscribe(Ping, lambda now, e: times.append(now))
        for t in (5.0, 1.0, 3.0):
            engine.schedule_at(t, Ping())
        engine.run()
        assert times == [1.0, 3.0, 5.0]
        assert engine.now == 5.0

    def test_handler_can_schedule_new_events(self):
        engine = SimulationEngine()
        seen = []

        def on_ping(now, event):
            seen.append(now)
            if now < 3.0:
                engine.schedule_after(1.0, Ping())

        engine.subscribe(Ping, on_ping)
        engine.schedule_at(1.0, Ping())
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_unhandled_event_raises(self):
        engine = SimulationEngine()
        engine.schedule_at(0.0, Pong())
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_duplicate_handler_rejected(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        with pytest.raises(SimulationError):
            engine.subscribe(Ping, lambda now, e: None)


class TestScheduling:
    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        engine.schedule_at(5.0, Ping())
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, Ping())

    def test_schedule_after_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, Ping())

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe(Ping, lambda now, e: seen.append(now))
        engine.schedule_at(1.0, Ping())
        engine.schedule_at(10.0, Ping())
        engine.run(until=5.0)
        assert seen == [1.0]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_max_events_guard(self):
        engine = SimulationEngine()
        engine.subscribe(
            Ping, lambda now, e: engine.schedule_after(1.0, Ping())
        )
        engine.schedule_at(0.0, Ping())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=10)

    def test_events_dispatched_counter(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        for t in range(3):
            engine.schedule_at(float(t), Ping())
        engine.run()
        assert engine.events_dispatched == 3


class RecordingObserver(SimulationObserver):
    def __init__(self):
        self.dispatched = []
        self.advances = []

    def on_event_dispatched(self, now, event):
        self.dispatched.append((now, event))

    def on_clock_advanced(self, previous, now):
        self.advances.append((previous, now))


class TestObservers:
    def _engine_with_pings(self, times=(1.0, 3.0, 3.0, 7.0)):
        engine = SimulationEngine()
        seen = []
        engine.subscribe(Ping, lambda now, e: seen.append((now, e.label)))
        for t in times:
            engine.schedule_at(t, Ping(str(t)))
        return engine, seen

    def test_observer_sees_every_dispatch(self):
        engine, _ = self._engine_with_pings()
        observer = RecordingObserver()
        engine.add_observer(observer)
        engine.run()
        assert [now for now, _ in observer.dispatched] == [1.0, 3.0, 3.0, 7.0]

    def test_clock_hook_fires_only_on_strict_advance(self):
        engine, _ = self._engine_with_pings()
        observer = RecordingObserver()
        engine.add_observer(observer)
        engine.run()
        # Two events at t=3.0 advance the clock once.
        assert observer.advances == [(0.0, 1.0), (1.0, 3.0), (3.0, 7.0)]

    def test_observers_do_not_perturb_dispatch(self):
        baseline_engine, baseline_seen = self._engine_with_pings()
        baseline_engine.run()

        engine, seen = self._engine_with_pings()
        engine.add_observer(RecordingObserver())
        engine.add_observer(RecordingObserver())
        engine.run()

        assert seen == baseline_seen
        assert engine.events_dispatched == baseline_engine.events_dispatched
        assert engine.now == baseline_engine.now

    def test_dispatch_observer_runs_after_handler(self):
        engine = SimulationEngine()
        order = []
        engine.subscribe(Ping, lambda now, e: order.append("handler"))

        class Tap(SimulationObserver):
            def on_event_dispatched(self, now, event):
                order.append("observer")

        engine.add_observer(Tap())
        engine.schedule_at(0.0, Ping())
        engine.run()
        assert order == ["handler", "observer"]

    def test_partial_observers_allowed(self):
        engine, _ = self._engine_with_pings((1.0, 2.0))

        class DispatchOnly:
            def __init__(self):
                self.count = 0

            def on_event_dispatched(self, now, event):
                self.count += 1

        class ClockOnly:
            def __init__(self):
                self.count = 0

            def on_clock_advanced(self, previous, now):
                self.count += 1

        dispatch_only, clock_only = DispatchOnly(), ClockOnly()
        engine.add_observer(dispatch_only)
        engine.add_observer(clock_only)
        engine.run()
        assert dispatch_only.count == 2
        assert clock_only.count == 2

    def test_hookless_observer_rejected(self):
        with pytest.raises(SimulationError, match="neither"):
            SimulationEngine().add_observer(object())

    def test_remove_observer(self):
        engine, _ = self._engine_with_pings((1.0,))
        observer = RecordingObserver()
        engine.add_observer(observer)
        engine.remove_observer(observer)
        engine.run()
        assert observer.dispatched == []
        assert observer.advances == []

    def test_remove_unknown_observer_is_noop(self):
        SimulationEngine().remove_observer(RecordingObserver())

    def test_one_dispatch_handler_rule_retained(self):
        # Observers are additive; the single-handler dispatch contract of
        # subscribe() still holds with observers attached.
        engine = SimulationEngine()
        engine.add_observer(RecordingObserver())
        engine.subscribe(Ping, lambda now, e: None)
        with pytest.raises(SimulationError):
            engine.subscribe(Ping, lambda now, e: None)

    def test_run_until_jump_notifies_clock_observers(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        observer = RecordingObserver()
        engine.add_observer(observer)
        engine.schedule_at(1.0, Ping())
        engine.schedule_at(10.0, Ping())
        engine.run(until=5.0)
        assert observer.advances == [(0.0, 1.0), (1.0, 5.0)]
