"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simulator import SimulationEngine, SimulationError


class Ping:
    def __init__(self, label="ping"):
        self.label = label


class Pong:
    pass


class TestDispatch:
    def test_dispatches_to_registered_handler(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe(Ping, lambda now, e: seen.append((now, e.label)))
        engine.schedule_at(2.0, Ping("a"))
        engine.run()
        assert seen == [(2.0, "a")]

    def test_clock_advances_monotonically(self):
        engine = SimulationEngine()
        times = []
        engine.subscribe(Ping, lambda now, e: times.append(now))
        for t in (5.0, 1.0, 3.0):
            engine.schedule_at(t, Ping())
        engine.run()
        assert times == [1.0, 3.0, 5.0]
        assert engine.now == 5.0

    def test_handler_can_schedule_new_events(self):
        engine = SimulationEngine()
        seen = []

        def on_ping(now, event):
            seen.append(now)
            if now < 3.0:
                engine.schedule_after(1.0, Ping())

        engine.subscribe(Ping, on_ping)
        engine.schedule_at(1.0, Ping())
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_unhandled_event_raises(self):
        engine = SimulationEngine()
        engine.schedule_at(0.0, Pong())
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_duplicate_handler_rejected(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        with pytest.raises(SimulationError):
            engine.subscribe(Ping, lambda now, e: None)


class TestScheduling:
    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        engine.schedule_at(5.0, Ping())
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, Ping())

    def test_schedule_after_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, Ping())

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe(Ping, lambda now, e: seen.append(now))
        engine.schedule_at(1.0, Ping())
        engine.schedule_at(10.0, Ping())
        engine.run(until=5.0)
        assert seen == [1.0]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_max_events_guard(self):
        engine = SimulationEngine()
        engine.subscribe(
            Ping, lambda now, e: engine.schedule_after(1.0, Ping())
        )
        engine.schedule_at(0.0, Ping())
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=10)

    def test_events_dispatched_counter(self):
        engine = SimulationEngine()
        engine.subscribe(Ping, lambda now, e: None)
        for t in range(3):
            engine.schedule_at(float(t), Ping())
        engine.run()
        assert engine.events_dispatched == 3
