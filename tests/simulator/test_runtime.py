"""Tests for the on-line runtime: the full host + workers loop."""

import pytest

from repro.core import (
    DCOLS,
    RTSADS,
    GreedyEDFScheduler,
    UniformCommunicationModel,
    ZeroCommunicationModel,
    make_task,
)
from repro.simulator import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    DistributedRuntime,
    Machine,
    MachineConfig,
    simulate,
)


def _simulate(tasks, m=2, C=50.0, scheduler_cls=RTSADS, **kwargs):
    comm = UniformCommunicationModel(C)
    return simulate(scheduler_cls(comm, **kwargs), tasks, num_workers=m,
                    validate_phases=True)


class TestBasicRuns:
    def test_single_task_completes_on_time(self):
        tasks = [make_task(0, processing_time=10.0, deadline=200.0,
                           affinity=[0])]
        result = _simulate(tasks, m=2)
        record = result.trace.records[0]
        assert record.status == STATUS_COMPLETED
        assert record.met_deadline
        assert record.finished_at == pytest.approx(
            record.started_at + 10.0
        )

    def test_all_feasible_tasks_complete(self, simple_tasks):
        result = _simulate(simple_tasks, m=2)
        assert result.trace.hit_ratio() == 1.0
        assert result.trace.scheduled_but_missed() == []

    def test_impossible_task_expires(self):
        tasks = [make_task(0, processing_time=100.0, deadline=101.0)]
        result = _simulate(tasks, m=1)
        record = result.trace.records[0]
        # Scheduling overhead makes the task hopeless; it must be dropped,
        # never scheduled late.
        assert record.status in (STATUS_COMPLETED, STATUS_EXPIRED)
        if record.status == STATUS_EXPIRED:
            assert record.scheduled_phase is None

    def test_empty_workload(self):
        result = _simulate([], m=2)
        assert result.trace.total_tasks() == 0
        assert result.makespan == 0.0

    def test_makespan_is_last_event(self, simple_tasks):
        result = _simulate(simple_tasks, m=2)
        finishes = [
            r.finished_at
            for r in result.trace.records.values()
            if r.finished_at is not None
        ]
        assert result.makespan == pytest.approx(max(finishes))


class TestOnlineSemantics:
    def test_bursty_arrivals_form_one_initial_batch(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(8)
        ]
        result = _simulate(tasks, m=2)
        first_phase = result.phases[0]
        assert first_phase.batch_size == 8

    def test_staggered_arrivals_join_later_batches(self):
        tasks = [
            make_task(0, processing_time=10.0, deadline=10_000.0),
            make_task(
                1, processing_time=10.0, deadline=10_000.0, arrival_time=500.0
            ),
        ]
        result = _simulate(tasks, m=1)
        records = result.trace.records
        assert records[1].scheduled_phase > records[0].scheduled_phase
        assert records[1].started_at >= 500.0

    def test_tasks_execute_in_delivery_order(self):
        tasks = [
            make_task(0, processing_time=10.0, deadline=10_000.0),
            make_task(1, processing_time=10.0, deadline=10_000.0),
        ]
        result = _simulate(tasks, m=1)
        records = result.trace.records
        assert records[0].finished_at <= records[1].started_at or (
            records[1].finished_at <= records[0].started_at
        )

    def test_workers_execute_during_scheduling(self):
        """Phase j+1 runs while S_j executes: starts can precede later
        phases' delivery."""
        tasks = [
            make_task(i, processing_time=50.0, deadline=100_000.0)
            for i in range(3)
        ] + [
            make_task(
                i, processing_time=50.0, deadline=100_000.0, arrival_time=10.0
            )
            for i in range(3, 6)
        ]
        comm = ZeroCommunicationModel()
        scheduler = RTSADS(comm, per_vertex_cost=5.0)  # slow host
        result = simulate(scheduler, tasks, num_workers=1)
        assert len(result.phases) >= 2
        first_start = min(
            r.started_at
            for r in result.trace.records.values()
            if r.started_at is not None
        )
        assert first_start < result.phases[-1].end

    def test_theorem_no_scheduled_task_misses(self, synthetic_workload):
        result = simulate(
            RTSADS(UniformCommunicationModel(50.0)),
            synthetic_workload,
            num_workers=4,
            validate_phases=True,
        )
        assert result.trace.scheduled_but_missed() == []

    def test_theorem_holds_for_dcols(self, synthetic_workload):
        result = simulate(
            DCOLS(UniformCommunicationModel(50.0)),
            synthetic_workload,
            num_workers=4,
            validate_phases=True,
        )
        assert result.trace.scheduled_but_missed() == []

    def test_every_task_reaches_terminal_state(self, synthetic_workload):
        result = _simulate(list(synthetic_workload), m=4)
        for record in result.trace.records.values():
            assert record.status in (STATUS_COMPLETED, STATUS_EXPIRED)


class TestRuntimeConstruction:
    def test_simulate_uses_scheduler_comm_by_default(self, simple_tasks):
        comm = UniformCommunicationModel(50.0)
        result = simulate(RTSADS(comm), simple_tasks, num_workers=2)
        assert result.num_workers == 2

    def test_simulate_requires_comm_somewhere(self, simple_tasks):
        class NoComm:
            name = "none"

            def reset(self):
                pass

        with pytest.raises(ValueError):
            simulate(NoComm(), simple_tasks, num_workers=2)

    def test_duplicate_task_ids_rejected(self):
        tasks = [
            make_task(0, processing_time=1.0, deadline=10.0),
            make_task(0, processing_time=1.0, deadline=10.0),
        ]
        comm = UniformCommunicationModel(1.0)
        runtime = DistributedRuntime(
            scheduler=RTSADS(comm),
            machine=Machine(MachineConfig(num_workers=1, comm=comm)),
            workload=tasks,
        )
        with pytest.raises(ValueError):
            runtime.run()

    def test_summary_mentions_scheduler_and_ratio(self, simple_tasks):
        result = _simulate(simple_tasks, m=2)
        summary = result.summary()
        assert "RT-SADS" in summary
        assert "100.0%" in summary

    def test_greedy_baseline_through_runtime(self, simple_tasks):
        result = _simulate(simple_tasks, m=2,
                           scheduler_cls=GreedyEDFScheduler)
        assert result.trace.hit_ratio() == 1.0


class TestDeterminism:
    def test_repeated_runs_identical(self, synthetic_workload):
        def run():
            return simulate(
                RTSADS(UniformCommunicationModel(50.0)),
                list(synthetic_workload),
                num_workers=4,
            )

        first, second = run(), run()
        assert first.trace.hit_ratio() == second.trace.hit_ratio()
        assert len(first.phases) == len(second.phases)
        for a, b in zip(first.phases, second.phases):
            assert a.quantum == b.quantum
            assert a.scheduled == b.scheduled
