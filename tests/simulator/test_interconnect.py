"""Tests for mesh topology and interconnect models."""

import pytest

from repro.core import UniformCommunicationModel, make_task
from repro.simulator import (
    MeshCommunicationModel,
    MeshTopology,
    near_square_mesh,
    wormhole_model,
)


class TestMeshTopology:
    def test_coordinates_row_major(self):
        mesh = MeshTopology(rows=2, cols=3)
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(2) == (0, 2)
        assert mesh.coordinates(3) == (1, 0)

    def test_hops_manhattan(self):
        mesh = MeshTopology(rows=3, cols=3)
        assert mesh.hops(0, 8) == 4
        assert mesh.hops(4, 4) == 0
        assert mesh.hops(1, 7) == 2

    def test_hops_symmetric(self):
        mesh = MeshTopology(rows=3, cols=4)
        for a in range(12):
            for b in range(12):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_diameter(self):
        assert MeshTopology(rows=3, cols=4).diameter() == 5

    def test_out_of_range(self):
        mesh = MeshTopology(rows=2, cols=2)
        with pytest.raises(ValueError):
            mesh.coordinates(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshTopology(rows=0, cols=3)


class TestNearSquareMesh:
    @pytest.mark.parametrize(
        "n,rows,cols", [(1, 1, 1), (4, 2, 2), (6, 2, 3), (10, 2, 5), (9, 3, 3)]
    )
    def test_dimensions(self, n, rows, cols):
        mesh = near_square_mesh(n)
        assert (mesh.rows, mesh.cols) == (rows, cols)
        assert mesh.size == n

    def test_prime_sizes_fall_back_to_row(self):
        mesh = near_square_mesh(7)
        assert mesh.size == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            near_square_mesh(0)


class TestMeshCommunicationModel:
    def test_affine_free(self):
        model = MeshCommunicationModel(5.0, MeshTopology(2, 3))
        task = make_task(0, processing_time=1.0, deadline=10.0, affinity=[4])
        assert model.cost(task, 4) == 0.0

    def test_cost_by_mesh_distance(self):
        model = MeshCommunicationModel(5.0, MeshTopology(2, 3))
        task = make_task(0, processing_time=1.0, deadline=10.0, affinity=[0])
        # Processor 5 is at (1,2): 3 hops from (0,0).
        assert model.cost(task, 5) == 15.0

    def test_nearest_replica_wins(self):
        model = MeshCommunicationModel(5.0, MeshTopology(2, 3))
        task = make_task(
            0, processing_time=1.0, deadline=10.0, affinity=[0, 4]
        )
        # Processor 5 is 1 hop from 4, 3 hops from 0.
        assert model.cost(task, 5) == 5.0


class TestWormholeAlias:
    def test_returns_uniform_model(self):
        model = wormhole_model(25.0)
        assert isinstance(model, UniformCommunicationModel)
        assert model.remote_cost == 25.0
