"""Tests for deadline policies."""

import pytest

from repro.workload import (
    FixedLaxityDeadline,
    PAPER_DEADLINE_MULTIPLIER,
    ProportionalDeadline,
)


class TestProportional:
    def test_paper_formula(self):
        """Deadline(q) = SF * 10 * Estimated_Cost(q)."""
        policy = ProportionalDeadline(slack_factor=2.0)
        assert policy.deadline(0.0, 30.0) == 2.0 * 10.0 * 30.0

    def test_relative_to_arrival(self):
        policy = ProportionalDeadline(slack_factor=1.0)
        assert policy.deadline(100.0, 5.0) == 150.0

    def test_multiplier_default_is_ten(self):
        assert PAPER_DEADLINE_MULTIPLIER == 10.0

    def test_sf_one_is_tightest(self):
        tight = ProportionalDeadline(slack_factor=1.0).deadline(0.0, 10.0)
        loose = ProportionalDeadline(slack_factor=3.0).deadline(0.0, 10.0)
        assert tight < loose

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalDeadline(slack_factor=0.0)
        with pytest.raises(ValueError):
            ProportionalDeadline(slack_factor=1.0, multiplier=0.0)
        with pytest.raises(ValueError):
            ProportionalDeadline(slack_factor=1.0).deadline(0.0, 0.0)


class TestFixedLaxity:
    def test_constant_allowance(self):
        policy = FixedLaxityDeadline(laxity=25.0)
        assert policy.deadline(0.0, 10.0) == 35.0
        assert policy.deadline(0.0, 100.0) == 125.0

    def test_zero_laxity_allowed(self):
        assert FixedLaxityDeadline(0.0).deadline(5.0, 10.0) == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLaxityDeadline(-1.0)
        with pytest.raises(ValueError):
            FixedLaxityDeadline(1.0).deadline(0.0, -5.0)
