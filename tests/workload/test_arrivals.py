"""Tests for arrival processes."""

import random

import pytest

from repro.workload import (
    BatchedArrival,
    BurstyArrival,
    PoissonArrival,
    UniformArrival,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestBursty:
    def test_all_at_once(self, rng):
        times = BurstyArrival().arrival_times(5, rng)
        assert times == [0.0] * 5

    def test_custom_burst_time(self, rng):
        times = BurstyArrival(at=7.0).arrival_times(3, rng)
        assert times == [7.0] * 3

    def test_zero_tasks(self, rng):
        assert BurstyArrival().arrival_times(0, rng) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrival(at=-1.0)


class TestPoisson:
    def test_times_sorted_and_positive(self, rng):
        times = PoissonArrival(rate=0.5).arrival_times(100, rng)
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_interarrival_near_rate(self, rng):
        rate = 2.0
        times = PoissonArrival(rate=rate).arrival_times(5000, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_start_offset(self, rng):
        times = PoissonArrival(rate=1.0, start=100.0).arrival_times(5, rng)
        assert all(t > 100.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrival(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrival(rate=1.0, start=-1.0)


class TestUniform:
    def test_within_window_and_sorted(self, rng):
        times = UniformArrival(10.0, 20.0).arrival_times(50, rng)
        assert times == sorted(times)
        assert all(10.0 <= t <= 20.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformArrival(5.0, 5.0)


class TestBatched:
    def test_even_split(self, rng):
        times = BatchedArrival(num_batches=2, interval=10.0).arrival_times(
            6, rng
        )
        assert times == [0.0] * 3 + [10.0] * 3

    def test_uneven_split_front_loads(self, rng):
        times = BatchedArrival(num_batches=3, interval=5.0).arrival_times(
            7, rng
        )
        assert times.count(0.0) == 3
        assert times.count(5.0) == 2
        assert times.count(10.0) == 2

    def test_start_offset(self, rng):
        times = BatchedArrival(
            num_batches=2, interval=10.0, start=3.0
        ).arrival_times(2, rng)
        assert times == [3.0, 13.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedArrival(num_batches=0, interval=1.0)
        with pytest.raises(ValueError):
            BatchedArrival(num_batches=1, interval=0.0)


class TestDeterminism:
    def test_poisson_reproducible(self):
        a = PoissonArrival(1.0).arrival_times(20, random.Random(7))
        b = PoissonArrival(1.0).arrival_times(20, random.Random(7))
        assert a == b
