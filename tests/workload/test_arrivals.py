"""Tests for arrival processes."""

import random

import pytest

from repro.workload import (
    ARRIVAL_NAMES,
    BatchedArrival,
    BurstyArrival,
    DiurnalArrival,
    LogNormalArrival,
    ParetoArrival,
    PoissonArrival,
    UniformArrival,
    make_arrival,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestBursty:
    def test_all_at_once(self, rng):
        times = BurstyArrival().arrival_times(5, rng)
        assert times == [0.0] * 5

    def test_custom_burst_time(self, rng):
        times = BurstyArrival(at=7.0).arrival_times(3, rng)
        assert times == [7.0] * 3

    def test_zero_tasks(self, rng):
        assert BurstyArrival().arrival_times(0, rng) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrival(at=-1.0)


class TestPoisson:
    def test_times_sorted_and_positive(self, rng):
        times = PoissonArrival(rate=0.5).arrival_times(100, rng)
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_interarrival_near_rate(self, rng):
        rate = 2.0
        times = PoissonArrival(rate=rate).arrival_times(5000, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_start_offset(self, rng):
        times = PoissonArrival(rate=1.0, start=100.0).arrival_times(5, rng)
        assert all(t > 100.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrival(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrival(rate=1.0, start=-1.0)


class TestUniform:
    def test_within_window_and_sorted(self, rng):
        times = UniformArrival(10.0, 20.0).arrival_times(50, rng)
        assert times == sorted(times)
        assert all(10.0 <= t <= 20.0 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformArrival(5.0, 5.0)


class TestBatched:
    def test_even_split(self, rng):
        times = BatchedArrival(num_batches=2, interval=10.0).arrival_times(
            6, rng
        )
        assert times == [0.0] * 3 + [10.0] * 3

    def test_uneven_split_front_loads(self, rng):
        times = BatchedArrival(num_batches=3, interval=5.0).arrival_times(
            7, rng
        )
        assert times.count(0.0) == 3
        assert times.count(5.0) == 2
        assert times.count(10.0) == 2

    def test_start_offset(self, rng):
        times = BatchedArrival(
            num_batches=2, interval=10.0, start=3.0
        ).arrival_times(2, rng)
        assert times == [3.0, 13.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedArrival(num_batches=0, interval=1.0)
        with pytest.raises(ValueError):
            BatchedArrival(num_batches=1, interval=0.0)


class TestDeterminism:
    def test_poisson_reproducible(self):
        a = PoissonArrival(1.0).arrival_times(20, random.Random(7))
        b = PoissonArrival(1.0).arrival_times(20, random.Random(7))
        assert a == b


class TestPareto:
    def test_non_decreasing_and_non_negative(self, rng):
        times = ParetoArrival(rate=1.0).arrival_times(500, rng)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_mean_gap_calibrated_to_rate(self):
        # Heavy tails need many samples; shape 2.5 keeps variance finite.
        rate = 2.0
        times = ParetoArrival(rate=rate).arrival_times(
            20000, random.Random(3)
        )
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.15)

    def test_heavier_tail_than_poisson(self):
        """The defining property: rare gaps far beyond the exponential."""
        r = random.Random(11)
        pareto = ParetoArrival(rate=1.0, shape=1.5).arrival_times(5000, r)
        gaps = [b - a for a, b in zip(pareto, pareto[1:])]
        # An exponential with mean 1 exceeds 20 with p ~ 2e-9; the heavy
        # tail makes such gaps routine in a few thousand draws.
        assert max(gaps) > 20.0

    def test_seeded_determinism(self):
        a = ParetoArrival(rate=1.0).arrival_times(50, random.Random(7))
        b = ParetoArrival(rate=1.0).arrival_times(50, random.Random(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoArrival(rate=0.0)
        with pytest.raises(ValueError):
            ParetoArrival(rate=1.0, shape=1.0)  # infinite mean gap
        with pytest.raises(ValueError):
            ParetoArrival(rate=1.0, start=-1.0)


class TestLogNormal:
    def test_non_decreasing_and_non_negative(self, rng):
        times = LogNormalArrival(rate=1.0).arrival_times(500, rng)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_mean_gap_calibrated_to_rate(self):
        rate = 4.0
        times = LogNormalArrival(rate=rate, sigma=1.0).arrival_times(
            20000, random.Random(5)
        )
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_seeded_determinism(self):
        a = LogNormalArrival(rate=2.0).arrival_times(50, random.Random(9))
        b = LogNormalArrival(rate=2.0).arrival_times(50, random.Random(9))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormalArrival(rate=0.0)
        with pytest.raises(ValueError):
            LogNormalArrival(rate=1.0, sigma=0.0)
        with pytest.raises(ValueError):
            LogNormalArrival(rate=1.0, start=-1.0)


class TestDiurnal:
    def test_non_decreasing_and_non_negative(self, rng):
        times = DiurnalArrival(rate=1.0, period=100.0).arrival_times(
            500, rng
        )
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_rate_oscillates_around_mean(self):
        process = DiurnalArrival(rate=2.0, period=100.0, amplitude=0.5)
        assert process.rate_at(25.0) == pytest.approx(3.0)  # peak
        assert process.rate_at(75.0) == pytest.approx(1.0)  # trough
        assert process.rate_at(0.0) == pytest.approx(2.0)

    def test_peak_half_denser_than_trough_half(self):
        """More arrivals land in the high-rate half of each cycle."""
        period = 50.0
        times = DiurnalArrival(
            rate=2.0, period=period, amplitude=0.8
        ).arrival_times(4000, random.Random(13))
        peak = sum(1 for t in times if (t % period) < period / 2)
        trough = len(times) - peak
        assert peak > 1.5 * trough

    def test_seeded_determinism(self):
        a = DiurnalArrival(rate=1.0, period=10.0).arrival_times(
            50, random.Random(21)
        )
        b = DiurnalArrival(rate=1.0, period=10.0).arrival_times(
            50, random.Random(21)
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrival(rate=0.0, period=10.0)
        with pytest.raises(ValueError):
            DiurnalArrival(rate=1.0, period=0.0)
        with pytest.raises(ValueError):
            DiurnalArrival(rate=1.0, period=10.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrival(rate=1.0, period=10.0, start=-1.0)


class TestMakeArrival:
    @pytest.mark.parametrize("name", ARRIVAL_NAMES)
    def test_every_name_builds_and_behaves(self, name):
        process = make_arrival(name, rate=1.0, horizon=50.0)
        times = process.arrival_times(40, random.Random(1))
        assert len(times) == 40
        assert times == sorted(times)
        assert all(t >= 0 for t in times)
        replay = make_arrival(name, rate=1.0, horizon=50.0).arrival_times(
            40, random.Random(1)
        )
        assert times == replay

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_arrival("fractal", rate=1.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            make_arrival("poisson", rate=0.0)
