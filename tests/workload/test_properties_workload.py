"""Property-based tests on workload generators."""

import random

from hypothesis import given, settings, strategies as st

from repro.workload import (
    BatchedArrival,
    BurstyArrival,
    PoissonArrival,
    ProportionalDeadline,
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    UniformArrival,
)

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def arrival_processes(draw):
    kind = draw(st.sampled_from(["bursty", "poisson", "uniform", "batched"]))
    if kind == "bursty":
        return BurstyArrival(at=draw(st.floats(min_value=0.0, max_value=50.0)))
    if kind == "poisson":
        return PoissonArrival(
            rate=draw(st.floats(min_value=0.01, max_value=10.0))
        )
    if kind == "uniform":
        start = draw(st.floats(min_value=0.0, max_value=10.0))
        return UniformArrival(start, start + draw(
            st.floats(min_value=1.0, max_value=100.0)))
    return BatchedArrival(
        num_batches=draw(st.integers(min_value=1, max_value=5)),
        interval=draw(st.floats(min_value=1.0, max_value=100.0)),
    )


class TestArrivalProperties:
    @settings(**SETTINGS)
    @given(
        process=arrival_processes(),
        n=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=9999),
    )
    def test_times_sorted_nonnegative_and_sized(self, process, n, seed):
        times = process.arrival_times(n, random.Random(seed))
        assert len(times) == n
        assert all(t >= 0.0 for t in times)
        assert times == sorted(times)


class TestSyntheticWorkloadProperties:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        num_tasks=st.integers(min_value=1, max_value=60),
        num_processors=st.integers(min_value=1, max_value=8),
        affinity=st.floats(min_value=0.0, max_value=1.0),
        slack=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_generated_tasks_well_formed(
        self, seed, num_tasks, num_processors, affinity, slack
    ):
        tasks = SyntheticWorkloadGenerator(
            SyntheticWorkloadConfig(
                num_tasks=num_tasks,
                num_processors=num_processors,
                affinity_probability=affinity,
                slack_factor=slack,
                seed=seed,
            )
        ).generate()
        assert len(tasks) == num_tasks
        for task in tasks:
            assert task.processing_time > 0
            assert task.deadline > task.arrival_time
            assert task.affinity
            assert all(0 <= p < num_processors for p in task.affinity)
            # The proportional rule: d - a = SF * 10 * p.
            assert task.deadline - task.arrival_time == (
                __import__("pytest").approx(10.0 * slack * task.processing_time)
            )


class TestDeadlinePolicyProperties:
    @settings(**SETTINGS)
    @given(
        arrival=st.floats(min_value=0.0, max_value=1e6),
        cost=st.floats(min_value=1e-3, max_value=1e6),
        slack=st.floats(min_value=1e-3, max_value=100.0),
    )
    def test_proportional_deadline_always_after_arrival(
        self, arrival, cost, slack
    ):
        deadline = ProportionalDeadline(slack).deadline(arrival, cost)
        assert deadline > arrival
        # Monotone in cost: a dearer task never gets an earlier deadline.
        assert ProportionalDeadline(slack).deadline(arrival, cost * 2) > deadline
