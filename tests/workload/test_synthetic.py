"""Tests for the synthetic workload generator."""

import pytest

from repro.workload import (
    BurstyArrival,
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
    UniformArrival,
)


class TestSyntheticGenerator:
    def test_generates_requested_count(self):
        tasks = SyntheticWorkloadGenerator(
            SyntheticWorkloadConfig(num_tasks=25, seed=1)
        ).generate()
        assert len(tasks) == 25

    def test_processing_times_within_bounds(self):
        config = SyntheticWorkloadConfig(
            num_tasks=100,
            min_processing_time=5.0,
            max_processing_time=9.0,
            seed=2,
        )
        tasks = SyntheticWorkloadGenerator(config).generate()
        assert all(5.0 <= t.processing_time <= 9.0 for t in tasks)

    def test_bimodal_tail(self):
        config = SyntheticWorkloadConfig(
            num_tasks=300,
            min_processing_time=1.0,
            max_processing_time=2.0,
            bimodal_fraction=0.5,
            bimodal_scale=100.0,
            seed=3,
        )
        tasks = SyntheticWorkloadGenerator(config).generate()
        heavy = sum(1 for t in tasks if t.processing_time > 50.0)
        assert 100 < heavy < 200

    def test_affinity_within_machine(self):
        config = SyntheticWorkloadConfig(
            num_tasks=50, num_processors=3, affinity_probability=0.5, seed=4
        )
        tasks = SyntheticWorkloadGenerator(config).generate()
        for task in tasks:
            assert task.affinity
            assert all(0 <= p < 3 for p in task.affinity)

    def test_deadline_uses_slack_factor(self):
        config = SyntheticWorkloadConfig(num_tasks=10, slack_factor=3.0, seed=5)
        tasks = SyntheticWorkloadGenerator(config).generate()
        for task in tasks:
            assert task.deadline == pytest.approx(
                task.arrival_time + 30.0 * task.processing_time
            )

    def test_custom_arrival_process(self):
        generator = SyntheticWorkloadGenerator(
            SyntheticWorkloadConfig(num_tasks=20, seed=6),
            arrivals=UniformArrival(0.0, 50.0),
        )
        tasks = generator.generate()
        assert any(t.arrival_time > 0.0 for t in tasks)

    def test_deterministic(self):
        config = SyntheticWorkloadConfig(num_tasks=20, seed=9)
        a = SyntheticWorkloadGenerator(config).generate()
        b = SyntheticWorkloadGenerator(config).generate()
        assert [t.processing_time for t in a] == [t.processing_time for t in b]
        assert [t.affinity for t in a] == [t.affinity for t in b]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(num_tasks=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(affinity_probability=2.0)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(
                min_processing_time=10.0, max_processing_time=5.0
            )
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(bimodal_scale=0.5)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(slack_factor=0.0)
