"""Tests for the transaction workload generator (paper Section 5.1)."""

import pytest

from repro.workload import (
    BurstyArrival,
    PoissonArrival,
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)


def _generator(database, **config_kwargs):
    defaults = dict(num_transactions=60, slack_factor=1.0, seed=3)
    defaults.update(config_kwargs)
    return TransactionWorkloadGenerator(
        database=database, config=TransactionWorkloadConfig(**defaults)
    )


class TestTransactionGeneration:
    def test_generates_requested_count(self, small_database):
        txns = _generator(small_database).generate_transactions()
        assert len(txns) == 60
        assert [t.txn_id for t in txns] == list(range(60))

    def test_transactions_well_formed(self, small_database):
        for txn in _generator(small_database).generate_transactions():
            txn.validate_against(small_database.schema)

    def test_single_subdatabase_per_transaction(self, small_database):
        schema = small_database.schema
        for txn in _generator(small_database).generate_transactions():
            owners = {
                schema.subdb_of_value(v) for v in txn.predicates.values()
            }
            assert len(owners) == 1

    def test_attribute_count_within_bounds(self, small_database):
        generator = _generator(
            small_database, min_given_attributes=2, max_given_attributes=3
        )
        for txn in generator.generate_transactions():
            assert 2 <= len(txn.predicates) <= 3

    def test_bursty_default_arrivals(self, small_database):
        txns = _generator(small_database).generate_transactions()
        assert all(t.arrival_time == 0.0 for t in txns)

    def test_poisson_arrivals_propagate(self, small_database):
        generator = TransactionWorkloadGenerator(
            database=small_database,
            config=TransactionWorkloadConfig(num_transactions=20, seed=1),
            arrivals=PoissonArrival(rate=0.1),
        )
        txns = generator.generate_transactions()
        assert txns[-1].arrival_time > 0.0

    def test_deterministic_under_seed(self, small_database):
        a = _generator(small_database).generate_transactions()
        b = _generator(small_database).generate_transactions()
        assert [t.predicates for t in a] == [t.predicates for t in b]

    def test_key_probability_one_always_indexed(self, small_database):
        generator = _generator(small_database, key_probability=1.0)
        schema = small_database.schema
        for txn in generator.generate_transactions():
            assert txn.gives_key(schema)

    def test_key_probability_zero_never_indexed(self, small_database):
        generator = _generator(small_database, key_probability=0.0)
        schema = small_database.schema
        for txn in generator.generate_transactions():
            assert not txn.gives_key(schema)

    def test_write_fraction_zero_is_read_only(self, small_database):
        txns = _generator(small_database).generate_transactions()
        assert all(not t.is_write for t in txns)

    def test_write_fraction_generates_updates(self, small_database):
        generator = _generator(small_database, write_fraction=0.5)
        txns = generator.generate_transactions()
        writes = [t for t in txns if t.is_write]
        assert 10 < len(writes) < 50  # ~50% of 60
        for txn in writes:
            txn.validate_against(small_database.schema)
            assert 1 <= len(txn.updates) <= 2

    def test_write_tasks_pinned_to_primary(self, small_database):
        generator = _generator(small_database, write_fraction=1.0)
        tasks, txns = generator.generate()
        by_id = {t.task_id: t for t in tasks}
        for txn in txns:
            task = by_id[txn.txn_id]
            assert task.tag == "update"
            assert len(task.affinity) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(num_transactions=0)
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(slack_factor=0.0)
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(min_given_attributes=0)
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(
                min_given_attributes=5, max_given_attributes=2
            )
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(key_probability=1.5)
        with pytest.raises(ValueError):
            TransactionWorkloadConfig(write_fraction=-0.1)


class TestTaskConversion:
    def test_tasks_match_transactions(self, small_database):
        tasks, txns = _generator(small_database).generate()
        assert len(tasks) == len(txns)
        by_id = {t.task_id: t for t in tasks}
        for txn in txns:
            task = by_id[txn.txn_id]
            assert task.processing_time == small_database.estimate_cost(txn)
            assert task.affinity == small_database.affinity_of(txn)

    def test_deadlines_follow_paper_rule(self, small_database):
        tasks, txns = _generator(small_database, slack_factor=2.0).generate()
        by_id = {t.task_id: t for t in tasks}
        for txn in txns:
            task = by_id[txn.txn_id]
            expected = txn.arrival_time + 2.0 * 10.0 * task.processing_time
            assert task.deadline == pytest.approx(expected)

    def test_tags_identify_query_kind(self, small_database):
        tasks, txns = _generator(small_database).generate()
        schema = small_database.schema
        by_id = {t.task_id: t for t in tasks}
        for txn in txns:
            expected = "indexed" if txn.gives_key(schema) else "scan"
            assert by_id[txn.txn_id].tag == expected

    def test_generate_tasks_shortcut(self, small_database):
        tasks = _generator(small_database).generate_tasks()
        assert len(tasks) == 60
