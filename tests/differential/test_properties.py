"""Property-based differential tests (seeded, stdlib ``random``).

Two families:

* **Theorem invariant** (paper Section 4.3): under the quantum-aware
  feasibility test, no *guaranteed* task — one the scheduler delivered to a
  worker — ever misses its deadline, for either representation, across a
  seeded space of random workloads.
* **CL ordering invariants**: the heap-backed :class:`CandidateList` pops
  exactly the sequence the original flat pre-sorted stack popped, for
  arbitrary interleavings of pushes and pops, tie-heavy value
  distributions, and overflow eviction; and within any single block the
  popped values are non-decreasing with ties in generation order.
"""

from __future__ import annotations

import random

import pytest

from repro.core.affinity import UniformCommunicationModel
from repro.core.dcols import DCOLS
from repro.core.reference import ReferenceCandidateList
from repro.core.rtsads import RTSADS
from repro.core.search import CandidateList, make_root
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_workload
from repro.metrics.compliance import compliance_report
from repro.simulator.runtime import simulate


def _vertex(value: float):
    vertex = make_root((0.0,))
    vertex.value = value
    return vertex


def _random_values(rng: random.Random, size: int):
    """Value distribution with deliberate collisions to stress tie-breaks."""
    pool = [rng.uniform(0.0, 5.0) for _ in range(max(1, size // 2))]
    return [rng.choice(pool) if rng.random() < 0.5 else rng.uniform(0.0, 5.0)
            for _ in range(size)]


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("max_size", [None, 4, 16])
def test_cl_matches_reference_pop_sequence(seed: int, max_size) -> None:
    rng = random.Random(60_000 + seed)
    optimized = CandidateList(max_size=max_size)
    reference = ReferenceCandidateList(max_size=max_size)
    popped_opt, popped_ref = [], []
    for _ in range(rng.randrange(5, 40)):
        if rng.random() < 0.6:
            block = [_vertex(v) for v in _random_values(rng, rng.randrange(0, 7))]
            # The optimized CL orders internally; the reference expects the
            # pre-sorted blocks its original callers produced.
            optimized.push_block(block)
            reference.push_block(sorted(block, key=lambda v: v.value))
        else:
            for _ in range(rng.randrange(1, 4)):
                popped_opt.append(optimized.pop())
                popped_ref.append(reference.pop())
    while optimized or reference:
        popped_opt.append(optimized.pop())
        popped_ref.append(reference.pop())
    # Same objects in the same order (identity, not just equal values).
    assert [id(v) if v else None for v in popped_opt] == [
        id(v) if v else None for v in popped_ref
    ]
    assert len(optimized) == len(reference) == 0
    assert optimized.dropped == reference.dropped


@pytest.mark.parametrize("seed", range(10))
def test_cl_block_pops_are_stable_best_first(seed: int) -> None:
    rng = random.Random(70_000 + seed)
    cl = CandidateList()
    block = [_vertex(v) for v in _random_values(rng, rng.randrange(1, 12))]
    order = {id(v): i for i, v in enumerate(block)}
    cl.push_block(block)
    popped = [cl.pop() for _ in range(len(block))]
    keys = [(v.value, order[id(v)]) for v in popped]
    assert keys == sorted(keys), "pops must be best-first, ties in generation order"
    assert cl.pop() is None


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("scheduler_name", ["rtsads", "dcols"])
def test_no_guaranteed_task_misses_deadline(scheduler_name: str, seed: int) -> None:
    rng = random.Random(80_000 + seed)
    config = (
        ExperimentConfig.quick(num_transactions=40, runs=1)
        .with_processors(rng.choice([2, 3, 5, 8]))
        .with_replication(rng.choice([0.1, 0.3, 0.5]))
    )
    comm = UniformCommunicationModel(remote_cost=config.remote_cost)
    cls = RTSADS if scheduler_name == "rtsads" else DCOLS
    scheduler = cls(comm=comm, per_vertex_cost=config.per_vertex_cost)
    _, tasks = build_workload(config, rng.randrange(1, 10_000))
    result = simulate(
        scheduler=scheduler,
        workload=list(tasks),
        num_workers=config.num_processors,
    )
    report = compliance_report(result.trace)
    assert report.scheduled_but_missed == 0, (
        f"{scheduler_name} guaranteed a task past its deadline "
        f"(m={config.num_processors}, R={config.replication_rate})"
    )
