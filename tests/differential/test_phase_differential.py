"""Phase-level differential tests with full expansion-trace equality.

Runs single scheduling phases through the optimized ``repro.core.phase``
loop and the frozen ``repro.core.reference`` loop over seeded random
batches and asserts the strongest equivalence the harness checks anywhere:
the exact sequence of expanded vertices, every successor block (with
full-precision evaluator values), every ``SearchStats`` counter, and the
extracted schedule entries all match bit-for-bit — including under tiny
``max_candidates`` bounds that force the CL eviction paths.
"""

from __future__ import annotations

import random

import pytest

from repro.core import phase as optimized_phase
from repro.core import reference
from repro.core.affinity import (
    UniformCommunicationModel,
    ZeroCommunicationModel,
)
from repro.core.cost import EarliestFinishEvaluator, LoadBalancingEvaluator
from repro.core.representations import (
    AssignmentOrientedExpander,
    SequenceOrientedExpander,
)

from .harness import RecordingExpander, random_batch, stats_fingerprint


def _phase_fingerprint(result) -> tuple:
    entries = tuple(
        (
            entry.task.task_id,
            entry.processor,
            repr(entry.communication_cost),
            repr(entry.scheduled_end),
        )
        for entry in result.schedule
    )
    return (
        entries,
        repr(result.time_used),
        repr(result.quantum),
        repr(result.phase_start),
        stats_fingerprint(result.stats),
        tuple(repr(offset) for offset in result.initial_offsets),
    )


def _run_pair(
    tasks,
    loads,
    quantum,
    comm,
    optimized_expander,
    reference_expander,
    optimized_evaluator,
    reference_evaluator,
    max_candidates=None,
    now=0.0,
    per_vertex_cost=0.05,
):
    opt_log: list = []
    ref_log: list = []
    opt = optimized_phase.run_phase(
        tasks=tasks,
        loads=loads,
        now=now,
        quantum=quantum,
        comm=comm,
        expander=RecordingExpander(optimized_expander, opt_log),
        evaluator=optimized_evaluator,
        per_vertex_cost=per_vertex_cost,
        max_candidates=max_candidates,
    )
    ref = reference.run_phase(
        tasks=tasks,
        loads=loads,
        now=now,
        quantum=quantum,
        comm=comm,
        expander=RecordingExpander(reference_expander, ref_log),
        evaluator=reference_evaluator,
        per_vertex_cost=per_vertex_cost,
        max_candidates=max_candidates,
    )
    return opt, ref, opt_log, ref_log


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("num_processors", [2, 4, 8])
def test_assignment_phase_trace_identical(seed: int, num_processors: int) -> None:
    rng = random.Random(10_000 + seed)
    tasks = random_batch(rng, num_tasks=18, num_processors=num_processors)
    loads = [rng.uniform(0.0, 25.0) for _ in range(num_processors)]
    quantum = rng.uniform(10.0, 60.0)
    comm = UniformCommunicationModel(remote_cost=rng.uniform(5.0, 40.0))
    opt, ref, opt_log, ref_log = _run_pair(
        tasks,
        loads,
        quantum,
        comm,
        AssignmentOrientedExpander(),
        reference.ReferenceAssignmentOrientedExpander(),
        LoadBalancingEvaluator(),
        reference.ReferenceLoadBalancingEvaluator(),
    )
    assert opt_log == ref_log
    assert _phase_fingerprint(opt) == _phase_fingerprint(ref)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("num_processors", [2, 4, 8])
def test_sequence_phase_trace_identical(seed: int, num_processors: int) -> None:
    rng = random.Random(20_000 + seed)
    tasks = random_batch(rng, num_tasks=18, num_processors=num_processors)
    loads = [rng.uniform(0.0, 25.0) for _ in range(num_processors)]
    quantum = rng.uniform(10.0, 60.0)
    comm = UniformCommunicationModel(remote_cost=rng.uniform(5.0, 40.0))
    start = rng.randrange(num_processors)
    opt, ref, opt_log, ref_log = _run_pair(
        tasks,
        loads,
        quantum,
        comm,
        SequenceOrientedExpander(start_processor=start),
        reference.ReferenceSequenceOrientedExpander(start_processor=start),
        LoadBalancingEvaluator(),
        reference.ReferenceLoadBalancingEvaluator(),
    )
    assert opt_log == ref_log
    assert _phase_fingerprint(opt) == _phase_fingerprint(ref)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("max_candidates", [1, 3, 8])
def test_cl_eviction_paths_identical(seed: int, max_candidates: int) -> None:
    """Tiny CL bounds exercise heap-block eviction vs flat-stack trimming."""
    rng = random.Random(30_000 + seed)
    m = 4
    tasks = random_batch(rng, num_tasks=14, num_processors=m)
    loads = [rng.uniform(0.0, 15.0) for _ in range(m)]
    quantum = rng.uniform(20.0, 80.0)
    comm = UniformCommunicationModel(remote_cost=15.0)
    opt, ref, opt_log, ref_log = _run_pair(
        tasks,
        loads,
        quantum,
        comm,
        AssignmentOrientedExpander(),
        reference.ReferenceAssignmentOrientedExpander(),
        LoadBalancingEvaluator(),
        reference.ReferenceLoadBalancingEvaluator(),
        max_candidates=max_candidates,
    )
    assert opt_log == ref_log
    assert _phase_fingerprint(opt) == _phase_fingerprint(ref)


@pytest.mark.parametrize("seed", range(6))
def test_earliest_finish_evaluator_identical(seed: int) -> None:
    """The incremental-friendly EF evaluator matches its reference twin."""
    rng = random.Random(40_000 + seed)
    m = 5
    tasks = random_batch(rng, num_tasks=16, num_processors=m)
    loads = [rng.uniform(0.0, 20.0) for _ in range(m)]
    quantum = rng.uniform(15.0, 70.0)
    comm = UniformCommunicationModel(remote_cost=25.0)
    opt, ref, opt_log, ref_log = _run_pair(
        tasks,
        loads,
        quantum,
        comm,
        AssignmentOrientedExpander(),
        reference.ReferenceAssignmentOrientedExpander(),
        EarliestFinishEvaluator(),
        reference.ReferenceEarliestFinishEvaluator(),
    )
    assert opt_log == ref_log
    assert _phase_fingerprint(opt) == _phase_fingerprint(ref)


@pytest.mark.parametrize("seed", range(4))
def test_zero_communication_model_identical(seed: int) -> None:
    """All-ties regime: zero comm makes many evaluator values collide,
    stressing the (value, seq) tie-breaking against the stable sort."""
    rng = random.Random(50_000 + seed)
    m = 4
    tasks = random_batch(rng, num_tasks=12, num_processors=m)
    loads = [0.0] * m
    quantum = 50.0
    comm = ZeroCommunicationModel()
    opt, ref, opt_log, ref_log = _run_pair(
        tasks,
        loads,
        quantum,
        comm,
        AssignmentOrientedExpander(),
        reference.ReferenceAssignmentOrientedExpander(),
        LoadBalancingEvaluator(),
        reference.ReferenceLoadBalancingEvaluator(),
    )
    assert opt_log == ref_log
    assert _phase_fingerprint(opt) == _phase_fingerprint(ref)
