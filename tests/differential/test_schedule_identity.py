"""Full-simulation differential matrix: optimized vs frozen reference.

For every cell of the seeded matrix — processor counts m in 2..10,
replication rates R in {10, 30, 50}%, both RT-SADS and D-COLS — the
optimized scheduler and the reference-assembled scheduler simulate the
same workload and must produce *bit-identical* results: the same guarantee
set (which tasks were scheduled, on which processor, in which phase), the
same per-phase timings and search counters, and the same makespan.
"""

from __future__ import annotations

import pytest

from repro.core.affinity import UniformCommunicationModel
from repro.core.dcols import DCOLS
from repro.core.reference import reference_dcols, reference_rtsads
from repro.core.rtsads import RTSADS
from repro.experiments.config import ExperimentConfig

from .harness import run_matrix_cell, simulation_fingerprint

PROCESSOR_COUNTS = list(range(2, 11))
REPLICATION_RATES = [0.1, 0.3, 0.5]
SEED = 1998

_QUICK = ExperimentConfig.quick()


def _comm() -> UniformCommunicationModel:
    return UniformCommunicationModel(remote_cost=_QUICK.remote_cost)


def _pair(scheduler_name: str):
    comm = _comm()
    pvc = _QUICK.per_vertex_cost
    if scheduler_name == "rtsads":
        return (
            RTSADS(comm=comm, per_vertex_cost=pvc),
            reference_rtsads(comm=comm, per_vertex_cost=pvc),
        )
    return (
        DCOLS(comm=comm, per_vertex_cost=pvc),
        reference_dcols(comm=comm, per_vertex_cost=pvc),
    )


@pytest.mark.parametrize("replication", REPLICATION_RATES)
@pytest.mark.parametrize("num_processors", PROCESSOR_COUNTS)
@pytest.mark.parametrize("scheduler_name", ["rtsads", "dcols"])
def test_matrix_cell_is_bit_identical(
    scheduler_name: str, num_processors: int, replication: float
) -> None:
    optimized, reference = _pair(scheduler_name)
    seed = SEED + num_processors
    got = simulation_fingerprint(
        run_matrix_cell(optimized, num_processors, replication, seed)
    )
    want = simulation_fingerprint(
        run_matrix_cell(reference, num_processors, replication, seed)
    )
    assert got == want, (
        f"{scheduler_name} diverged from the reference at "
        f"m={num_processors}, R={replication}"
    )


@pytest.mark.parametrize("scheduler_name", ["rtsads", "dcols"])
def test_rotating_and_probe_limited_variants(scheduler_name: str) -> None:
    """Non-default expander knobs stay identical too."""
    comm = _comm()
    pvc = _QUICK.per_vertex_cost
    if scheduler_name == "rtsads":
        optimized = RTSADS(comm=comm, per_vertex_cost=pvc, max_task_probes=3)
        reference = reference_rtsads(
            comm=comm, per_vertex_cost=pvc, max_task_probes=3
        )
    else:
        optimized = DCOLS(
            comm=comm, per_vertex_cost=pvc, beam_width=4, rotate_start=True
        )
        reference = reference_dcols(
            comm=comm, per_vertex_cost=pvc, beam_width=4, rotate_start=True
        )
    got = simulation_fingerprint(run_matrix_cell(optimized, 6, 0.3, SEED))
    want = simulation_fingerprint(run_matrix_cell(reference, 6, 0.3, SEED))
    assert got == want
