"""Shared machinery for the differential harness.

The harness proves the optimized hot path (heap-backed CL, incremental
``CE``, per-phase communication-row cache, best-case feasibility pruning)
is *bit-identical* to the frozen reference in ``repro.core.reference``:
identical schedules, identical guarantee sets, identical search counters,
and identical vertex-expansion traces.  Fingerprints therefore use
``repr(float)`` — the full shortest-roundtrip digits — not approximate
comparisons.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core import Task, make_task
from repro.core.search import Expander, Expansion, PhaseContext, Vertex
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_workload
from repro.simulator.runtime import SimulationResult, simulate


def simulation_fingerprint(result: SimulationResult) -> tuple:
    """Everything observable about a run, with floats at full precision.

    Covers the guarantee set (which tasks were scheduled, when, where), the
    per-phase trace (timings and every exported search counter), and the
    final makespan.  Two runs with equal fingerprints made identical
    scheduling decisions at every phase.
    """
    records = tuple(
        (
            task_id,
            str(record.status),
            record.scheduled_phase,
            record.processor,
            repr(record.delivered_at),
            repr(record.started_at),
            repr(record.finished_at),
            repr(record.planned_cost),
        )
        for task_id, record in sorted(result.trace.records.items())
    )
    phases = tuple(
        (
            phase.index,
            repr(phase.start),
            repr(phase.quantum),
            repr(phase.time_used),
            phase.batch_size,
            phase.scheduled,
            phase.expired_before,
            phase.dead_end,
            phase.complete,
            phase.max_depth,
            phase.processors_touched,
            phase.vertices_generated,
        )
        for phase in result.phases
    )
    return (records, phases, repr(result.makespan))


def run_matrix_cell(
    scheduler, num_processors: int, replication: float, seed: int,
    num_transactions: int = 50,
) -> SimulationResult:
    """One simulated run of ``scheduler`` over a seeded workload cell."""
    config = (
        ExperimentConfig.quick(num_transactions=num_transactions, runs=1)
        .with_processors(num_processors)
        .with_replication(replication)
    )
    _, tasks = build_workload(config, seed)
    return simulate(
        scheduler=scheduler,
        workload=list(tasks),
        num_workers=config.num_processors,
    )


def random_batch(
    rng: random.Random, num_tasks: int, num_processors: int,
    affinity_probability: float = 0.4,
) -> List[Task]:
    """A seeded batch with mixed slack: some tight, some generous deadlines."""
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(5.0, 30.0)
        slack = rng.uniform(0.5, 6.0)
        affinity = [
            k for k in range(num_processors)
            if rng.random() < affinity_probability
        ]
        if not affinity:
            affinity = [rng.randrange(num_processors)]
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                deadline=processing * (1.0 + slack),
                affinity=affinity,
            )
        )
    return tasks


class RecordingExpander(Expander):
    """Wraps an expander and logs the exact expansion trace.

    Logs, per expansion, the identity of the vertex being expanded and the
    multiset of successors it produced (with full-precision values).  The
    *expanded-vertex sequence* must match between implementations; successor
    blocks are compared as sorted tuples because the optimized expander
    returns generation order and lets the CL order best-first, while the
    reference pre-sorts — the same candidates either way.
    """

    def __init__(self, inner: Expander, log: List[tuple]) -> None:
        self.inner = inner
        self.log = log

    def successors(self, vertex: Vertex, ctx: PhaseContext, budget, stats) -> Expansion:
        expansion = self.inner.successors(vertex, ctx, budget, stats)
        block = tuple(
            sorted(
                (child.batch_index, child.processor, repr(child.value))
                for child in expansion.successors
            )
        )
        self.log.append(
            (
                vertex.depth,
                vertex.batch_index,
                vertex.processor,
                block,
                expansion.exhaustive,
            )
        )
        return expansion


def stats_fingerprint(stats) -> Tuple:
    """Every counter of a SearchStats, in declaration order."""
    return (
        stats.vertices_generated,
        stats.expansions,
        stats.backtracks,
        stats.task_probes,
        stats.feasibility_rejections,
        stats.tasks_pruned,
        stats.prefilter_rejected,
        stats.dead_end,
        stats.complete,
        stats.maximal,
        stats.max_depth,
        stats.processors_touched,
    )
