"""Kernel differential tests: scalar vs vectorized, bit-for-bit.

The vectorized kernel (:mod:`repro.core.vectorized`) promises *exact*
equivalence with :func:`repro.core.search.run_search` — identical
schedules, identical :class:`~repro.core.search.SearchStats` counters,
identical budget consumption, identical tie-breaking.  This suite holds it
to that promise:

* targeted edge cases — empty frontier, single candidate, all-infeasible
  prune, max-offset ties, exhausted budgets, tiny candidate-list bounds;
* a seeded grid over expanders x evaluators x machine sizes;
* a hypothesis property over random workloads x m in {2, 8, 16};
* the committed golden fixtures, re-derived with ``kernel="vectorized"``
  and required to come out byte-equal.

Every fingerprint uses ``repr(float)`` — shortest-roundtrip digits — so a
single ULP of drift anywhere fails.  The whole module self-skips on hosts
without numpy (the ``fast`` extra).
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy", reason="vectorized kernel requires numpy ([fast])")

from hypothesis import given, settings, strategies as st

from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    PhaseContext,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    VirtualTimeBudget,
    get_kernel,
    make_task,
    run_phase,
    run_search,
)
from repro.core.affinity import ZeroCommunicationModel
from repro.core.cost import (
    EarliestFinishEvaluator,
    FifoEvaluator,
    MinSlackEvaluator,
)
from repro.core.vectorized import VectorizedKernel

from ..integration.test_golden_fixtures import (
    GOLDEN_DIR,
    _golden_document,
    _golden_name,
)
from .harness import random_batch, stats_fingerprint

#: Cutoff 0 so even tiny phases run through the batch code under test
#: (the production default delegates small phases to the scalar kernel).
KERNEL = VectorizedKernel(small_phase_cutoff=0)

EVALUATORS = (
    LoadBalancingEvaluator,
    EarliestFinishEvaluator,
    MinSlackEvaluator,
    FifoEvaluator,
)


def _outcome_fingerprint(outcome) -> tuple:
    """Every observable bit of a search outcome, floats at full precision."""
    path = tuple(
        (
            vertex.batch_index,
            vertex.processor,
            repr(vertex.scheduled_end),
            repr(vertex.communication_cost),
            repr(vertex.value),
            repr(vertex.max_offset),
            vertex.scheduled_mask,
            vertex.depth,
        )
        for vertex in outcome.best.path()
    )
    return (
        path,
        stats_fingerprint(outcome.stats),
        repr(outcome.time_used),
        outcome.candidates_dropped,
        tuple(repr(offset) for offset in outcome.best.proc_offsets),
    )


def _run_both(
    tasks,
    num_processors,
    expander_factory,
    evaluator_factory=LoadBalancingEvaluator,
    quantum=200.0,
    per_vertex_cost=0.05,
    loads=None,
    comm=None,
    max_candidates=None,
    max_iterations=None,
    preconsumed=0.0,
):
    """One workload through both kernels; assert bit-identical outcomes.

    Returns the scalar outcome so callers can assert the case actually
    exercised what it meant to (depth, prune counters, ...).
    """
    offsets = loads if loads is not None else (0.0,) * num_processors
    comm = comm if comm is not None else UniformCommunicationModel(40.0)
    outcomes = []
    budgets = []
    for search in (run_search, KERNEL.search):
        ctx = PhaseContext(
            tasks=list(tasks),
            num_processors=num_processors,
            comm=comm,
            phase_start=0.0,
            quantum=quantum,
            initial_offsets=offsets,
            evaluator=evaluator_factory(),
        )
        budget = VirtualTimeBudget(
            quantum=quantum, per_vertex_cost=per_vertex_cost
        )
        if preconsumed:
            budget.consume(preconsumed)
        outcomes.append(
            search(
                ctx,
                expander_factory(),
                budget,
                max_candidates=max_candidates,
                max_iterations=max_iterations,
            )
        )
        budgets.append((budget._vertices, repr(budget.used())))
    scalar, vectorized = outcomes
    assert _outcome_fingerprint(scalar) == _outcome_fingerprint(vectorized)
    assert budgets[0] == budgets[1]
    return scalar


EXPANDERS = (AssignmentOrientedExpander, SequenceOrientedExpander)


@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_empty_frontier(expander_factory) -> None:
    """An empty batch: the root is final, no expansions on either side."""
    outcome = _run_both([], 4, expander_factory)
    assert outcome.stats.complete
    assert outcome.stats.expansions <= 1
    assert outcome.best.depth == 0


@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_single_candidate(expander_factory) -> None:
    """One task, one processor: exactly one vertex either way."""
    tasks = [make_task(0, processing_time=10.0, deadline=500.0)]
    outcome = _run_both(tasks, 1, expander_factory)
    assert outcome.best.depth == 1
    assert outcome.stats.vertices_generated == 1


@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_all_infeasible_prune(expander_factory) -> None:
    """Deadlines below the phase bound: every probe prunes, dead end."""
    tasks = [
        make_task(tid, processing_time=20.0, deadline=0.5)
        for tid in range(6)
    ]
    outcome = _run_both(tasks, 3, expander_factory)
    assert outcome.best.depth == 0
    assert outcome.stats.feasibility_rejections > 0
    if expander_factory is AssignmentOrientedExpander:
        # The assignment expander scans (and prunes) every unscheduled
        # task; the sequence expander dead-ends on the first EDF task.
        assert outcome.stats.tasks_pruned == 6
    else:
        assert outcome.stats.dead_end


@pytest.mark.parametrize("evaluator_factory", EVALUATORS)
@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_max_offset_ties(expander_factory, evaluator_factory) -> None:
    """Identical tasks, zero comm, equal loads: every sibling ties.

    The stable argmin/argsort inside the vectorized kernel must resolve
    ties in generation order exactly like the scalar candidate list.
    """
    tasks = [
        make_task(tid, processing_time=10.0, deadline=400.0)
        for tid in range(8)
    ]
    outcome = _run_both(
        tasks,
        4,
        expander_factory,
        evaluator_factory,
        comm=ZeroCommunicationModel(),
    )
    assert outcome.best.depth == 8


@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_exhausted_budget_and_preconsumption(expander_factory) -> None:
    """Tight and partially consumed budgets truncate identically."""
    rng = random.Random(7)
    tasks = random_batch(rng, 30, 4)
    for per_vertex_cost, preconsumed in (
        (5.0, 0.0),
        (0.5, 150.0),
        (0.05, 199.9),
    ):
        _run_both(
            tasks,
            4,
            expander_factory,
            per_vertex_cost=per_vertex_cost,
            preconsumed=preconsumed,
        )


@pytest.mark.parametrize("max_candidates", [1, 2, 5])
@pytest.mark.parametrize("expander_factory", EXPANDERS)
def test_tiny_candidate_list_bounds(expander_factory, max_candidates) -> None:
    """Small CL caps force eviction; drop counts must match exactly."""
    rng = random.Random(11)
    tasks = random_batch(rng, 25, 3)
    outcome = _run_both(
        tasks, 3, expander_factory, max_candidates=max_candidates
    )
    assert outcome.stats.vertices_generated > 0


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("num_processors", [2, 8, 16])
def test_seeded_grid(seed: int, num_processors: int) -> None:
    """Random workloads across expanders x evaluators x machine sizes."""
    rng = random.Random(90_000 + seed)
    tasks = random_batch(rng, 20 + seed, num_processors)
    expander_factory = EXPANDERS[seed % 2]
    evaluator_factory = EVALUATORS[(seed + num_processors) % len(EVALUATORS)]
    _run_both(
        tasks,
        num_processors,
        expander_factory,
        evaluator_factory,
        quantum=(80.0, 200.0, 500.0)[seed % 3],
        loads=tuple(rng.uniform(0.0, 15.0) for _ in range(num_processors)),
        max_candidates=(None, 20, 4)[seed % 3],
        max_iterations=None if seed % 4 else 40,
    )


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    num_processors=st.sampled_from([2, 8, 16]),
    num_tasks=st.integers(min_value=0, max_value=30),
    expander_index=st.integers(min_value=0, max_value=1),
    evaluator_index=st.integers(min_value=0, max_value=3),
)
def test_property_scalar_equals_vectorized(
    seed, num_processors, num_tasks, expander_index, evaluator_index
) -> None:
    """Hypothesis: for any random workload, the kernels agree exactly."""
    rng = random.Random(seed)
    tasks = random_batch(rng, num_tasks, num_processors)
    _run_both(
        tasks,
        num_processors,
        EXPANDERS[expander_index],
        EVALUATORS[evaluator_index],
        loads=tuple(
            rng.uniform(0.0, 10.0) for _ in range(num_processors)
        ),
    )


def test_run_phase_accepts_kernel() -> None:
    """The phase loop (prefilter included) agrees across kernel spellings."""
    rng = random.Random(3)
    tasks = random_batch(rng, 30, 4)

    def fingerprint(kernel):
        result = run_phase(
            tasks=list(tasks),
            loads=(0.0, 1.0, 2.0, 3.0),
            now=0.0,
            quantum=200.0,
            comm=UniformCommunicationModel(40.0),
            expander=AssignmentOrientedExpander(),
            evaluator=LoadBalancingEvaluator(),
            kernel=kernel,
        )
        entries = tuple(
            (entry.task.task_id, entry.processor, repr(entry.scheduled_end))
            for entry in result.schedule
        )
        return entries, stats_fingerprint(result.stats), repr(result.time_used)

    baseline = fingerprint(None)
    assert fingerprint("scalar") == baseline
    assert fingerprint("vectorized") == baseline
    assert fingerprint("auto") == baseline
    assert fingerprint(get_kernel("vectorized")) == baseline
    assert fingerprint(KERNEL) == baseline


#: The search-scheduler golden cells (one-pass list schedulers never
#: enter the search kernel, so their goldens prove nothing here).
GOLDEN_SEARCH_CELLS = [
    ("rtsads", 3, 0.3, 2024),
    ("rtsads", 8, 0.5, 2024),
    ("dcols", 3, 0.3, 2024),
    ("dcols", 8, 0.5, 2024),
]


@pytest.mark.parametrize("scheduler,m,replication,seed", GOLDEN_SEARCH_CELLS)
def test_goldens_reproduced_with_vectorized_kernel(
    scheduler: str, m: int, replication: float, seed: int
) -> None:
    """Full simulated runs under ``kernel="vectorized"`` must regenerate
    the committed golden fixtures byte-for-byte."""
    path = GOLDEN_DIR / _golden_name(scheduler, m, replication, seed)
    assert path.exists(), f"golden fixture {path} missing"
    regenerated = _golden_document(
        scheduler, m, replication, seed, kernel="vectorized"
    )
    assert regenerated == path.read_text().rstrip("\n"), (
        f"vectorized kernel diverged from the golden schedule in {path.name};"
        " the kernels are bit-identical by contract, so this is a kernel bug,"
        " not a fixture to regenerate"
    )
