"""Tests for the figure-reproduction harness (small configurations)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ablation_cost,
    ablation_memory,
    ablation_quantum,
    ablation_representation,
    figure5,
    figure6,
    laxity_sweep,
    overhead_table,
    shard_curve,
)

TINY = ExperimentConfig.quick(num_transactions=40, runs=2, num_processors=4)


class TestFigure5:
    def test_structure(self):
        result = figure5(TINY, processors=(2, 4))
        assert result.figure.x_values == [2, 4]
        labels = [s.label for s in result.figure.series]
        assert labels == ["RT-SADS", "D-COLS"]
        assert len(result.significance) == 2

    def test_render_includes_table_and_chart(self):
        result = figure5(TINY, processors=(2, 3))
        text = result.render()
        assert "Figure 5" in text
        assert "RT-SADS" in text
        assert "#" in text  # chart bars

    def test_cells_keyed_by_scheduler_and_x(self):
        result = figure5(TINY, processors=(2,))
        assert ("rtsads", 2) in result.cells
        assert ("dcols", 2) in result.cells


class TestFigure6:
    def test_structure(self):
        result = figure6(TINY, replication_rates=(0.25, 1.0))
        assert result.figure.x_values == [0.25, 1.0]
        assert "Figure 6" in result.render()


class TestLaxitySweep:
    def test_one_sweep_per_slack_factor(self):
        result = laxity_sweep(
            TINY, slack_factors=(1.0, 3.0), processors=(2, 4)
        )
        assert set(result.sweeps) == {1.0, 3.0}
        text = result.render()
        assert "SF=1" in text and "SF=3" in text

    def test_looser_deadlines_never_hurt_on_average(self):
        result = laxity_sweep(
            TINY, slack_factors=(1.0, 3.0), processors=(4,),
            schedulers=("rtsads",),
        )
        tight = result.sweeps[1.0].figure.series[0].values[0]
        loose = result.sweeps[3.0].figure.series[0].values[0]
        assert loose >= tight


class TestShardCurve:
    def test_structure(self):
        result = shard_curve(TINY, processors=(2, 4), domains=(1, 2))
        assert result.figure.x_values == [2, 4]
        labels = [s.label for s in result.figure.series]
        assert labels == ["domains=1", "domains=2"]
        assert ("domains=1", 2) in result.cells
        assert ("domains=2", 4) in result.cells
        assert any("partition policy" in note for note in result.figure.notes)
        # runs >= 2 and two domain counts: the significance report exists.
        assert len(result.significance) == 2

    def test_render_mentions_the_architecture_axis(self):
        result = shard_curve(TINY, processors=(2,), domains=(1, 2))
        text = result.render()
        assert "Shard curve" in text
        assert "domains=2" in text

    def test_domains_exceeding_smallest_machine_rejected(self):
        with pytest.raises(ValueError, match="cannot partition"):
            shard_curve(TINY, processors=(2, 8), domains=(1, 4))

    def test_domain_counts_deduplicated_and_sorted(self):
        result = shard_curve(TINY, processors=(2,), domains=(2, 1, 2))
        labels = [s.label for s in result.figure.series]
        assert labels == ["domains=1", "domains=2"]


class TestOverhead:
    def test_rows_and_distortion(self):
        result = overhead_table(TINY)
        assert len(result.rows) == 2
        assert result.measured_per_vertex_seconds > 0
        text = result.render()
        assert "Scheduling cost" in text
        assert "distortion" in text


class TestAblations:
    def test_quantum_ablation_covers_policies(self):
        result = ablation_quantum(TINY)
        labels = [row[0] for row in result.rows]
        assert any("self-adjusting" in label for label in labels)
        assert any("fixed tiny" in label for label in labels)
        assert any("fixed long" in label for label in labels)
        assert len(result.rows) == 6

    def test_cost_ablation_covers_evaluators(self):
        result = ablation_cost(TINY)
        labels = [row[0] for row in result.rows]
        assert "load_balancing" in labels and "fifo" in labels

    def test_memory_ablation(self):
        result = ablation_memory(TINY, cl_bounds=(4, None))
        labels = [row[0] for row in result.rows]
        assert labels == ["4", "unbounded"]
        assert "memory" in result.render()
        # Depth-first phases barely revisit old candidates.
        assert result.rows[0][1] >= result.rows[1][1] - 10.0

    def test_representation_ablation(self):
        result = ablation_representation(TINY)
        labels = [row[0] for row in result.rows]
        assert labels == ["RT-SADS", "D-COLS"]
        text = result.render()
        assert "dead-end" in text
