"""Tests for the parallel sweep engine (experiments/sweep.py).

The suite covers the three contracts the engine exists for:

* determinism — the same cells aggregate to bit-identical results no
  matter the worker count or cache state (including the actual spawn
  pool, exercised once with a tiny workload);
* cache identity — any workload-field change invalidates cached cells,
  while execution knobs (jobs, cache_dir, resume) never do;
* resilience — torn or schema-mismatched cache files count as misses,
  never as errors.
"""

import dataclasses
import json

import pytest

from repro.experiments import ExperimentConfig, run_grid
from repro.experiments.runner import run_cell, run_once
from repro.experiments.sweep import (
    CACHE_SCHEMA_VERSION,
    CellRecord,
    PortPool,
    SweepCache,
    SweepCell,
    config_digest,
)

#: Small enough that a full grid stays under a second on one core.
TINY = dict(num_transactions=30, runs=2)


def tiny_config(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return ExperimentConfig.quick(**params)


class TestCellRecord:
    def test_round_trips_exactly_through_json(self):
        config = tiny_config(runs=1)
        report = run_once(config, "rtsads", config.seeds()[0])
        record = CellRecord.from_report(report, elapsed_seconds=0.125)
        payload = json.loads(json.dumps(record.as_dict()))
        rebuilt = CellRecord.from_dict(payload)
        # Bitwise equality, not approx: JSON floats round-trip via repr,
        # and byte-identical figure output depends on it.
        assert rebuilt == record

    def test_captures_the_aggregation_inputs(self):
        config = tiny_config(runs=1)
        report = run_once(config, "rtsads", config.seeds()[0])
        record = CellRecord.from_report(report)
        assert record.hit_percent == report.hit_percent
        assert record.makespan == report.makespan
        assert record.guaranteed_violations == report.guaranteed_violations
        assert record.backend == report.backend
        assert record.elapsed_seconds == 0.0


class TestConfigDigest:
    def test_stable_across_calls(self):
        config = tiny_config()
        assert config_digest(config) == config_digest(config)

    def test_every_workload_field_changes_the_digest(self):
        """Any change to any cache field must invalidate cached cells."""
        base = tiny_config()
        baseline = config_digest(base)
        bumped = {
            "num_transactions": 31,
            "slack_factor": 1.5,
            "num_subdatabases": 11,
            "records_per_subdb": 201,
            "num_attributes": 11,
            "domain_size": 21,
            "key_probability": 0.5,
            "num_processors": 9,
            "replication_rate": 0.4,
            "remote_cost": 81.0,
            "per_vertex_cost": 0.03,
            "runs": 3,
            "base_seed": 1999,
            "confidence": 0.95,
            "significance_level": 0.05,
            "backend": "cluster",
            "scheduler": "edf",
            "arrival": "poisson",
            "offered_load": 1.4,
            "admission_policy": "least-slack",
            "domains": 2,
            "partition_policy": "worst-fit",
            "kernel": "auto",
        }
        cache_fields = set(base.cache_fields())
        assert cache_fields == set(bumped), (
            "a new ExperimentConfig field joined cache_fields(); "
            "extend this test with a bumped value for it"
        )
        for name, value in bumped.items():
            changed = dataclasses.replace(base, **{name: value})
            assert config_digest(changed) != baseline, name

    def test_execution_fields_never_change_the_digest(self):
        base = tiny_config()
        tweaked = base.with_execution(
            jobs=8, cache_dir="elsewhere", resume=False
        )
        assert config_digest(tweaked) == config_digest(base)

    def test_with_execution_resume(self):
        resumed = tiny_config(cache_dir="somewhere").with_execution(resume=True)
        assert resumed.resume
        assert config_digest(resumed) == config_digest(tiny_config())


class TestSweepCache:
    def _record(self, **overrides):
        values = dict(
            scheduler_name="rtsads",
            seed=1998,
            backend="sim",
            hit_percent=75.0,
            dead_end_rate=0.1,
            mean_depth=3.0,
            mean_processors_touched=2.5,
            total_scheduling_time=10.0,
            makespan=100.0,
            guaranteed_violations=0,
            num_phases=4,
            wall_seconds=0.01,
        )
        values.update(overrides)
        return CellRecord(**values)

    def test_store_then_load(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = SweepCell(tiny_config(), "rtsads", 1998)
        record = self._record()
        cache.store(cell, record)
        assert cache.load(cell) == record

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = SweepCell(tiny_config(), "rtsads", 1998)
        assert cache.load(cell) is None

    def test_torn_file_is_a_miss_not_an_error(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = SweepCell(tiny_config(), "rtsads", 1998)
        path = cache.cell_path(cell)
        path.parent.mkdir(parents=True)
        path.write_text('{"schema": 1, "record": {"hit', encoding="utf-8")
        assert cache.load(cell) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = SweepCell(tiny_config(), "rtsads", 1998)
        cache.store(cell, self._record())
        payload = json.loads(cache.cell_path(cell).read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        cache.cell_path(cell).write_text(json.dumps(payload))
        assert cache.load(cell) is None

    def test_writes_a_config_manifest(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = SweepCell(tiny_config(), "rtsads", 1998)
        cache.store(cell, self._record())
        manifest = cache.cell_path(cell).parent / "config.json"
        fields = json.loads(manifest.read_text())
        assert fields["num_transactions"] == TINY["num_transactions"]
        assert "jobs" not in fields

    def test_different_configs_never_collide(self, tmp_path):
        cache = SweepCache(tmp_path)
        one = SweepCell(tiny_config(), "rtsads", 1998)
        two = SweepCell(tiny_config(slack_factor=2.0), "rtsads", 1998)
        assert cache.cell_path(one) != cache.cell_path(two)


class TestRunGrid:
    def test_matches_the_serial_runner_exactly(self, tmp_path):
        config = tiny_config()
        legacy = run_cell(config, "rtsads")
        swept = run_grid(
            [(config, "rtsads")], jobs=1, cache_dir=str(tmp_path)
        ).cells[0]
        assert swept.hit_percents == legacy.hit_percents
        assert swept.makespans == legacy.makespans
        assert swept.scheduling_times == legacy.scheduling_times
        assert swept.scheduled_but_missed == legacy.scheduled_but_missed

    def test_second_run_executes_nothing(self, tmp_path):
        config = tiny_config()
        first = run_grid([(config, "rtsads")], jobs=1, cache_dir=str(tmp_path))
        assert first.stats.executed == config.runs
        second = run_grid(
            [(config, "rtsads")], jobs=1, cache_dir=str(tmp_path)
        )
        assert second.stats.executed == 0
        assert second.stats.cached == config.runs
        assert second.cells[0].hit_percents == first.cells[0].hit_percents

    def test_resume_runs_only_missing_cells(self, tmp_path):
        config = tiny_config(runs=3)
        cache = SweepCache(tmp_path)
        run_grid([(config, "rtsads")], jobs=1, cache_dir=str(tmp_path))
        # Simulate an interrupted sweep: drop one cached cell.
        victim = SweepCell(config, "rtsads", config.seeds()[1])
        cache.cell_path(victim).unlink()
        resumed = run_grid(
            [(config, "rtsads")],
            jobs=1,
            cache_dir=str(tmp_path),
            resume=True,
        )
        assert resumed.stats.executed == 1
        assert resumed.stats.cached == 2

    def test_no_cache_dir_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_grid([(tiny_config(), "rtsads")], jobs=1, cache_dir=None)
        assert list(tmp_path.iterdir()) == []

    def test_execution_knobs_default_from_the_first_config(self, tmp_path):
        config = tiny_config(cache_dir=str(tmp_path))
        outcome = run_grid([(config, "rtsads")])
        assert outcome.stats.jobs == 1
        assert outcome.stats.executed == config.runs
        again = run_grid([(config, "rtsads")])
        assert again.stats.executed == 0

    def test_empty_specs(self):
        outcome = run_grid([])
        assert outcome.cells == []
        assert outcome.stats.total_cells == 0

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_grid([(tiny_config(), "rtsads")], jobs=0)

    def test_multi_spec_order_is_call_order(self, tmp_path):
        config = tiny_config()
        outcome = run_grid(
            [(config, "dcols"), (config, "rtsads")],
            jobs=1,
            cache_dir=str(tmp_path),
        )
        assert [cell.scheduler_name for cell in outcome.cells] == [
            "dcols",
            "rtsads",
        ]
        assert all(cell.config is config for cell in outcome.cells)


@pytest.mark.slow
class TestSpawnPool:
    """The real multiprocessing path: expensive, so one test covers it."""

    def test_pool_results_identical_to_serial(self, tmp_path):
        config = tiny_config()
        serial = run_grid([(config, "rtsads")], jobs=1, cache_dir=None)
        pooled = run_grid(
            [(config, "rtsads")],
            jobs=2,
            cache_dir=str(tmp_path),
        )
        assert pooled.stats.jobs == 2
        assert pooled.cells[0].hit_percents == serial.cells[0].hit_percents
        assert pooled.cells[0].makespans == serial.cells[0].makespans
        assert (
            pooled.cells[0].scheduling_times
            == serial.cells[0].scheduling_times
        )

    def test_seeds_identical_under_any_job_count(self):
        """The pool distributes config.seeds(); it never generates seeds."""
        config = tiny_config()
        serial = run_grid([(config, "rtsads")], jobs=1, cache_dir=None)
        pooled = run_grid([(config, "rtsads")], jobs=3, cache_dir=None)
        # Same per-seed values in the same order proves the same seeds ran
        # in the same positions regardless of worker count.
        assert pooled.cells[0].hit_percents == serial.cells[0].hit_percents
        assert pooled.cells[0].dead_end_rates == serial.cells[0].dead_end_rates


def _traced_grid(jobs, cache_dir=None, resume=False):
    """Run one tiny grid under fresh instrumentation; return (obs, outcome)."""
    from repro.observability import (
        OFF,
        Instrumentation,
        MemorySink,
        StructuredLogger,
        instrumented,
    )

    config = tiny_config()
    obs = Instrumentation(
        sink=MemorySink(), logger=StructuredLogger(level=OFF)
    )
    with instrumented(obs):
        outcome = run_grid(
            [(config, "rtsads")],
            jobs=jobs,
            cache_dir=cache_dir,
            resume=resume,
        )
    return obs, outcome


def _event_keys(sink):
    """Order-insensitive identity of every traced event (sorted multiset)."""
    return sorted(
        (
            event.get("event"),
            event.get("task_id"),
            event.get("transition"),
            event.get("name"),
            event.get("seed"),
        )
        for event in sink.events
        if event.get("event") in ("run_start", "run_end", "task", "span")
    )


class TestSweepTracing:
    """The spawn pool must not lose trace events or counter deltas."""

    @pytest.mark.slow
    def test_pool_emits_the_same_event_set_as_serial(self):
        """--trace-out --jobs N captures every cell's events; only the
        completion order may differ from --jobs 1."""
        serial_obs, _ = _traced_grid(jobs=1)
        pooled_obs, _ = _traced_grid(jobs=2)
        assert len(pooled_obs.sink.events) > 0
        assert _event_keys(pooled_obs.sink) == _event_keys(serial_obs.sink)

    @pytest.mark.slow
    def test_pool_cell_counters_match_serial(self):
        """Counter deltas captured in pool children equal the in-parent
        deltas of a serial run."""
        serial_obs, _ = _traced_grid(jobs=1)
        pooled_obs, _ = _traced_grid(jobs=2)
        serial_counters = serial_obs.cells[0]["counters"]
        pooled_counters = pooled_obs.cells[0]["counters"]
        assert serial_counters  # the run must actually move counters
        assert pooled_counters == serial_counters

    def test_cache_records_persist_counters(self, tmp_path):
        """Schema-v2 cache records carry the cell's counter deltas."""
        _traced_grid(jobs=1, cache_dir=str(tmp_path))
        record_files = list(tmp_path.glob("*/*-seed*.json"))
        assert record_files
        for path in record_files:
            payload = json.loads(path.read_text())
            assert payload["schema"] == CACHE_SCHEMA_VERSION
            assert payload["record"]["counters"]

    def test_cached_cells_report_the_same_counters(self, tmp_path):
        """A fully resumed sweep (zero executions) reports the same
        summed counters as the run that populated the cache."""
        first_obs, first = _traced_grid(jobs=1, cache_dir=str(tmp_path))
        second_obs, second = _traced_grid(
            jobs=1, cache_dir=str(tmp_path), resume=True
        )
        assert second.stats.executed == 0
        assert second.stats.cached == first.stats.executed
        assert (
            second_obs.cells[0]["counters"] == first_obs.cells[0]["counters"]
        )


@pytest.mark.slow
class TestClusterCells:
    """Live-cluster cells: never pooled, serialized on the port pool."""

    def test_cluster_cells_execute_and_cache(self, tmp_path):
        config = ExperimentConfig.quick(
            num_transactions=16,
            num_processors=2,
            slack_factor=3.0,
            runs=1,
            base_seed=7,
            backend="cluster",
        )
        # jobs=4 requested, but a cluster cell spawns its own processes
        # and binds a listener, so the engine must run it in the parent.
        out = run_grid([(config, "rtsads")], jobs=4, cache_dir=str(tmp_path))
        assert out.stats.executed == 1
        assert out.cells[0].config.backend == "cluster"
        again = run_grid(
            [(config, "rtsads")], jobs=4, cache_dir=str(tmp_path)
        )
        assert again.stats.executed == 0
        assert again.cells[0].hit_percents == out.cells[0].hit_percents


class TestRunnerDelegation:
    def test_run_cell_uses_the_cache_when_configured(self, tmp_path):
        config = tiny_config(cache_dir=str(tmp_path))
        first = run_cell(config, "rtsads")
        # The cache now holds every repetition; a second call must load
        # rather than recompute, which we observe via the manifest dir.
        digest_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(digest_dirs) == 1
        assert len(list(digest_dirs[0].glob("*-seed*.json"))) == config.runs
        second = run_cell(config, "rtsads")
        assert second.hit_percents == first.hit_percents

    def test_overrides_bypass_the_sweep_engine(self, tmp_path):
        """Ablation overrides are live objects: they must not be cached."""
        from repro.core.quantum import FixedQuantum

        config = tiny_config(cache_dir=str(tmp_path))
        run_cell(config, "rtsads", quantum_policy=FixedQuantum(5.0))
        assert list(tmp_path.iterdir()) == []


class TestPortPool:
    def test_lease_returns_and_restores_ports(self):
        pool = PortPool((5000, 5001))
        with pool.lease() as first:
            assert first == 5000
            with pool.lease() as second:
                assert second == 5001
        # Freed ports return to the back of the queue (FIFO reuse); the
        # inner lease released 5001 first.
        with pool.lease() as again:
            assert again == 5001

    def test_default_pool_hands_out_ephemeral_port_zero(self):
        with PortPool().lease() as port:
            assert port == 0

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            PortPool(())

    def test_blocks_until_a_port_frees(self):
        import threading

        pool = PortPool((7000,))
        order = []

        def worker():
            with pool.lease() as port:
                order.append(("worker", port))

        with pool.lease() as port:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=0.05)
            assert thread.is_alive(), "lease should block while held"
            order.append(("parent", port))
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert order == [("parent", 7000), ("worker", 7000)]


class TestConfigExecutionFields:
    def test_defaults_are_serial_and_uncached(self):
        config = ExperimentConfig.quick()
        assert config.jobs == 1
        assert config.cache_dir is None
        assert not config.resume

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig.quick(jobs=0)
        with pytest.raises(ValueError):
            ExperimentConfig.quick(resume=True)  # no cache_dir

    def test_with_execution_keeps_other_fields(self):
        base = ExperimentConfig.quick()
        tuned = base.with_execution(jobs=4, cache_dir="cache")
        assert tuned.jobs == 4
        assert tuned.cache_dir == "cache"
        assert tuned.num_transactions == base.num_transactions
        assert base.jobs == 1  # original unchanged
