"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import (
    _parse_domains,
    build_parser,
    config_from_args,
    main,
    shard_config_from_args,
)


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_paper_and_quick_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--paper", "--quick"])

    def test_defaults_to_quick_scale(self):
        args = build_parser().parse_args(["fig5"])
        config = config_from_args(args)
        assert config.num_transactions == 250

    def test_paper_scale(self):
        args = build_parser().parse_args(["fig5", "--paper"])
        config = config_from_args(args)
        assert config.num_transactions == 1000

    def test_overrides(self):
        args = build_parser().parse_args(
            [
                "fig6",
                "--runs", "2",
                "--transactions", "50",
                "--seed", "7",
                "--processors", "4",
                "--replication", "0.6",
                "--slack-factor", "2.0",
            ]
        )
        config = config_from_args(args)
        assert config.runs == 2
        assert config.num_transactions == 50
        assert config.base_seed == 7
        assert config.num_processors == 4
        assert config.replication_rate == 0.6
        assert config.slack_factor == 2.0


class TestShardingFlags:
    def test_shard_curve_is_a_known_experiment(self):
        args = build_parser().parse_args(["shard-curve"])
        assert args.experiment == "shard-curve"

    def test_single_domains_value_overrides_any_experiment(self):
        args = build_parser().parse_args(["fig5", "--domains", "2"])
        assert config_from_args(args).domains == 2

    def test_partition_policy_reaches_the_config(self):
        args = build_parser().parse_args(
            ["fig5", "--domains", "2", "--partition-policy", "worst-fit"]
        )
        assert config_from_args(args).partition_policy == "worst-fit"

    def test_unknown_partition_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fig5", "--partition-policy", "random"]
            )

    def test_domain_list_reserved_for_shard_curve(self):
        args = build_parser().parse_args(["fig5", "--domains", "1,2,4"])
        with pytest.raises(SystemExit, match="shard-curve"):
            config_from_args(args)

    def test_domain_list_accepted_for_shard_curve(self):
        args = build_parser().parse_args(
            ["shard-curve", "--domains", "1,2,4"]
        )
        # The list is a sweep axis, not a config override.
        assert config_from_args(args).domains == 1
        assert _parse_domains(args.domains) == (1, 2, 4)

    @pytest.mark.parametrize("bad", ["", "0", "two", "1,,2", "-1", "1,0"])
    def test_malformed_domain_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            _parse_domains(bad)

    def test_shard_config_applies_pressure_presets(self):
        args = build_parser().parse_args(["shard-curve"])
        config = shard_config_from_args(args)
        assert config.num_transactions == 500
        assert config.per_vertex_cost == pytest.approx(0.1)

    def test_explicit_transactions_beat_the_preset(self):
        args = build_parser().parse_args(
            ["shard-curve", "--transactions", "60"]
        )
        assert shard_config_from_args(args).num_transactions == 60


class TestMain:
    def test_runs_one_experiment(self, capsys):
        code = main(
            [
                "ablate-representation",
                "--quick",
                "--runs", "1",
                "--transactions", "30",
                "--processors", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RT-SADS" in out and "D-COLS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])


class TestObservabilityFlags:
    def test_verbose_and_quiet_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--verbose", "--quiet"])

    def test_no_flags_means_no_instrumentation(self):
        from repro.experiments.cli import build_instrumentation

        args = build_parser().parse_args(["fig5"])
        assert build_instrumentation(args) is None

    def test_verbose_enables_info_logging(self):
        from repro.observability import INFO
        from repro.experiments.cli import build_instrumentation

        args = build_parser().parse_args(["fig5", "--verbose"])
        obs = build_instrumentation(args)
        assert obs is not None and obs.enabled
        assert obs.logger.level == INFO
        obs.close()

    def test_trace_out_attaches_jsonl_sink(self, tmp_path):
        from repro.observability import JsonlSink
        from repro.experiments.cli import build_instrumentation

        path = tmp_path / "trace.jsonl"
        args = build_parser().parse_args(["fig5", "--trace-out", str(path)])
        obs = build_instrumentation(args)
        assert isinstance(obs.sink, JsonlSink)
        obs.close()
        assert path.exists()


class TestMainWithObservability:
    ARGS = [
        "ablate-representation",
        "--quick",
        "--runs", "1",
        "--transactions", "30",
        "--processors", "3",
    ]

    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.observability import read_jsonl

        path = tmp_path / "trace.jsonl"
        code = main(self.ARGS + ["--trace-out", str(path)])
        assert code == 0
        events = read_jsonl(path)
        assert events, "trace must not be empty"
        kinds = {e["event"] for e in events}
        assert {"run_start", "run_end", "span", "task"} <= kinds
        phase_spans = [
            e for e in events
            if e["event"] == "span" and e.get("name") == "phase"
        ]
        assert phase_spans
        for span in phase_spans:
            assert "quantum" in span
            assert "vertices_generated" in span
            assert "feasibility_rejections" in span

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "metrics.json"
        code = main(self.ARGS + ["--metrics-out", str(path)])
        assert code == 0
        document = json_module.loads(path.read_text())
        assert document["experiments"] == ["ablate-representation"]
        assert document["cells"], "per-cell summaries must be recorded"
        counters = document["metrics"]["counters"]
        assert any(k.startswith("scheduler_phases{") for k in counters)
        assert counters["runtime_runs"] > 0

    def test_observability_flags_leave_global_default_restored(
        self, tmp_path, capsys
    ):
        from repro.observability import get_instrumentation

        main(self.ARGS + ["--metrics-out", str(tmp_path / "m.json")])
        assert not get_instrumentation().enabled

    def test_default_run_has_no_observability_side_effects(
        self, tmp_path, capsys, monkeypatch
    ):
        # Also guards the sweep flags' caching policy: a plain serial
        # invocation must neither cache nor export anything.
        monkeypatch.chdir(tmp_path)
        code = main(list(self.ARGS))
        assert code == 0
        assert list(tmp_path.iterdir()) == []


class TestSweepFlags:
    def _execution(self, *argv):
        from repro.experiments.cli import sweep_execution_from_args

        return sweep_execution_from_args(build_parser().parse_args(argv))

    def test_defaults_serial_and_uncached(self):
        assert self._execution("fig5") == {
            "jobs": 1,
            "cache_dir": None,
            "resume": False,
        }

    def test_jobs_implies_default_cache(self):
        from repro.experiments.sweep import DEFAULT_CACHE_DIR

        execution = self._execution("fig5", "--jobs", "4")
        assert execution["jobs"] == 4
        assert execution["cache_dir"] == DEFAULT_CACHE_DIR

    def test_no_cache_wins_over_jobs(self):
        execution = self._execution("fig5", "--jobs", "4", "--no-cache")
        assert execution["cache_dir"] is None

    def test_explicit_cache_dir(self):
        execution = self._execution("fig5", "--cache-dir", "my/cache")
        assert execution["cache_dir"] == "my/cache"

    def test_resume_implies_default_cache(self):
        from repro.experiments.sweep import DEFAULT_CACHE_DIR

        execution = self._execution("fig5", "--resume")
        assert execution["resume"]
        assert execution["cache_dir"] == DEFAULT_CACHE_DIR

    def test_resume_and_no_cache_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--resume", "--no-cache"])

    def test_flags_reach_the_config(self):
        args = build_parser().parse_args(
            ["fig5", "--jobs", "2", "--cache-dir", "c", "--resume"]
        )
        config = config_from_args(args)
        assert config.jobs == 2
        assert config.cache_dir == "c"
        assert config.resume

    def test_export_requires_a_figure_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "ablate-representation",
                    "--quick",
                    "--export", str(tmp_path / "out.json"),
                ]
            )

    def test_export_writes_figure_json(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "fig5.json"
        code = main(
            [
                "fig5",
                "--quick",
                "--runs", "1",
                "--transactions", "30",
                "--no-cache",
                "--export", str(path),
            ]
        )
        assert code == 0
        document = json_module.loads(path.read_text())
        assert document["experiment"] == "fig5"
        labels = {s["label"] for s in document["figure"]["series"]}
        assert {"RT-SADS", "D-COLS"} <= labels

    def test_cached_rerun_exports_identical_bytes(self, tmp_path, capsys):
        argv = [
            "fig5",
            "--quick",
            "--runs", "1",
            "--transactions", "30",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(argv + ["--export", str(first)]) == 0
        assert main(argv + ["--resume", "--export", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
