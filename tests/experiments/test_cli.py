"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, config_from_args, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_paper_and_quick_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--paper", "--quick"])

    def test_defaults_to_quick_scale(self):
        args = build_parser().parse_args(["fig5"])
        config = config_from_args(args)
        assert config.num_transactions == 250

    def test_paper_scale(self):
        args = build_parser().parse_args(["fig5", "--paper"])
        config = config_from_args(args)
        assert config.num_transactions == 1000

    def test_overrides(self):
        args = build_parser().parse_args(
            [
                "fig6",
                "--runs", "2",
                "--transactions", "50",
                "--seed", "7",
                "--processors", "4",
                "--replication", "0.6",
                "--slack-factor", "2.0",
            ]
        )
        config = config_from_args(args)
        assert config.runs == 2
        assert config.num_transactions == 50
        assert config.base_seed == 7
        assert config.num_processors == 4
        assert config.replication_rate == 0.6
        assert config.slack_factor == 2.0


class TestMain:
    def test_runs_one_experiment(self, capsys):
        code = main(
            [
                "ablate-representation",
                "--quick",
                "--runs", "1",
                "--transactions", "30",
                "--processors", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RT-SADS" in out and "D-COLS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])
