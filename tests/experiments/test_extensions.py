"""Tests for the extension experiments."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ablation_interconnect,
    extension_failures,
    extension_load_sweep,
    extension_reclaiming,
    extension_write_mix,
)

TINY = ExperimentConfig.quick(num_transactions=40, runs=2, num_processors=4)


class TestReclaiming:
    def test_rows_and_invariants(self):
        result = extension_reclaiming(TINY)
        labels = [row[0] for row in result.rows]
        assert "worst-case (paper)" in labels
        assert any("first-match" in label for label in labels)
        rows = {row[0]: row for row in result.rows}
        assert rows["worst-case (paper)"][2] == 0.0
        assert rows["scaled 50%"][2] > 0.0
        # Early completion never reduces compliance.
        assert rows["scaled 50%"][1] >= rows["worst-case (paper)"][1] - 1e-9

    def test_render(self):
        text = extension_reclaiming(TINY).render()
        assert "Resource reclaiming" in text
        assert "reclaimed time" in text


class TestLoadSweep:
    def test_structure(self):
        result = extension_load_sweep(TINY, load_factors=(0.5, 1.5))
        assert [row[0] for row in result.rows] == [0.5, 1.5]
        assert len(result.rows[0]) == 3  # load + two schedulers

    def test_compliance_degrades_with_load(self):
        result = extension_load_sweep(
            TINY, load_factors=(0.3, 2.0), schedulers=("rtsads",)
        )
        light, heavy = result.rows[0][1], result.rows[1][1]
        assert light > heavy


class TestInterconnect:
    def test_structure_and_render(self):
        result = ablation_interconnect(TINY)
        assert len(result.rows) == 2
        labels = [row[0] for row in result.rows]
        assert any("wormhole" in label for label in labels)
        assert any("mesh" in label for label in labels)
        assert "Interconnect" in result.render()

    def test_custom_scheduler_list(self):
        result = ablation_interconnect(TINY, scheduler_names=("greedy_edf",))
        assert len(result.rows[0]) == 2


class TestWriteMix:
    def test_structure(self):
        result = extension_write_mix(TINY, write_fractions=(0.0, 0.4))
        assert [row[0] for row in result.rows] == [0.0, 0.4]
        assert "Read/write" in result.render()

    def test_pure_read_mix_matches_paper_setup(self):
        result = extension_write_mix(
            TINY, write_fractions=(0.0,), schedulers=("rtsads",)
        )
        assert 0.0 <= result.rows[0][1] <= 100.0

    def test_theorem_holds_with_writes(self):
        from repro.core import RTSADS, UniformCommunicationModel
        from repro.experiments.extensions import _build_database_workload
        from repro.simulator import simulate

        _, tasks, txns = _build_database_workload(
            TINY, TINY.base_seed, write_fraction=0.5
        )
        assert any(t.is_write for t in txns)
        comm = UniformCommunicationModel(TINY.remote_cost)
        result = simulate(
            RTSADS(comm, per_vertex_cost=TINY.per_vertex_cost),
            tasks,
            num_workers=TINY.num_processors,
            validate_phases=True,
        )
        assert result.trace.scheduled_but_missed() == []


class TestFailures:
    def test_structure(self):
        result = extension_failures(TINY, failure_counts=(0, 1))
        assert [row[0] for row in result.rows] == [0, 1]
        assert "Fail-stop" in result.render()

    def test_compliance_monotone_in_failures(self):
        result = extension_failures(
            TINY, failure_counts=(0, 2), schedulers=("rtsads",)
        )
        assert result.rows[0][1] >= result.rows[1][1] - 1.0

    def test_cannot_fail_whole_machine(self):
        with pytest.raises(ValueError):
            extension_failures(TINY, failure_counts=(TINY.num_processors,))


class TestFailureAccounting:
    """Property-style checks of the fail-stop rescheduling bookkeeping.

    A task surrendered by a crashing processor re-enters the batch and may
    be rescheduled on a survivor; across every seed the accounting must
    stay exact — one terminal state per task, no surrendered task counted
    both as a deadline miss and as a kept guarantee.
    """

    @pytest.mark.parametrize("seed", [1, 7, 23, 101, 2024])
    def test_no_double_counting_across_seeds(self, seed):
        from repro.core import RTSADS, UniformCommunicationModel
        from repro.experiments.extensions import _build_database_workload
        from repro.simulator import (
            STATUS_COMPLETED,
            STATUS_EXPIRED,
            STATUS_FAILED,
            simulate,
        )

        _, tasks, _ = _build_database_workload(TINY, seed)
        horizon = 10.0 * TINY.slack_factor * TINY.scan_cost
        comm = UniformCommunicationModel(TINY.remote_cost)
        result = simulate(
            RTSADS(comm, per_vertex_cost=TINY.per_vertex_cost),
            tasks,
            num_workers=TINY.num_processors,
            failures=[(horizon * 0.1, 0), (horizon * 0.2, 2)],
        )
        trace = result.trace

        completed = trace.completed()
        expired = trace.expired()
        failed = trace.failed()

        # Exactly one terminal state per task — a surrendered task ends up
        # completed (rescheduled in time), expired, or failed, never two.
        assert len(completed) + len(expired) + len(failed) == (
            trace.total_tasks()
        )
        ids = (
            [r.task_id for r in completed]
            + [r.task_id for r in expired]
            + [r.task_id for r in failed]
        )
        assert len(ids) == len(set(ids))
        for record in trace.records.values():
            assert record.status in (
                STATUS_COMPLETED, STATUS_EXPIRED, STATUS_FAILED,
            )

        # Hits live strictly inside the completed set: a failed or expired
        # task can never be counted as a kept guarantee.
        hits = [r for r in trace.records.values() if r.met_deadline]
        assert len(hits) <= len(completed)
        assert trace.deadline_hits() == len(hits)
        late = [r for r in completed if not r.met_deadline]
        assert len(hits) + len(late) == len(completed)

        # The theorem survives the crashes: anything RT-SADS scheduled and
        # that actually ran to completion met its deadline.  (Tasks lost
        # in flight are FAILED, not late.)
        assert trace.scheduled_but_missed() == []

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_failed_tasks_only_come_from_crashed_processors(self, seed):
        from repro.core import RTSADS, UniformCommunicationModel
        from repro.experiments.extensions import _build_database_workload
        from repro.simulator import simulate

        _, tasks, _ = _build_database_workload(TINY, seed)
        horizon = 10.0 * TINY.slack_factor * TINY.scan_cost
        comm = UniformCommunicationModel(TINY.remote_cost)
        result = simulate(
            RTSADS(comm, per_vertex_cost=TINY.per_vertex_cost),
            tasks,
            num_workers=TINY.num_processors,
            failures=[(horizon * 0.15, 1)],
        )
        for record in result.trace.failed():
            assert record.processor == 1


class TestCLIIntegration:
    @pytest.mark.parametrize(
        "name",
        [
            "reclaiming",
            "load-sweep",
            "ablate-interconnect",
            "write-mix",
            "failures",
        ],
    )
    def test_cli_runs_extensions(self, name, capsys):
        from repro.experiments.cli import main

        code = main(
            [
                name,
                "--quick",
                "--runs", "1",
                "--transactions", "30",
                "--processors", "3",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip()
