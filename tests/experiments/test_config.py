"""Tests for experiment configurations."""

import pytest

from repro.experiments import (
    PROCESSOR_SWEEP,
    REPLICATION_SWEEP,
    SLACK_FACTOR_SWEEP,
    ExperimentConfig,
)


class TestScales:
    def test_paper_defaults_match_section_51(self):
        config = ExperimentConfig.paper()
        assert config.num_transactions == 1000
        assert config.num_subdatabases == 10
        assert config.records_per_subdb == 1000
        assert config.num_attributes == 10
        assert config.runs == 10
        assert config.confidence == 0.99
        assert config.significance_level == 0.01

    def test_quick_preserves_frequency_invariant(self):
        """Mean key frequency (records / domain) stays at the paper's 10."""
        paper = ExperimentConfig.paper()
        quick = ExperimentConfig.quick()
        assert paper.records_per_subdb / paper.domain_size == 10
        assert quick.records_per_subdb / quick.domain_size == 10

    def test_quick_preserves_remote_cost_ratio(self):
        paper = ExperimentConfig.paper()
        quick = ExperimentConfig.quick()
        assert paper.remote_cost / paper.scan_cost == pytest.approx(
            quick.remote_cost / quick.scan_cost
        )

    def test_overrides(self):
        config = ExperimentConfig.quick(runs=5, num_processors=7)
        assert config.runs == 5
        assert config.num_processors == 7


class TestDerived:
    def test_total_records(self):
        assert ExperimentConfig.paper().total_records == 10_000

    def test_scan_cost(self):
        assert ExperimentConfig.paper().scan_cost == 1000.0

    def test_with_helpers_return_new_configs(self):
        base = ExperimentConfig.quick()
        assert base.with_processors(4).num_processors == 4
        assert base.with_replication(0.7).replication_rate == 0.7
        assert base.with_slack_factor(2.0).slack_factor == 2.0
        assert base.num_processors == 10  # unchanged

    def test_seeds_deterministic_and_distinct(self):
        config = ExperimentConfig.quick(runs=4)
        seeds = config.seeds()
        assert len(seeds) == 4
        assert len(set(seeds)) == 4
        assert config.seeds() == seeds


class TestSweeps:
    def test_processor_sweep_matches_paper(self):
        assert PROCESSOR_SWEEP[0] == 2
        assert PROCESSOR_SWEEP[-1] == 10

    def test_replication_sweep_matches_paper(self):
        assert REPLICATION_SWEEP[0] == 0.1
        assert REPLICATION_SWEEP[-1] == 1.0

    def test_slack_factor_sweep_matches_paper(self):
        assert SLACK_FACTOR_SWEEP == (1.0, 2.0, 3.0)


class TestValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_transactions=0)
        with pytest.raises(ValueError):
            ExperimentConfig(replication_rate=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(slack_factor=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(per_vertex_cost=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(runs=0)


class TestServiceFields:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.arrival == "burst"
        assert config.offered_load == 1.0
        assert config.admission_policy == "reject-newest"

    def test_with_helpers(self):
        config = ExperimentConfig()
        assert config.with_arrival("pareto").arrival == "pareto"
        assert config.with_offered_load(1.6).offered_load == 1.6
        assert (
            config.with_admission_policy("least-slack").admission_policy
            == "least-slack"
        )
        # Frozen: the originals are untouched.
        assert config.arrival == "burst"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(arrival="fractal")
        with pytest.raises(ValueError):
            ExperimentConfig(offered_load=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(admission_policy="lifo")

    def test_offered_load_sweep_has_points_astride_capacity(self):
        from repro.experiments.config import OFFERED_LOAD_SWEEP

        assert len(OFFERED_LOAD_SWEEP) >= 4
        assert min(OFFERED_LOAD_SWEEP) < 1.0 < max(OFFERED_LOAD_SWEEP)

    def test_service_fields_are_cache_relevant(self):
        """Two cells differing only in a service field must not share a
        cache entry, or load-curve grids would collapse to one point."""
        from repro.experiments.sweep import config_digest

        base = ExperimentConfig()
        assert config_digest(base) != config_digest(
            base.with_offered_load(1.6)
        )
        assert config_digest(base) != config_digest(
            base.with_admission_policy("least-slack")
        )
        assert config_digest(base) != config_digest(
            base.with_arrival("diurnal")
        )
