"""Tests for the experiment runner."""

import pytest

from repro.core import DCOLS, RTSADS, GreedyEDFScheduler, UniformCommunicationModel
from repro.core.quantum import FixedQuantum
from repro.experiments import (
    ExperimentConfig,
    build_scheduler,
    build_workload,
    run_cell,
    run_once,
)

TINY = ExperimentConfig.quick(
    num_transactions=40, runs=2, num_processors=3
)


class TestBuildScheduler:
    def setup_method(self):
        self.comm = UniformCommunicationModel(10.0)

    @pytest.mark.parametrize(
        "name,cls",
        [("rtsads", RTSADS), ("dcols", DCOLS),
         ("greedy_edf", GreedyEDFScheduler)],
    )
    def test_registry(self, name, cls):
        scheduler = build_scheduler(name, TINY, self.comm)
        assert isinstance(scheduler, cls)
        assert scheduler.per_vertex_cost == TINY.per_vertex_cost

    def test_quantum_policy_override(self):
        scheduler = build_scheduler(
            "rtsads", TINY, self.comm, quantum_policy=FixedQuantum(9.0)
        )
        assert isinstance(scheduler.quantum_policy, FixedQuantum)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_scheduler("bogus", TINY, self.comm)


class TestBuildWorkload:
    def test_workload_matches_config(self):
        database, tasks = build_workload(TINY, seed=1)
        assert len(tasks) == 40
        assert database.config.num_subdatabases == TINY.num_subdatabases
        assert database.placement.num_processors == 3

    def test_seed_controls_workload(self):
        _, a = build_workload(TINY, seed=1)
        _, b = build_workload(TINY, seed=1)
        _, c = build_workload(TINY, seed=2)
        assert [t.processing_time for t in a] == [t.processing_time for t in b]
        assert [t.processing_time for t in a] != [t.processing_time for t in c]


class TestRunOnce:
    def test_produces_valid_result(self):
        result = run_once(TINY, "rtsads", seed=1, validate_phases=True)
        assert result.trace.total_tasks() == 40
        assert result.trace.scheduled_but_missed() == []

    def test_deterministic(self):
        a = run_once(TINY, "dcols", seed=3)
        b = run_once(TINY, "dcols", seed=3)
        assert a.hit_ratio == b.hit_ratio


class TestRunCell:
    def test_aggregates_all_runs(self):
        cell = run_cell(TINY, "rtsads")
        assert len(cell.hit_percents) == 2
        assert 0.0 <= cell.mean_hit_percent <= 100.0
        assert cell.scheduled_but_missed == 0

    def test_confidence_interval_available(self):
        cell = run_cell(TINY, "rtsads")
        ci = cell.hit_ci()
        assert ci is not None
        assert ci.low <= cell.mean_hit_percent <= ci.high

    def test_stats_fields_populated(self):
        cell = run_cell(TINY, "dcols")
        assert len(cell.dead_end_rates) == 2
        assert len(cell.makespans) == 2
        assert cell.mean_depth >= 0.0
