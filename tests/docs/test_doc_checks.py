"""Documentation quality gates, run as part of the normal test suite.

Two structural checks over the repo's docs (both also wired into CI's
``docs`` job as standalone scripts):

* every public definition in ``repro.runtime`` and ``repro.experiments``
  carries a docstring (``tools/check_docstrings.py``);
* every relative markdown link in the README and docs resolves,
  including heading anchors (``tools/check_links.py``).
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def load_tool(name: str):
    """Import a tools/ script as a module (tools/ is not a package)."""
    path = REPO_ROOT / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestDocstrings:
    def test_runtime_and_experiments_are_fully_documented(self):
        checker = load_tool("check_docstrings")
        scope = [str(REPO_ROOT / root) for root in checker.DEFAULT_SCOPE]
        problems = checker.check_paths(scope)
        assert problems == [], "\n".join(problems)


class TestMarkdownLinks:
    def test_all_relative_links_resolve(self):
        checker = load_tool("check_links")
        problems = []
        for document in checker.default_documents():
            problems.extend(checker.check_file(document))
        rendered = [
            f"{source}: '{target}': {reason}"
            for source, target, reason in problems
        ]
        assert rendered == [], "\n".join(rendered)

    def test_architecture_doc_exists_and_is_linked(self):
        """The architecture overview must exist and be reachable from README."""
        architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
        assert architecture.exists()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme

    def test_no_stale_report_names_in_docs(self):
        """The old report class names may appear only as documented aliases.

        ``SimulationResult`` and ``ClusterReport`` were unified into
        ``RunReport``; docs must present the new name, mentioning the old
        ones only when explaining the deprecation aliases.
        """
        checker = load_tool("check_links")
        for document in checker.default_documents():
            if document.name == "ISSUE.md":  # task spec, not documentation
                continue
            text = document.read_text(encoding="utf-8")
            for paragraph in text.split("\n\n"):
                if (
                    "SimulationResult" in paragraph
                    or "ClusterReport" in paragraph
                ):
                    lowered = paragraph.lower()
                    assert "alias" in lowered or "deprecat" in lowered, (
                        f"{document}: stale report name outside an alias "
                        f"note: {paragraph.strip()[:200]!r}"
                    )
