"""Property and unit tests for scheduling-domain partitioning.

The sharded runtime's correctness leans on three partition invariants —
totality (every worker in exactly one domain), the size cap (workload-
aware policies never starve a domain), and determinism (assignments are
pure functions of their inputs, so they can sit inside cache digests).
The property battery drives all three across every policy with
hypothesis-generated workloads.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import (
    PARTITION_POLICIES,
    DomainAssignment,
    partition_workers,
)
from repro.core.task import Task


def _task(task_id: int, affinity, processing: float = 10.0) -> Task:
    return Task(
        task_id=task_id,
        processing_time=processing,
        arrival_time=0.0,
        deadline=1000.0,
        affinity=frozenset(affinity),
    )


# One strategy for (m, k, workload): k never exceeds m, affinities stay
# inside the worker id space, costs stay positive.
_instances = st.integers(min_value=1, max_value=12).flatmap(
    lambda m: st.tuples(
        st.just(m),
        st.integers(min_value=1, max_value=m),
        st.lists(
            st.tuples(
                st.sets(
                    st.integers(min_value=0, max_value=m - 1), max_size=4
                ),
                st.floats(
                    min_value=0.1,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=12,
        ),
    )
)


def _build_tasks(spec) -> list:
    return [
        _task(index, affinity, processing)
        for index, (affinity, processing) in enumerate(spec)
    ]


class TestPartitionProperties:
    @settings(max_examples=120, deadline=None)
    @given(instance=_instances, policy=st.sampled_from(PARTITION_POLICIES))
    def test_every_worker_in_exactly_one_domain(self, instance, policy):
        m, k, spec = instance
        assignment = partition_workers(m, k, policy, tasks=_build_tasks(spec))
        placed = [w for members in assignment.domains for w in members]
        assert sorted(placed) == list(range(m))
        assert len(placed) == len(set(placed))
        assert assignment.num_domains == k
        assert all(assignment.workers_of(d) for d in range(k))

    @settings(max_examples=120, deadline=None)
    @given(instance=_instances, policy=st.sampled_from(PARTITION_POLICIES))
    def test_packing_respects_the_size_cap(self, instance, policy):
        """No domain exceeds ceil(m / k) workers under any policy."""
        m, k, spec = instance
        assignment = partition_workers(m, k, policy, tasks=_build_tasks(spec))
        cap = math.ceil(m / k)
        sizes = [len(members) for members in assignment.domains]
        assert max(sizes) <= cap
        # The hash baseline is additionally balanced to within one.
        if policy == "hash":
            assert max(sizes) - min(sizes) <= 1

    @settings(max_examples=120, deadline=None)
    @given(instance=_instances, policy=st.sampled_from(PARTITION_POLICIES))
    def test_deterministic_per_input(self, instance, policy):
        """Equal (m, k, workload) always yields the identical assignment."""
        m, k, spec = instance
        tasks = _build_tasks(spec)
        first = partition_workers(m, k, policy, tasks=tasks)
        second = partition_workers(m, k, policy, tasks=list(tasks))
        assert first == second
        assert hash(first) == hash(second)

    @settings(max_examples=60, deadline=None)
    @given(instance=_instances, policy=st.sampled_from(PARTITION_POLICIES))
    def test_route_targets_a_real_domain(self, instance, policy):
        m, k, spec = instance
        tasks = _build_tasks(spec)
        assignment = partition_workers(m, k, policy, tasks=tasks)
        for task in tasks:
            assert 0 <= assignment.route(task) < k


class TestWorstFit:
    def test_heavy_workers_spread_across_domains(self):
        # Two heavy attractors must not share a domain when two domains
        # are available: worst-fit places heaviest-first on the lightest.
        tasks = [
            _task(0, {0}, processing=100.0),
            _task(1, {1}, processing=90.0),
            _task(2, {2}, processing=1.0),
            _task(3, {3}, processing=1.0),
        ]
        assignment = partition_workers(4, 2, "worst-fit", tasks=tasks)
        heavy_domains = {assignment.domain_of(0), assignment.domain_of(1)}
        assert len(heavy_domains) == 2

    def test_no_workload_degrades_to_balanced_split(self):
        assignment = partition_workers(6, 3, "worst-fit", tasks=None)
        assert sorted(len(g) for g in assignment.domains) == [2, 2, 2]


class TestAffinity:
    def test_co_occurring_workers_share_a_domain(self):
        # Workers {0, 1} and {2, 3} each co-occur heavily; the clustering
        # must keep both pairs whole so their tasks pay no remote cost.
        tasks = [
            _task(i, {0, 1}, processing=50.0) for i in range(4)
        ] + [
            _task(4 + i, {2, 3}, processing=50.0) for i in range(4)
        ]
        assignment = partition_workers(4, 2, "affinity", tasks=tasks)
        assert assignment.domain_of(0) == assignment.domain_of(1)
        assert assignment.domain_of(2) == assignment.domain_of(3)
        assert assignment.domain_of(0) != assignment.domain_of(2)


class TestRouting:
    def test_affinity_plurality_wins(self):
        assignment = DomainAssignment(
            num_workers=4, policy="hash", domains=((0, 1), (2, 3))
        )
        task = _task(9, {1, 2, 3})
        assert assignment.route(task) == 1

    def test_plurality_tie_breaks_to_lowest_domain(self):
        assignment = DomainAssignment(
            num_workers=4, policy="hash", domains=((0, 1), (2, 3))
        )
        task = _task(9, {1, 3})
        assert assignment.route(task) == 0

    def test_empty_affinity_hashes_on_task_id(self):
        assignment = DomainAssignment(
            num_workers=4, policy="hash", domains=((0, 1), (2, 3))
        )
        assert assignment.route(_task(5, set())) == 1
        assert assignment.route(_task(6, set())) == 0


class TestAssignmentValidation:
    def test_duplicate_worker_rejected(self):
        with pytest.raises(ValueError, match="appears in domains"):
            DomainAssignment(
                num_workers=3, policy="hash", domains=((0, 1), (1, 2))
            )

    def test_missing_worker_rejected(self):
        with pytest.raises(ValueError, match="not assigned"):
            DomainAssignment(
                num_workers=4, policy="hash", domains=((0, 1), (2,))
            )

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DomainAssignment(
                num_workers=2, policy="hash", domains=((0, 1), ())
            )

    def test_unsorted_members_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            DomainAssignment(
                num_workers=2, policy="hash", domains=((1, 0),)
            )

    def test_as_dict_is_plain_data(self):
        assignment = partition_workers(4, 2, "hash")
        view = assignment.as_dict()
        assert view["num_workers"] == 4
        assert view["policy"] == "hash"
        assert view["domains"] == [[0, 2], [1, 3]]


class TestPartitionGuards:
    def test_more_domains_than_workers_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            partition_workers(2, 3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            partition_workers(4, 2, "round-robin")

    @pytest.mark.parametrize("m,k", [(0, 1), (4, 0), (-1, 1)])
    def test_nonpositive_counts_rejected(self, m, k):
        with pytest.raises(ValueError):
            partition_workers(m, k)
