"""Tests for scheduler-module helpers and bounded-memory search."""

import pytest

from repro.core import (
    RTSADS,
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    PhaseContext,
    UniformCommunicationModel,
    VirtualTimeBudget,
    ZeroCommunicationModel,
    make_task,
    run_search,
)
from repro.core.scheduler import (
    DEFAULT_PHASE_OVERHEAD_FACTOR,
    DEFAULT_QUANTUM_CAP_FACTOR,
    phase_overhead,
    useful_search_time,
)


class TestBudgetHelpers:
    def test_useful_search_time_formula(self):
        assert useful_search_time(
            batch_size=100, num_processors=4, per_vertex_cost=0.1,
            cap_factor=3.0,
        ) == pytest.approx(3.0 * 0.1 * 4 * 100)

    def test_useful_search_time_floors_empty_batch(self):
        assert useful_search_time(0, 4, 0.1, 3.0) == pytest.approx(1.2)

    def test_phase_overhead_formula(self):
        assert phase_overhead(
            batch_size=50, num_processors=10, per_vertex_cost=0.02,
            overhead_factor=1.0,
        ) == pytest.approx(0.02 * 60)

    def test_phase_overhead_disabled(self):
        assert phase_overhead(50, 10, 0.02, 0.0) == 0.0

    def test_defaults_positive(self):
        assert DEFAULT_QUANTUM_CAP_FACTOR > 0
        assert DEFAULT_PHASE_OVERHEAD_FACTOR >= 0


class TestBoundedCandidateListSearch:
    """The host's scheduling memory is finite; a tiny CL must still work."""

    def _ctx(self, n=30, m=3):
        tasks = [
            make_task(i, processing_time=10.0, deadline=5_000.0)
            for i in range(n)
        ]
        return PhaseContext(
            tasks=tasks,
            num_processors=m,
            comm=ZeroCommunicationModel(),
            phase_start=0.0,
            quantum=500.0,
            initial_offsets=(0.0,) * m,
            evaluator=LoadBalancingEvaluator(),
        )

    def test_search_valid_with_tiny_cl(self):
        ctx = self._ctx()
        outcome = run_search(
            ctx,
            AssignmentOrientedExpander(),
            VirtualTimeBudget(500.0, 0.01),
            max_candidates=2,
        )
        assert outcome.best.depth > 0
        schedule = outcome.extract_schedule(ctx)
        schedule.validate(
            ctx.comm, dict(enumerate(ctx.initial_offsets)), ctx.phase_end_bound
        )

    def test_dropped_candidates_reported(self):
        ctx = self._ctx()
        outcome = run_search(
            ctx,
            AssignmentOrientedExpander(),
            VirtualTimeBudget(500.0, 0.01),
            max_candidates=2,
        )
        assert outcome.candidates_dropped > 0

    def test_scheduler_level_cl_bound(self):
        comm = UniformCommunicationModel(10.0)
        scheduler = RTSADS(comm, max_candidates=4)
        tasks = [
            make_task(i, processing_time=10.0, deadline=5_000.0)
            for i in range(20)
        ]
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], 0.0)
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        result.validate(comm)
        assert len(result.schedule) > 0


class TestPublicAPI:
    """Top-level package exports the documented surface."""

    def test_top_level_exports(self):
        import repro

        for name in (
            "RTSADS",
            "DCOLS",
            "GreedyEDFScheduler",
            "MyopicScheduler",
            "RandomScheduler",
            "Task",
            "TaskSet",
            "UniformCommunicationModel",
            "Schedule",
            "Scheduler",
            "SelfAdjustingQuantum",
            "SimulationResult",
            "simulate",
            "make_task",
        ):
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_lists_are_accurate(self):
        import repro
        import repro.core
        import repro.database
        import repro.experiments
        import repro.metrics
        import repro.runtime
        import repro.simulator
        import repro.workload

        for module in (
            repro,
            repro.core,
            repro.database,
            repro.experiments,
            repro.metrics,
            repro.runtime,
            repro.simulator,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
