"""Tests for the batch lifecycle (paper Section 4)."""

import pytest

from repro.core import Batch, make_task


def _task(task_id, p=10.0, d=100.0):
    return make_task(task_id, processing_time=p, deadline=d)


class TestBatchMembership:
    def test_starts_empty(self):
        batch = Batch()
        assert len(batch) == 0
        assert not batch

    def test_add_arrivals(self):
        batch = Batch()
        added = batch.add_arrivals([_task(0), _task(1)])
        assert added == 2
        assert len(batch) == 2
        assert 0 in batch and 1 in batch

    def test_duplicate_arrival_rejected(self):
        batch = Batch([_task(0)])
        with pytest.raises(ValueError):
            batch.add_arrivals([_task(0)])

    def test_edf_order(self):
        batch = Batch([_task(0, d=300.0), _task(1, d=100.0), _task(2, d=200.0)])
        assert [t.task_id for t in batch.edf_order()] == [1, 2, 0]

    def test_tasks_in_admission_order(self):
        batch = Batch([_task(3), _task(1)])
        assert [t.task_id for t in batch.tasks()] == [3, 1]


class TestBatchLifecycle:
    def test_scheduled_tasks_removed(self):
        """Paper: tasks in Batch(j) do not enter Batch(j+1) if scheduled."""
        batch = Batch([_task(0), _task(1), _task(2)])
        removed = batch.remove_scheduled([0, 2])
        assert {t.task_id for t in removed} == {0, 2}
        assert len(batch) == 1
        assert batch.total_scheduled == 2
        assert 0 not in batch and 2 not in batch

    def test_remove_unknown_raises(self):
        batch = Batch([_task(0)])
        with pytest.raises(KeyError):
            batch.remove_scheduled([5])

    def test_drop_expired_uses_paper_predicate(self):
        batch = Batch([
            _task(0, p=10.0, d=100.0),
            _task(1, p=10.0, d=50.0),
        ])
        expired = batch.drop_expired(now=45.0)  # 10 + 45 > 50
        assert [t.task_id for t in expired] == [1]
        assert len(batch) == 1
        assert batch.total_expired == 1

    def test_drop_expired_boundary_keeps_task(self):
        batch = Batch([_task(0, p=10.0, d=50.0)])
        assert batch.drop_expired(now=40.0) == []

    def test_phase_counter(self):
        batch = Batch()
        assert batch.phase_index == 0
        assert batch.advance_phase() == 1
        assert batch.advance_phase() == 2

    def test_full_cycle_invariant(self):
        """admitted == scheduled + expired + remaining at all times."""
        batch = Batch([_task(i, d=100.0 + i) for i in range(10)])
        batch.remove_scheduled([0, 1, 2])
        batch.drop_expired(now=95.0)
        assert (
            batch.total_admitted
            == batch.total_scheduled + batch.total_expired + len(batch)
        )


class TestBatchWithdraw:
    def test_withdraw_removes_without_counting_scheduled(self):
        batch = Batch([_task(0), _task(1), _task(2)])
        withdrawn = batch.withdraw([1])
        assert [t.task_id for t in withdrawn] == [1]
        assert len(batch) == 2
        assert batch.total_withdrawn == 1
        assert batch.total_scheduled == 0

    def test_withdraw_tolerates_missing_ids(self):
        batch = Batch([_task(0)])
        withdrawn = batch.withdraw([0, 99])
        assert [t.task_id for t in withdrawn] == [0]
        assert batch.total_withdrawn == 1

    def test_withdrawn_task_can_rearrive(self):
        """A shed submission's id leaves the batch entirely."""
        batch = Batch([_task(0)])
        batch.withdraw([0])
        assert 0 not in batch
        batch.add_arrivals([_task(0)])
        assert 0 in batch
