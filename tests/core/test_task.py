"""Tests for the task model."""

import pytest

from repro.core import Task, TaskSet, TaskValidationError, make_task


class TestTaskValidation:
    def test_accepts_well_formed_task(self):
        task = make_task(1, processing_time=5.0, deadline=100.0)
        assert task.task_id == 1
        assert task.processing_time == 5.0

    def test_rejects_zero_processing_time(self):
        with pytest.raises(TaskValidationError):
            make_task(1, processing_time=0.0, deadline=10.0)

    def test_rejects_negative_processing_time(self):
        with pytest.raises(TaskValidationError):
            make_task(1, processing_time=-1.0, deadline=10.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(TaskValidationError):
            make_task(1, processing_time=1.0, deadline=10.0, arrival_time=-1.0)

    def test_rejects_deadline_at_arrival(self):
        with pytest.raises(TaskValidationError):
            make_task(1, processing_time=1.0, deadline=5.0, arrival_time=5.0)

    def test_rejects_deadline_before_arrival(self):
        with pytest.raises(TaskValidationError):
            make_task(1, processing_time=1.0, deadline=3.0, arrival_time=5.0)

    def test_affinity_coerced_to_frozenset(self):
        task = make_task(1, processing_time=1.0, deadline=10.0, affinity=[0, 1])
        assert isinstance(task.affinity, frozenset)
        assert task.affinity == frozenset({0, 1})

    def test_task_is_hashable(self):
        task = make_task(1, processing_time=1.0, deadline=10.0, affinity=[2])
        assert task in {task}


class TestTaskProperties:
    def test_has_affinity(self):
        task = make_task(1, processing_time=1.0, deadline=10.0, affinity=[0, 2])
        assert task.has_affinity(0)
        assert task.has_affinity(2)
        assert not task.has_affinity(1)

    def test_slack_at_arrival(self):
        task = make_task(1, processing_time=10.0, deadline=100.0)
        assert task.slack(0.0) == 90.0

    def test_slack_shrinks_with_time(self):
        task = make_task(1, processing_time=10.0, deadline=100.0)
        assert task.slack(50.0) == 40.0

    def test_slack_can_be_negative(self):
        task = make_task(1, processing_time=10.0, deadline=100.0)
        assert task.slack(95.0) == -5.0

    def test_laxity_is_relative(self):
        task = make_task(1, processing_time=10.0, deadline=100.0)
        assert task.laxity() == 10.0

    def test_laxity_uses_arrival(self):
        task = make_task(
            1, processing_time=10.0, deadline=120.0, arrival_time=20.0
        )
        assert task.laxity() == 10.0

    def test_is_expired_matches_paper_predicate(self):
        # Predicate: p_i + t_c > d_i
        task = make_task(1, processing_time=10.0, deadline=100.0)
        assert not task.is_expired(90.0)  # 10 + 90 == 100, still viable
        assert task.is_expired(90.0001)


class TestTaskSet:
    def test_length_and_iteration(self, simple_tasks):
        task_set = TaskSet(simple_tasks)
        assert len(task_set) == 4
        assert [t.task_id for t in task_set] == [0, 1, 2, 3]

    def test_rejects_duplicate_ids_at_construction(self):
        tasks = [
            make_task(1, processing_time=1.0, deadline=10.0),
            make_task(1, processing_time=2.0, deadline=20.0),
        ]
        with pytest.raises(TaskValidationError):
            TaskSet(tasks)

    def test_add_rejects_duplicate(self, simple_tasks):
        task_set = TaskSet(simple_tasks)
        with pytest.raises(TaskValidationError):
            task_set.add(make_task(0, processing_time=1.0, deadline=10.0))

    def test_add_appends(self):
        task_set = TaskSet()
        task_set.add(make_task(9, processing_time=1.0, deadline=10.0))
        assert len(task_set) == 1

    def test_by_deadline_is_edf_order(self):
        tasks = [
            make_task(0, processing_time=1.0, deadline=30.0),
            make_task(1, processing_time=1.0, deadline=10.0),
            make_task(2, processing_time=1.0, deadline=20.0),
        ]
        ordered = TaskSet(tasks).by_deadline()
        assert [t.task_id for t in ordered] == [1, 2, 0]

    def test_by_deadline_breaks_ties_by_id(self):
        tasks = [
            make_task(5, processing_time=1.0, deadline=10.0),
            make_task(2, processing_time=1.0, deadline=10.0),
        ]
        ordered = TaskSet(tasks).by_deadline()
        assert [t.task_id for t in ordered] == [2, 5]

    def test_by_arrival(self):
        tasks = [
            make_task(0, processing_time=1.0, deadline=30.0, arrival_time=5.0),
            make_task(1, processing_time=1.0, deadline=30.0, arrival_time=2.0),
        ]
        ordered = TaskSet(tasks).by_arrival()
        assert [t.task_id for t in ordered] == [1, 0]

    def test_total_processing_time(self, simple_tasks):
        assert TaskSet(simple_tasks).total_processing_time() == 50.0

    def test_arrived_by(self):
        tasks = [
            make_task(0, processing_time=1.0, deadline=30.0, arrival_time=0.0),
            make_task(1, processing_time=1.0, deadline=30.0, arrival_time=9.0),
        ]
        task_set = TaskSet(tasks)
        assert [t.task_id for t in task_set.arrived_by(5.0)] == [0]
        assert len(task_set.arrived_by(9.0)) == 2

    def test_min_laxity(self):
        tasks = [
            make_task(0, processing_time=10.0, deadline=100.0),  # laxity 10
            make_task(1, processing_time=10.0, deadline=30.0),  # laxity 3
        ]
        assert TaskSet(tasks).min_laxity() == 3.0

    def test_min_laxity_empty_raises(self):
        with pytest.raises(TaskValidationError):
            TaskSet().min_laxity()

    def test_ids(self, simple_tasks):
        assert TaskSet(simple_tasks).ids() == [0, 1, 2, 3]

    def test_contains(self, simple_tasks):
        task_set = TaskSet(simple_tasks)
        assert simple_tasks[0] in task_set
