"""Tests for the scheduling-phase driver."""

import pytest

from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    ZeroCommunicationModel,
    make_task,
    run_phase,
)


def _run(tasks, loads, quantum, now=0.0, comm=None, expander=None):
    return run_phase(
        tasks=tasks,
        loads=loads,
        now=now,
        quantum=quantum,
        comm=comm or ZeroCommunicationModel(),
        expander=expander or AssignmentOrientedExpander(),
        evaluator=LoadBalancingEvaluator(),
        per_vertex_cost=0.01,
    )


class TestRunPhase:
    def test_schedules_feasible_batch_completely(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(6)
        ]
        result = _run(tasks, loads=[0.0, 0.0], quantum=100.0)
        assert len(result.schedule) == 6
        assert result.stats.complete

    def test_phase_end_not_after_bound(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(50)
        ]
        result = _run(tasks, loads=[0.0], quantum=2.0)
        assert result.time_used <= result.quantum
        assert result.phase_end <= result.phase_end_bound + 1e-12

    def test_schedule_validates_against_phase(self, comm):
        tasks = [
            make_task(i, processing_time=10.0, deadline=400.0, affinity=[0])
            for i in range(8)
        ]
        result = _run(tasks, loads=[20.0, 5.0], quantum=30.0, comm=comm)
        result.validate(comm)

    def test_projected_offsets_respect_initial_loads(self):
        tasks = [make_task(0, processing_time=10.0, deadline=10_000.0)]
        result = _run(tasks, loads=[100.0, 0.0], quantum=30.0)
        assert result.initial_offsets == (70.0, 0.0)
        # Load balancing puts the task on the idle processor.
        assert result.schedule.entries[0].processor == 1

    def test_prefilter_excludes_hopeless_tasks(self):
        tasks = [
            make_task(0, processing_time=100.0, deadline=105.0),
            make_task(1, processing_time=10.0, deadline=10_000.0),
        ]
        result = _run(tasks, loads=[0.0], quantum=50.0)
        assert result.schedule.task_ids() == {1}

    def test_min_phase_time_floor(self):
        # Pre-filter leaves an empty working set; phase still consumes time.
        tasks = [make_task(0, processing_time=100.0, deadline=105.0)]
        result = _run(tasks, loads=[0.0], quantum=50.0)
        assert result.time_used > 0.0

    def test_empty_batch(self):
        result = _run([], loads=[0.0, 0.0], quantum=10.0)
        assert len(result.schedule) == 0

    def test_deadline_ties_broken_deterministically(self):
        tasks = [
            make_task(5, processing_time=10.0, deadline=1_000.0),
            make_task(2, processing_time=10.0, deadline=1_000.0),
        ]
        first = _run(tasks, loads=[0.0], quantum=100.0)
        second = _run(list(reversed(tasks)), loads=[0.0], quantum=100.0)
        assert [e.task.task_id for e in first.schedule] == [
            e.task.task_id for e in second.schedule
        ]

    def test_sequence_expander_round_robin_assignment(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(4)
        ]
        result = _run(
            tasks,
            loads=[0.0, 0.0],
            quantum=100.0,
            expander=SequenceOrientedExpander(),
        )
        processors = [e.processor for e in result.schedule.entries]
        assert processors == [0, 1, 0, 1]

    def test_quantum_zero_rejected_by_context(self):
        with pytest.raises(ValueError):
            _run([], loads=[0.0], quantum=-1.0)
