"""Budget boundary tests: no vertex expands after the quantum is exhausted.

The paper charges every generated vertex against the phase quantum
``Q_s(j)``; the edge case is a quantum that is an *exact multiple* of the
per-vertex cost, where the budget lands precisely on the boundary.  The
virtual budget used to accumulate ``n * cost`` one charge at a time, which
compounds a float rounding error per charge — depending on the charge
pattern the total could land just below ``quantum - EPSILON`` and admit
one extra expansion (the off-by-one these tests pin down).  The fix counts
vertices as an integer and converts with a single multiplication, making
``used()`` independent of how the same total was charged.
"""

from __future__ import annotations

import pytest

from repro.core import search as search_module
from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    PhaseContext,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    VirtualTimeBudget,
    WallClockBudget,
    make_task,
    run_search,
)


def _ctx(m: int = 4, n: int = 40) -> PhaseContext:
    """Generous deadlines: every EDF-front task is feasible everywhere, so
    each expansion is exactly one probe charging exactly ``m`` vertices."""
    tasks = [
        make_task(i, processing_time=1.0, deadline=100_000.0,
                  affinity=frozenset(range(m)))
        for i in range(n)
    ]
    return PhaseContext(
        tasks=tasks,
        num_processors=m,
        comm=UniformCommunicationModel(0.5),
        phase_start=0.0,
        quantum=0.0,  # informational here; budgets are passed explicitly
        initial_offsets=(0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


class ChargeAfterExhaustionGuard(VirtualTimeBudget):
    """Fails the test if any vertex is charged after exhaustion."""

    def charge(self, vertices: int) -> None:
        assert not self.exhausted(), (
            f"charged {vertices} vertices after the quantum was exhausted "
            f"(used={self.used()!r}, quantum={self.quantum!r})"
        )
        super().charge(vertices)


class FakeClockBudget(WallClockBudget):
    """Wall-clock budget on a virtual clock: each charged vertex advances
    the patched ``perf_counter`` by a fixed amount, making the real-time
    boundary as deterministic as the virtual one."""

    def __init__(self, quantum_seconds: float, per_vertex_seconds: float,
                 clock: list) -> None:
        super().__init__(quantum_seconds)
        self.per_vertex_seconds = per_vertex_seconds
        self._clock = clock

    def charge(self, vertices: int) -> None:
        assert not self.exhausted(), (
            f"charged {vertices} vertices after wall-clock exhaustion "
            f"(used={self.used()!r}, quantum={self.quantum!r})"
        )
        super().charge(vertices)
        self._clock[0] += vertices * self.per_vertex_seconds


class TestVirtualBudgetBoundary:
    def test_used_is_independent_of_charge_partitioning(self):
        """The off-by-one's root cause: accumulate-per-charge makes
        ``used()`` depend on how a total was split.  20 charges of 1 must
        equal 1 charge of 20, bit for bit."""
        one_at_a_time = VirtualTimeBudget(quantum=2.0, per_vertex_cost=0.1)
        for _ in range(20):
            one_at_a_time.charge(1)
        all_at_once = VirtualTimeBudget(quantum=2.0, per_vertex_cost=0.1)
        all_at_once.charge(20)
        assert one_at_a_time.used() == all_at_once.used()
        # Both sides of the boundary agree too.
        assert one_at_a_time.exhausted() and all_at_once.exhausted()

    def test_exhausts_exactly_at_quantum_not_before(self):
        budget = VirtualTimeBudget(quantum=2.0, per_vertex_cost=0.25)
        for _ in range(7):
            budget.charge(1)
            assert not budget.exhausted()
        budget.charge(1)  # used == 8 * 0.25 == 2.0, exactly the quantum
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_consumed_time_shares_the_same_boundary(self):
        budget = VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.25)
        budget.charge(2)
        budget.consume(0.5)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    @pytest.mark.parametrize("expander_factory", [
        AssignmentOrientedExpander,
        SequenceOrientedExpander,
    ])
    def test_search_never_expands_past_exact_quantum(self, expander_factory):
        """Quantum = exact multiple of a full expansion's charge: the search
        must stop on the boundary, not one expansion past it."""
        m = 4
        per_vertex = 0.25
        expansions = 6
        quantum = expansions * m * per_vertex  # 6.0, exactly representable
        budget = ChargeAfterExhaustionGuard(
            quantum=quantum, per_vertex_cost=per_vertex
        )
        outcome = run_search(_ctx(m=m), expander_factory(), budget)
        assert budget.used() == quantum
        assert outcome.stats.vertices_generated == expansions * m
        assert outcome.stats.expansions == expansions

    def test_search_with_prime_quantum_stops_at_last_whole_expansion(self):
        """A quantum that is *not* a multiple of the expansion charge: the
        search stops after the last expansion that fits."""
        m = 4
        per_vertex = 0.25  # one expansion costs 1.0
        budget = ChargeAfterExhaustionGuard(
            quantum=6.5, per_vertex_cost=per_vertex
        )
        outcome = run_search(_ctx(m=m), AssignmentOrientedExpander(), budget)
        # 6 expansions cost 6.0 < 6.5; a seventh would have been charged
        # only because 6.0 is not exhausted — and 7.0 > 6.5 overruns by the
        # paper's accepted partial-expansion margin, never a full one.
        assert outcome.stats.expansions == 7
        assert budget.used() == 7.0
        assert budget.exhausted()


class TestWallClockBudgetBoundary:
    def _patched_clock(self, monkeypatch):
        clock = [100.0]
        monkeypatch.setattr(
            search_module.time, "perf_counter", lambda: clock[0]
        )
        return clock

    def test_exhausts_when_clock_hits_quantum_exactly(self, monkeypatch):
        clock = self._patched_clock(monkeypatch)
        budget = WallClockBudget(quantum_seconds=5.0)
        budget.charge(1)  # starts the clock at 100.0
        clock[0] = 104.999
        assert not budget.exhausted()
        clock[0] = 105.0  # used() == quantum: the boundary itself
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    @pytest.mark.parametrize("expander_factory", [
        AssignmentOrientedExpander,
        SequenceOrientedExpander,
    ])
    def test_search_never_expands_past_exact_quantum(
        self, monkeypatch, expander_factory
    ):
        clock = self._patched_clock(monkeypatch)
        m = 4
        per_vertex = 0.25
        expansions = 6
        budget = FakeClockBudget(
            quantum_seconds=expansions * m * per_vertex,
            per_vertex_seconds=per_vertex,
            clock=clock,
        )
        outcome = run_search(_ctx(m=m), expander_factory(), budget)
        assert budget.used() == budget.quantum
        assert outcome.stats.vertices_generated == expansions * m
        assert outcome.stats.expansions == expansions
