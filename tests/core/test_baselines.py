"""Tests for the greedy baseline schedulers."""

import pytest

from repro.core import (
    GreedyEDFScheduler,
    MyopicScheduler,
    RandomScheduler,
    UniformCommunicationModel,
    make_task,
)


@pytest.fixture
def tasks():
    return [
        make_task(0, processing_time=10.0, deadline=60.0, affinity=[0]),
        make_task(1, processing_time=10.0, deadline=500.0, affinity=[1]),
        make_task(2, processing_time=10.0, deadline=400.0, affinity=[0, 1]),
    ]


def _phase(scheduler, tasks, loads=(0.0, 0.0), now=0.0):
    quantum = scheduler.plan_quantum(tasks, list(loads), now)
    return scheduler.schedule_phase(tasks, list(loads), now, quantum)


class TestGreedyEDF:
    def test_schedules_in_edf_order(self, comm, tasks):
        result = _phase(GreedyEDFScheduler(comm), tasks)
        assert [e.task.task_id for e in result.schedule] == [0, 2, 1]

    def test_picks_earliest_finishing_processor(self, comm):
        tasks = [make_task(0, processing_time=10.0, deadline=900.0,
                           affinity=[0, 1])]
        result = _phase(GreedyEDFScheduler(comm), tasks, loads=(50.0, 5.0))
        assert result.schedule.entries[0].processor == 1

    def test_prefers_affine_processor_when_comm_costly(self, comm):
        tasks = [make_task(0, processing_time=10.0, deadline=900.0,
                           affinity=[0])]
        # P1 is less loaded but remote costs 50.
        result = _phase(GreedyEDFScheduler(comm), tasks, loads=(20.0, 0.0))
        assert result.schedule.entries[0].processor == 0

    def test_schedule_is_deadline_safe(self, comm, tasks):
        result = _phase(GreedyEDFScheduler(comm), tasks)
        result.validate(comm)

    def test_skips_infeasible_without_backtracking(self, comm):
        tasks = [
            make_task(0, processing_time=50.0, deadline=5_000.0, affinity=[0]),
            make_task(1, processing_time=50.0, deadline=56.0, affinity=[0]),
        ]
        result = _phase(GreedyEDFScheduler(comm), tasks)
        # Task 1 (EDF first) fits alone; task 0 fits behind it.
        assert result.schedule.task_ids() == {0, 1}


class TestMyopic:
    def test_schedules_within_window(self, comm, tasks):
        result = _phase(MyopicScheduler(comm, window=2), tasks)
        assert len(result.schedule) == 3
        result.validate(comm)

    def test_window_validation(self, comm):
        with pytest.raises(ValueError):
            MyopicScheduler(comm, window=0)
        with pytest.raises(ValueError):
            MyopicScheduler(comm, weight=-1.0)

    def test_heuristic_weight_changes_selection(self, comm):
        # Task 0 has the earlier deadline but must wait on loaded P0 (remote
        # execution misses its deadline); task 1 can start immediately on
        # P1.  Weight 0 picks by deadline; a large weight by earliest start.
        tasks = [
            make_task(0, processing_time=10.0, deadline=60.0, affinity=[0]),
            make_task(1, processing_time=10.0, deadline=310.0, affinity=[1]),
        ]
        loads = [40.0, 0.0]
        by_deadline = MyopicScheduler(
            comm, weight=0.0, phase_overhead_factor=0.0
        ).schedule_phase(tasks, loads, 0.0, quantum=1.0)
        by_start = MyopicScheduler(
            comm, weight=100.0, phase_overhead_factor=0.0
        ).schedule_phase(tasks, loads, 0.0, quantum=1.0)
        assert by_deadline.schedule.entries[0].task.task_id == 0
        assert by_start.schedule.entries[0].task.task_id == 1

    def test_discards_head_when_window_infeasible(self, comm):
        # Task 0 passes the optimistic pre-filter (1 + 10 <= 12) but is
        # infeasible on both loaded processors; the myopic window must
        # discard it to reach task 1.
        tasks = [
            make_task(0, processing_time=10.0, deadline=12.0, affinity=[0, 1]),
            make_task(1, processing_time=10.0, deadline=900.0, affinity=[0]),
        ]
        scheduler = MyopicScheduler(comm, window=1, phase_overhead_factor=0.0)
        result = scheduler.schedule_phase(
            tasks, [5.0, 5.0], 0.0, quantum=1.0
        )
        assert result.schedule.task_ids() == {1}
        assert result.stats.backtracks >= 1


class TestRandom:
    def test_deterministic_under_seed(self, comm, tasks):
        first = _phase(RandomScheduler(comm, seed=5), tasks)
        scheduler = RandomScheduler(comm, seed=5)
        scheduler.reset()
        second = _phase(scheduler, tasks)
        assert [e.task.task_id for e in first.schedule] == [
            e.task.task_id for e in second.schedule
        ]

    def test_only_feasible_assignments(self, comm):
        tasks = [
            make_task(i, processing_time=10.0, deadline=80.0, affinity=[0])
            for i in range(10)
        ]
        result = _phase(RandomScheduler(comm, seed=1), tasks)
        result.validate(comm)

    def test_reset_restores_stream(self, comm, tasks):
        scheduler = RandomScheduler(comm, seed=9)
        first = _phase(scheduler, tasks)
        scheduler.reset()
        second = _phase(scheduler, tasks)
        assert [e.processor for e in first.schedule] == [
            e.processor for e in second.schedule
        ]


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", [GreedyEDFScheduler, MyopicScheduler,
                                     RandomScheduler])
    def test_respects_quantum_budget(self, comm, cls):
        scheduler = cls(comm, per_vertex_cost=1.0)
        tasks = [
            make_task(i, processing_time=10.0, deadline=100_000.0)
            for i in range(100)
        ]
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, 10.0)
        assert result.time_used <= result.quantum + 1e-9
        assert len(result.schedule) < 100

    @pytest.mark.parametrize("cls", [GreedyEDFScheduler, MyopicScheduler,
                                     RandomScheduler])
    def test_prefilter_drops_hopeless(self, comm, cls):
        scheduler = cls(comm)
        tasks = [make_task(0, processing_time=100.0, deadline=102.0)]
        result = scheduler.schedule_phase(tasks, [0.0], 0.0, 10.0)
        assert len(result.schedule) == 0
