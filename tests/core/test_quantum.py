"""Tests for the quantum allocation policies (paper Figure 3)."""

import pytest

from repro.core import (
    FixedQuantum,
    LoadOnlyQuantum,
    SelfAdjustingQuantum,
    SlackOnlyQuantum,
    get_quantum_policy,
    make_task,
    min_load,
    min_slack,
)


class TestTerms:
    def test_min_slack_over_batch(self):
        batch = [
            make_task(0, processing_time=10.0, deadline=100.0),  # slack 90
            make_task(1, processing_time=50.0, deadline=80.0),  # slack 30
        ]
        assert min_slack(batch, now=0.0) == 30.0

    def test_min_slack_uses_current_time(self):
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert min_slack(batch, now=50.0) == 40.0

    def test_min_slack_floors_at_zero(self):
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert min_slack(batch, now=95.0) == 0.0

    def test_min_slack_empty_batch(self):
        assert min_slack([], now=0.0) == 0.0

    def test_min_load(self):
        assert min_load([30.0, 10.0, 20.0]) == 10.0
        assert min_load([]) == 0.0


class TestSelfAdjustingQuantum:
    def test_takes_max_of_terms(self):
        policy = SelfAdjustingQuantum()
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]  # slack 90
        assert policy.quantum(batch, loads=[10.0, 20.0], now=0.0) == 90.0
        assert policy.quantum(batch, loads=[500.0, 200.0], now=0.0) == 200.0

    def test_idle_processor_gives_slack_term(self):
        policy = SelfAdjustingQuantum()
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert policy.quantum(batch, loads=[0.0, 0.0], now=0.0) == 90.0

    def test_min_quantum_floor(self):
        policy = SelfAdjustingQuantum(min_quantum=5.0)
        batch = [make_task(0, processing_time=10.0, deadline=11.0)]
        assert policy.quantum(batch, loads=[0.0], now=0.0) == 5.0

    def test_max_quantum_ceiling(self):
        policy = SelfAdjustingQuantum(max_quantum=50.0)
        batch = [make_task(0, processing_time=10.0, deadline=10_000.0)]
        assert policy.quantum(batch, loads=[0.0], now=0.0) == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfAdjustingQuantum(min_quantum=0.0)
        with pytest.raises(ValueError):
            SelfAdjustingQuantum(min_quantum=10.0, max_quantum=5.0)


class TestAblationPolicies:
    def test_slack_only_ignores_loads(self):
        policy = SlackOnlyQuantum()
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert policy.quantum(batch, loads=[9_999.0], now=0.0) == 90.0

    def test_load_only_ignores_slack(self):
        policy = LoadOnlyQuantum()
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert policy.quantum(batch, loads=[40.0, 60.0], now=0.0) == 40.0

    def test_fixed_quantum_is_constant(self):
        policy = FixedQuantum(25.0)
        batch = [make_task(0, processing_time=10.0, deadline=100.0)]
        assert policy.quantum(batch, loads=[1e6], now=0.0) == 25.0
        assert policy.quantum([], loads=[], now=99.0) == 25.0

    def test_fixed_quantum_validation(self):
        with pytest.raises(ValueError):
            FixedQuantum(0.0)


class TestFactory:
    def test_names(self):
        assert isinstance(
            get_quantum_policy("self_adjusting"), SelfAdjustingQuantum
        )
        assert isinstance(get_quantum_policy("slack_only"), SlackOnlyQuantum)
        assert isinstance(get_quantum_policy("load_only"), LoadOnlyQuantum)
        assert isinstance(get_quantum_policy("fixed", value=5.0), FixedQuantum)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_quantum_policy("nope")
