"""Tests for the assignment- vs sequence-oriented expanders."""

import pytest

from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    PhaseContext,
    SearchStats,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    VirtualTimeBudget,
    ZeroCommunicationModel,
    get_expander,
    make_root,
    make_task,
    run_search,
)


def _ctx(tasks, m=2, quantum=1000.0, comm=None, offsets=None):
    return PhaseContext(
        tasks=sorted(tasks, key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=comm or ZeroCommunicationModel(),
        phase_start=0.0,
        quantum=quantum,
        initial_offsets=offsets or (0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


def _budget():
    return VirtualTimeBudget(quantum=10_000.0, per_vertex_cost=0.001)


class TestAssignmentOrientedExpander:
    def test_branches_on_processors(self):
        tasks = [make_task(0, processing_time=10.0, deadline=10_000.0)]
        ctx = _ctx(tasks, m=3)
        expansion = AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert len(expansion.successors) == 3
        assert {v.processor for v in expansion.successors} == {0, 1, 2}
        assert all(v.batch_index == 0 for v in expansion.successors)

    def test_selects_edf_first_task(self):
        tasks = [
            make_task(0, processing_time=10.0, deadline=9_000.0),
            make_task(1, processing_time=10.0, deadline=2_000.0),
        ]
        ctx = _ctx(tasks, m=2)  # quantum 1000, so both tasks are feasible
        expansion = AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        # ctx.tasks is EDF sorted, so index 0 is the d=2000 task.
        chosen = ctx.tasks[expansion.successors[0].batch_index]
        assert chosen.deadline == 2_000.0

    def test_filters_infeasible_processors(self):
        comm = UniformCommunicationModel(remote_cost=500.0)
        tasks = [
            make_task(0, processing_time=10.0, deadline=100.0, affinity=[1])
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0, comm=comm)
        expansion = AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert [v.processor for v in expansion.successors] == [1]

    def test_skips_hopeless_task_and_prunes_subtree(self):
        tasks = [
            # EDF-first but infeasible everywhere under quantum 50.
            make_task(0, processing_time=60.0, deadline=100.0),
            make_task(1, processing_time=10.0, deadline=10_000.0),
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0)
        expansion = AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert expansion.successors
        child = expansion.successors[0]
        assert ctx.tasks[child.batch_index].task_id == 1
        # The hopeless task's bit is pruned into the subtree mask.
        assert child.scheduled_mask & 1 == 1

    def test_charges_budget_for_infeasible_probes(self):
        tasks = [make_task(0, processing_time=60.0, deadline=100.0)]
        ctx = _ctx(tasks, m=4, quantum=50.0)
        budget = _budget()
        AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, budget, SearchStats()
        )
        assert budget.used() == pytest.approx(4 * 0.001)

    def test_exhaustive_flag_when_all_probed(self):
        tasks = [make_task(0, processing_time=60.0, deadline=100.0)]
        ctx = _ctx(tasks, m=2, quantum=50.0)
        expansion = AssignmentOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert not expansion.successors
        assert expansion.exhaustive

    def test_not_exhaustive_when_probe_capped(self):
        tasks = [
            make_task(i, processing_time=60.0, deadline=100.0) for i in range(3)
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0)
        expansion = AssignmentOrientedExpander(max_task_probes=2).successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert not expansion.successors
        assert not expansion.exhaustive

    def test_max_task_probes_validation(self):
        with pytest.raises(ValueError):
            AssignmentOrientedExpander(max_task_probes=0)


class TestSequenceOrientedExpander:
    def test_branches_on_tasks(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(3)
        ]
        ctx = _ctx(tasks, m=2)
        expansion = SequenceOrientedExpander(beam_width=3).successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert len(expansion.successors) == 3
        assert all(v.processor == 0 for v in expansion.successors)
        assert {v.batch_index for v in expansion.successors} == {0, 1, 2}

    def test_round_robin_processor_per_level(self):
        expander = SequenceOrientedExpander()
        assert expander.processor_at(0, 4) == 0
        assert expander.processor_at(1, 4) == 1
        assert expander.processor_at(4, 4) == 0

    def test_start_processor_offset(self):
        expander = SequenceOrientedExpander(start_processor=2)
        assert expander.processor_at(0, 4) == 2
        assert expander.processor_at(3, 4) == 1

    def test_beam_limits_lookahead(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(10)
        ]
        ctx = _ctx(tasks, m=2)
        budget = _budget()
        expansion = SequenceOrientedExpander(beam_width=4).successors(
            make_root(ctx.initial_offsets), ctx, budget, SearchStats()
        )
        assert len(expansion.successors) == 4
        assert budget.used() == pytest.approx(4 * 0.001)

    def test_default_beam_is_processor_count(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(10)
        ]
        ctx = _ctx(tasks, m=3)
        expansion = SequenceOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert len(expansion.successors) == 3

    def test_never_exhaustive(self):
        """A failed level cannot certify a maximal schedule."""
        tasks = [
            make_task(0, processing_time=10.0, deadline=100.0, affinity=[1])
        ]
        comm = UniformCommunicationModel(remote_cost=500.0)
        ctx = _ctx(tasks, m=2, quantum=50.0, comm=comm)
        # Level 0 considers P0, where the task is infeasible.
        expansion = SequenceOrientedExpander().successors(
            make_root(ctx.initial_offsets), ctx, _budget(), SearchStats()
        )
        assert not expansion.successors
        assert not expansion.exhaustive

    def test_dead_end_against_affinity(self):
        """Low affinity on the level's processor dead-ends the search."""
        comm = UniformCommunicationModel(remote_cost=500.0)
        tasks = [
            make_task(i, processing_time=10.0, deadline=100.0, affinity=[1])
            for i in range(4)
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0, comm=comm)
        outcome = run_search(
            ctx, SequenceOrientedExpander(), VirtualTimeBudget(50.0, 0.001)
        )
        # Level 0 = P0: every task infeasible there -> immediate dead end.
        assert outcome.stats.dead_end
        assert outcome.best.depth == 0

    def test_assignment_representation_survives_same_workload(self):
        comm = UniformCommunicationModel(remote_cost=500.0)
        tasks = [
            make_task(i, processing_time=10.0, deadline=100.0, affinity=[1])
            for i in range(4)
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0, comm=comm)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(50.0, 0.001)
        )
        assert outcome.best.depth > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceOrientedExpander(beam_width=0)
        with pytest.raises(ValueError):
            SequenceOrientedExpander(start_processor=-1)


class TestGetExpander:
    def test_factory_names(self):
        assert isinstance(
            get_expander("assignment"), AssignmentOrientedExpander
        )
        assert isinstance(get_expander("sequence"), SequenceOrientedExpander)

    def test_factory_passes_options(self):
        expander = get_expander("sequence", beam_width=7, start_processor=3)
        assert expander.beam_width == 7
        assert expander.start_processor == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_expander("bogus")
