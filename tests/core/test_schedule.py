"""Tests for schedules and schedule entries."""

import pytest

from repro.core import (
    Schedule,
    ScheduleEntry,
    UniformCommunicationModel,
    make_task,
)


def _entry(task_id, processor, p=10.0, comm=0.0, end=None, deadline=1000.0,
           affinity=(0, 1)):
    task = make_task(
        task_id, processing_time=p, deadline=deadline, affinity=affinity
    )
    return ScheduleEntry(
        task=task,
        processor=processor,
        communication_cost=comm,
        scheduled_end=end if end is not None else p + comm,
    )


class TestScheduleEntry:
    def test_total_cost(self):
        entry = _entry(0, 0, p=10.0, comm=5.0)
        assert entry.total_cost == 15.0

    def test_scheduled_start(self):
        entry = _entry(0, 0, p=10.0, comm=5.0, end=40.0)
        assert entry.scheduled_start == 25.0


class TestSchedule:
    def test_append_and_iterate(self):
        schedule = Schedule([_entry(0, 0), _entry(1, 1)])
        assert len(schedule) == 2
        assert [e.task.task_id for e in schedule] == [0, 1]

    def test_rejects_duplicate_task(self):
        schedule = Schedule([_entry(0, 0)])
        with pytest.raises(ValueError):
            schedule.append(_entry(0, 1))

    def test_truthiness(self):
        assert not Schedule()
        assert Schedule([_entry(0, 0)])

    def test_task_ids(self):
        schedule = Schedule([_entry(0, 0), _entry(3, 1)])
        assert schedule.task_ids() == {0, 3}

    def test_processors(self):
        schedule = Schedule([_entry(0, 0), _entry(1, 1), _entry(2, 1)])
        assert schedule.processors() == {0, 1}

    def test_sequence_for_preserves_order(self):
        first = _entry(0, 1, p=10.0, end=10.0)
        second = _entry(1, 1, p=5.0, end=15.0)
        schedule = Schedule([first, second])
        assert [e.task.task_id for e in schedule.sequence_for(1)] == [0, 1]
        assert schedule.sequence_for(9) == []

    def test_load_per_processor(self):
        schedule = Schedule([
            _entry(0, 0, p=10.0),
            _entry(1, 0, p=5.0, end=15.0),
            _entry(2, 1, p=7.0),
        ])
        assert schedule.load_per_processor() == {0: 15.0, 1: 7.0}

    def test_makespan(self):
        schedule = Schedule([_entry(0, 0, end=10.0), _entry(1, 1, end=25.0)])
        assert schedule.makespan() == 25.0

    def test_makespan_empty(self):
        assert Schedule().makespan() == 0.0

    def test_is_complete_for(self):
        schedule = Schedule([_entry(0, 0), _entry(1, 1)])
        assert schedule.is_complete_for([0, 1])
        assert not schedule.is_complete_for([0, 1, 2])


class TestScheduleValidate:
    def setup_method(self):
        self.comm = UniformCommunicationModel(remote_cost=50.0)

    def test_valid_schedule_passes(self):
        entries = [
            _entry(0, 0, p=10.0, comm=0.0, end=10.0),
            _entry(1, 0, p=5.0, comm=0.0, end=15.0),
        ]
        schedule = Schedule(entries)
        schedule.validate(self.comm, {0: 0.0}, delivery_bound=20.0)

    def test_initial_load_offsets_sequence(self):
        entries = [_entry(0, 0, p=10.0, comm=0.0, end=40.0)]
        Schedule(entries).validate(self.comm, {0: 30.0}, delivery_bound=20.0)

    def test_detects_wrong_cost(self):
        # Task affine with {0,1} but entry claims a communication cost.
        entries = [_entry(0, 0, p=10.0, comm=50.0, end=60.0)]
        with pytest.raises(ValueError, match="cost"):
            Schedule(entries).validate(self.comm, {0: 0.0}, delivery_bound=1.0)

    def test_detects_wrong_cumulative_end(self):
        entries = [
            _entry(0, 0, p=10.0, comm=0.0, end=10.0),
            _entry(1, 0, p=5.0, comm=0.0, end=99.0),
        ]
        with pytest.raises(ValueError, match="scheduled_end"):
            Schedule(entries).validate(self.comm, {0: 0.0}, delivery_bound=1.0)

    def test_detects_deadline_violation(self):
        entries = [_entry(0, 0, p=10.0, comm=0.0, end=10.0, deadline=15.0)]
        with pytest.raises(ValueError, match="deadline"):
            Schedule(entries).validate(
                self.comm, {0: 0.0}, delivery_bound=6.0
            )

    def test_remote_execution_validates_with_comm_cost(self):
        task = make_task(0, processing_time=10.0, deadline=1000.0, affinity=[1])
        entry = ScheduleEntry(
            task=task, processor=0, communication_cost=50.0, scheduled_end=60.0
        )
        Schedule([entry]).validate(self.comm, {0: 0.0}, delivery_bound=10.0)
