"""Tests for the RT-SADS feasibility machinery (paper Figure 4)."""

import pytest

from repro.core import (
    is_feasible_against_bound,
    is_feasible_assignment,
    make_task,
    phase_end_bound,
    projected_offsets,
    remaining_quantum,
    schedule_is_deadline_safe,
)


class TestRemainingQuantum:
    def test_full_at_phase_start(self):
        assert remaining_quantum(10.0, 5.0, now=10.0) == 5.0

    def test_decreases_with_time(self):
        assert remaining_quantum(10.0, 5.0, now=12.0) == 3.0

    def test_clamped_at_zero(self):
        assert remaining_quantum(10.0, 5.0, now=20.0) == 0.0


class TestFeasibilityTest:
    def test_literal_figure4_form(self):
        task = make_task(0, processing_time=10.0, deadline=100.0)
        # t_c + RQ_s + se <= d:  50 + 10 + 40 <= 100
        assert is_feasible_assignment(
            task, scheduled_end=40.0, now=50.0, phase_start=50.0, quantum=10.0
        )
        assert not is_feasible_assignment(
            task, scheduled_end=41.0, now=50.0, phase_start=50.0, quantum=10.0
        )

    def test_invariant_under_elapsed_phase_time(self):
        """t_c + RQ_s is constant during a phase, so the verdict is too."""
        task = make_task(0, processing_time=10.0, deadline=100.0)
        verdicts = [
            is_feasible_assignment(
                task, scheduled_end=40.0, now=now, phase_start=50.0, quantum=10.0
            )
            for now in (50.0, 53.0, 59.9)
        ]
        assert verdicts == [True, True, True]

    def test_bound_form_equivalence(self):
        task = make_task(0, processing_time=10.0, deadline=100.0)
        bound = phase_end_bound(50.0, 10.0)
        for se in (39.0, 40.0, 40.5, 41.0):
            assert is_feasible_against_bound(task, se, bound) == (
                is_feasible_assignment(
                    task, se, now=55.0, phase_start=50.0, quantum=10.0
                )
            )

    def test_boundary_is_feasible(self):
        task = make_task(0, processing_time=10.0, deadline=100.0)
        assert is_feasible_against_bound(task, 40.0, 60.0)  # exactly d

    def test_epsilon_tolerance(self):
        task = make_task(0, processing_time=10.0, deadline=100.0)
        assert is_feasible_against_bound(task, 40.0 + 1e-12, 60.0)


class TestProjectedOffsets:
    def test_drains_by_quantum(self):
        assert projected_offsets([100.0, 30.0], quantum=40.0) == (60.0, 0.0)

    def test_floors_at_zero(self):
        assert projected_offsets([10.0], quantum=40.0) == (0.0,)

    def test_zero_quantum_identity(self):
        assert projected_offsets([5.0, 7.0], quantum=0.0) == (5.0, 7.0)


class TestDeadlineSafety:
    def test_all_on_time(self):
        tasks = {
            0: make_task(0, processing_time=1.0, deadline=10.0),
            1: make_task(1, processing_time=1.0, deadline=20.0),
        }
        assert schedule_is_deadline_safe({0: 10.0, 1: 15.0}, tasks)

    def test_detects_late_finish(self):
        tasks = {0: make_task(0, processing_time=1.0, deadline=10.0)}
        assert not schedule_is_deadline_safe({0: 10.5}, tasks)
