"""Tests for communication models and affinity helpers."""

import random

import pytest

from repro.core import (
    DistanceCommunicationModel,
    UniformCommunicationModel,
    ZeroCommunicationModel,
    affinity_degree,
    make_task,
    random_affinity,
)


def _task(affinity, p=10.0):
    return make_task(0, processing_time=p, deadline=1000.0, affinity=affinity)


class TestUniformCommunicationModel:
    def test_affine_processor_is_free(self):
        model = UniformCommunicationModel(remote_cost=50.0)
        assert model.cost(_task([1]), 1) == 0.0

    def test_non_affine_processor_costs_constant(self):
        model = UniformCommunicationModel(remote_cost=50.0)
        assert model.cost(_task([1]), 0) == 50.0
        assert model.cost(_task([1]), 3) == 50.0  # distance-independent

    def test_execution_cost_adds_processing_time(self):
        model = UniformCommunicationModel(remote_cost=50.0)
        assert model.execution_cost(_task([1], p=10.0), 0) == 60.0
        assert model.execution_cost(_task([1], p=10.0), 1) == 10.0

    def test_cheapest_cost(self):
        model = UniformCommunicationModel(remote_cost=50.0)
        assert model.cheapest_cost(_task([1], p=10.0), range(4)) == 10.0

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            UniformCommunicationModel(remote_cost=-1.0)

    def test_zero_remote_cost_allowed(self):
        model = UniformCommunicationModel(remote_cost=0.0)
        assert model.cost(_task([1]), 0) == 0.0


class TestZeroCommunicationModel:
    def test_always_free(self):
        model = ZeroCommunicationModel()
        assert model.cost(_task([1]), 0) == 0.0
        assert model.cost(_task([]), 7) == 0.0


class TestDistanceCommunicationModel:
    def test_affine_is_free(self):
        model = DistanceCommunicationModel(per_hop_cost=5.0, num_processors=8)
        assert model.cost(_task([3]), 3) == 0.0

    def test_cost_grows_with_distance(self):
        model = DistanceCommunicationModel(per_hop_cost=5.0, num_processors=8)
        assert model.cost(_task([0]), 1) == 5.0
        assert model.cost(_task([0]), 4) == 20.0

    def test_uses_nearest_affine_processor(self):
        model = DistanceCommunicationModel(per_hop_cost=5.0, num_processors=8)
        assert model.cost(_task([0, 6]), 5) == 5.0  # 5 is 1 hop from 6

    def test_empty_affinity_is_free(self):
        model = DistanceCommunicationModel(per_hop_cost=5.0, num_processors=8)
        assert model.cost(_task([]), 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceCommunicationModel(per_hop_cost=-1.0, num_processors=4)
        with pytest.raises(ValueError):
            DistanceCommunicationModel(per_hop_cost=1.0, num_processors=0)


class TestRandomAffinity:
    def test_never_empty(self):
        rng = random.Random(0)
        for _ in range(200):
            affinity = random_affinity(8, 0.0, rng)
            assert len(affinity) == 1  # forced single home

    def test_full_probability_gives_all_processors(self):
        rng = random.Random(0)
        assert random_affinity(8, 1.0, rng) == frozenset(range(8))

    def test_probability_validated(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_affinity(8, 1.5, rng)
        with pytest.raises(ValueError):
            random_affinity(0, 0.5, rng)

    def test_mean_degree_tracks_probability(self):
        rng = random.Random(42)
        m, p, n = 10, 0.3, 2000
        sizes = [len(random_affinity(m, p, rng)) for _ in range(n)]
        mean_degree = sum(sizes) / (n * m)
        # Forced-home inflates the degree slightly above p at low p.
        assert 0.28 <= mean_degree <= 0.38

    def test_members_in_range(self):
        rng = random.Random(3)
        for _ in range(100):
            affinity = random_affinity(5, 0.4, rng)
            assert all(0 <= member < 5 for member in affinity)


class TestAffinityDegree:
    def test_empty_inputs(self):
        assert affinity_degree([], 4) == 0.0
        assert affinity_degree([_task([0])], 0) == 0.0

    def test_computes_mean_fraction(self):
        tasks = [_task([0, 1]), _task([2])]
        # (2 + 1) / (2 tasks * 4 processors)
        assert affinity_degree(tasks, 4) == pytest.approx(3 / 8)
