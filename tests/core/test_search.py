"""Tests for the search machinery: vertices, CL, budgets, DFS driver."""

import pytest

from repro.core import (
    AssignmentOrientedExpander,
    CandidateList,
    LoadBalancingEvaluator,
    PhaseContext,
    VirtualTimeBudget,
    WallClockBudget,
    ZeroCommunicationModel,
    make_child,
    make_root,
    make_task,
    run_search,
)


def _ctx(tasks, m=2, quantum=1000.0, offsets=None, comm=None, now=0.0):
    return PhaseContext(
        tasks=tasks,
        num_processors=m,
        comm=comm or ZeroCommunicationModel(),
        phase_start=now,
        quantum=quantum,
        initial_offsets=offsets or (0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


class TestVertex:
    def test_root_properties(self):
        root = make_root((1.0, 2.0))
        assert root.is_root()
        assert root.depth == 0
        assert root.proc_offsets == (1.0, 2.0)
        assert root.path() == []

    def test_child_extends_offsets(self):
        root = make_root((0.0, 0.0))
        child = make_child(root, 0, 1, total_cost=10.0, communication_cost=0.0)
        assert child.proc_offsets == (0.0, 10.0)
        assert child.scheduled_end == 10.0
        assert child.depth == 1
        assert child.scheduled_mask == 1

    def test_child_mask_accumulates(self):
        root = make_root((0.0,))
        a = make_child(root, 0, 0, 5.0, 0.0)
        b = make_child(a, 3, 0, 5.0, 0.0)
        assert b.scheduled_mask == 0b1001

    def test_path_in_root_to_leaf_order(self):
        root = make_root((0.0,))
        a = make_child(root, 0, 0, 5.0, 0.0)
        b = make_child(a, 1, 0, 5.0, 0.0)
        assert [v.batch_index for v in b.path()] == [0, 1]

    def test_child_does_not_mutate_parent(self):
        root = make_root((0.0, 0.0))
        make_child(root, 0, 0, 10.0, 0.0)
        assert root.proc_offsets == (0.0, 0.0)
        assert root.scheduled_mask == 0


class TestCandidateList:
    def _vertices(self, n):
        root = make_root((0.0,))
        return [make_child(root, i, 0, 1.0, 0.0) for i in range(n)]

    def test_pop_returns_block_best_first(self):
        cl = CandidateList()
        block = self._vertices(3)
        cl.push_block(block)
        assert cl.pop() is block[0]
        assert cl.pop() is block[1]

    def test_depth_first_across_blocks(self):
        cl = CandidateList()
        first = self._vertices(2)
        second = self._vertices(2)
        cl.push_block(first)
        cl.push_block(second)  # newer block pops first
        assert cl.pop() is second[0]

    def test_pop_empty_returns_none(self):
        assert CandidateList().pop() is None

    def test_max_size_drops_oldest(self):
        cl = CandidateList(max_size=3)
        vertices = self._vertices(5)
        cl.push_block(vertices)
        assert len(cl) == 3
        assert cl.dropped == 2
        # Best candidates survive (oldest/worst trimmed from the bottom).
        assert cl.pop() is vertices[0]

    def test_max_size_validation(self):
        with pytest.raises(ValueError):
            CandidateList(max_size=0)


class TestVirtualTimeBudget:
    def test_charges_per_vertex(self):
        budget = VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.1)
        budget.charge(3)
        assert budget.used() == pytest.approx(0.3)
        assert not budget.exhausted()
        assert budget.remaining() == pytest.approx(0.7)

    def test_exhaustion(self):
        budget = VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.5)
        budget.charge(2)
        assert budget.exhausted()
        assert budget.remaining() == 0.0

    def test_consume_direct_time(self):
        budget = VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.1)
        budget.consume(0.95)
        budget.charge(1)
        assert budget.exhausted()

    def test_consume_validation(self):
        budget = VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.1)
        with pytest.raises(ValueError):
            budget.consume(-0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualTimeBudget(quantum=-1.0, per_vertex_cost=0.1)
        with pytest.raises(ValueError):
            VirtualTimeBudget(quantum=1.0, per_vertex_cost=0.0)


class TestWallClockBudget:
    def test_counts_vertices_and_measures_time(self):
        budget = WallClockBudget(quantum_seconds=10.0)
        budget.charge(5)
        assert budget.vertices_charged == 5
        assert budget.used() >= 0.0
        assert not budget.exhausted()

    def test_zero_quantum_exhausts_immediately(self):
        budget = WallClockBudget(quantum_seconds=0.0)
        assert budget.exhausted()

    def test_clock_starts_lazily_not_at_construction(self, monkeypatch):
        # Regression: the budget is built alongside the phase context, and
        # setup time between construction and the first search step must
        # not be billed against the quantum.
        from repro.core import search as search_module

        fake_now = [100.0]
        monkeypatch.setattr(
            search_module.time, "perf_counter", lambda: fake_now[0]
        )
        budget = WallClockBudget(quantum_seconds=5.0)
        assert not budget.started
        fake_now[0] = 200.0  # a long pause before the search begins
        budget.charge(1)
        assert budget.started
        fake_now[0] = 202.0
        assert budget.used() == pytest.approx(2.0)
        assert not budget.exhausted()
        assert budget.remaining() == pytest.approx(3.0)

    def test_first_used_call_starts_the_clock(self, monkeypatch):
        from repro.core import search as search_module

        fake_now = [50.0]
        monkeypatch.setattr(
            search_module.time, "perf_counter", lambda: fake_now[0]
        )
        budget = WallClockBudget(quantum_seconds=1.0)
        fake_now[0] = 75.0
        # The very first used() must read zero, not the setup gap.
        assert budget.used() == pytest.approx(0.0)

    def test_negative_quantum_rejected(self):
        with pytest.raises(ValueError):
            WallClockBudget(quantum_seconds=-1.0)


class TestRunSearch:
    def test_schedules_all_when_feasible(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(5)
        ]
        ctx = _ctx(tasks, m=2)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(),
            VirtualTimeBudget(1000.0, 0.01),
        )
        assert outcome.stats.complete
        assert outcome.best.depth == 5
        schedule = outcome.extract_schedule(ctx)
        assert schedule.task_ids() == {0, 1, 2, 3, 4}

    def test_budget_interrupts_search(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(50)
        ]
        ctx = _ctx(tasks, m=2)
        # Budget admits only a handful of expansions (2 vertices each).
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(1.0, 0.1)
        )
        assert not outcome.stats.complete
        assert 0 < outcome.best.depth < 50
        assert outcome.time_used <= 1.0

    def test_partial_schedule_is_feasible_at_interruption(self):
        """The anytime property: any interruption yields a valid schedule."""
        tasks = [
            make_task(i, processing_time=10.0, deadline=500.0) for i in range(20)
        ]
        ctx = _ctx(tasks, m=2, quantum=50.0)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(50.0, 1.0)
        )
        schedule = outcome.extract_schedule(ctx)
        schedule.validate(
            ctx.comm, dict(enumerate(ctx.initial_offsets)), ctx.phase_end_bound
        )

    def test_maximal_stop_when_nothing_fits(self):
        # Two tasks fit back to back; the third can never fit behind them
        # (bound 5 + se 30 > 25), so the search proves maximality and stops.
        tasks = [
            make_task(i, processing_time=10.0, deadline=25.0) for i in range(3)
        ]
        ctx = _ctx(tasks, m=1, quantum=5.0)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(5.0, 0.01)
        )
        assert outcome.stats.maximal
        assert outcome.best.depth == 2

    def test_dead_end_when_root_has_no_feasible_tasks(self):
        tasks = [make_task(0, processing_time=100.0, deadline=101.0)]
        ctx = _ctx(tasks, m=1, quantum=50.0)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(50.0, 0.01)
        )
        # Root expansion is exhaustive and empty -> maximal empty schedule.
        assert outcome.best.depth == 0
        assert len(outcome.extract_schedule(ctx)) == 0

    def test_max_iterations_cap(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(10)
        ]
        ctx = _ctx(tasks, m=2)
        outcome = run_search(
            ctx,
            AssignmentOrientedExpander(),
            VirtualTimeBudget(1000.0, 0.001),
            max_iterations=3,
        )
        assert outcome.best.depth <= 3

    def test_stats_processors_touched(self):
        tasks = [
            make_task(i, processing_time=10.0, deadline=10_000.0)
            for i in range(6)
        ]
        ctx = _ctx(tasks, m=3)
        outcome = run_search(
            ctx, AssignmentOrientedExpander(), VirtualTimeBudget(1000.0, 0.001)
        )
        # Load balancing spreads 6 equal tasks over all 3 processors.
        assert outcome.stats.processors_touched == 3


class TestPhaseContextValidation:
    def test_rejects_mismatched_offsets(self):
        with pytest.raises(ValueError):
            _ctx([], m=2, offsets=(0.0,))

    def test_rejects_negative_quantum(self):
        with pytest.raises(ValueError):
            _ctx([], m=1, quantum=-1.0)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            PhaseContext(
                tasks=[],
                num_processors=0,
                comm=ZeroCommunicationModel(),
                phase_start=0.0,
                quantum=1.0,
                initial_offsets=(),
                evaluator=LoadBalancingEvaluator(),
            )
