"""Tests for vertex evaluators (cost functions and heuristics)."""

import pytest

from repro.core import (
    EarliestFinishEvaluator,
    FifoEvaluator,
    LoadBalancingEvaluator,
    MinSlackEvaluator,
    PhaseContext,
    ZeroCommunicationModel,
    get_evaluator,
    make_child,
    make_root,
    make_task,
)


def _ctx(tasks, m=2, quantum=100.0, offsets=None):
    return PhaseContext(
        tasks=tasks,
        num_processors=m,
        comm=ZeroCommunicationModel(),
        phase_start=0.0,
        quantum=quantum,
        initial_offsets=offsets or (0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


class TestLoadBalancingEvaluator:
    def test_value_is_max_processor_offset(self):
        tasks = [make_task(0, processing_time=10.0, deadline=1000.0)]
        ctx = _ctx(tasks, m=2, offsets=(30.0, 0.0))
        root = make_root(ctx.initial_offsets)
        on_p0 = make_child(root, 0, 0, 10.0, 0.0)  # offsets (40, 0)
        on_p1 = make_child(root, 0, 1, 10.0, 0.0)  # offsets (30, 10)
        evaluator = LoadBalancingEvaluator()
        assert evaluator.evaluate(ctx, on_p0) > evaluator.evaluate(ctx, on_p1)

    def test_prefers_balanced_assignment(self):
        """The paper's CE picks the processor that minimizes the makespan."""
        tasks = [make_task(0, processing_time=10.0, deadline=1000.0)]
        ctx = _ctx(tasks, m=3, offsets=(50.0, 20.0, 35.0))
        root = make_root(ctx.initial_offsets)
        evaluator = LoadBalancingEvaluator()
        values = {
            proc: evaluator.evaluate(ctx, make_child(root, 0, proc, 10.0, 0.0))
            for proc in range(3)
        }
        assert min(values, key=values.get) == 1  # least-loaded processor

    def test_accounts_for_communication_in_ce(self):
        """CE trades load balance against communication (Section 4.4)."""
        tasks = [make_task(0, processing_time=10.0, deadline=1000.0)]
        ctx = _ctx(tasks, m=2, offsets=(0.0, 0.0))
        root = make_root(ctx.initial_offsets)
        local = make_child(root, 0, 0, 10.0, 0.0)
        remote = make_child(root, 0, 1, 60.0, 50.0)  # p + C
        evaluator = LoadBalancingEvaluator()
        assert evaluator.evaluate(ctx, local) < evaluator.evaluate(ctx, remote)


class TestEarliestFinishEvaluator:
    def test_value_is_scheduled_end(self):
        tasks = [make_task(0, processing_time=10.0, deadline=1000.0)]
        ctx = _ctx(tasks, m=2, offsets=(30.0, 0.0))
        root = make_root(ctx.initial_offsets)
        child = make_child(root, 0, 0, 10.0, 0.0)
        assert EarliestFinishEvaluator().evaluate(ctx, child) == 40.0


class TestMinSlackEvaluator:
    def test_tighter_fit_scores_lower(self):
        tasks = [
            make_task(0, processing_time=10.0, deadline=60.0),
            make_task(1, processing_time=10.0, deadline=900.0),
        ]
        ctx = _ctx(tasks, m=1, quantum=20.0)
        root = make_root(ctx.initial_offsets)
        tight = make_child(root, 0, 0, 10.0, 0.0)
        loose = make_child(root, 1, 0, 10.0, 0.0)
        evaluator = MinSlackEvaluator()
        assert evaluator.evaluate(ctx, tight) < evaluator.evaluate(ctx, loose)


class TestFifoEvaluator:
    def test_constant_value(self):
        tasks = [make_task(0, processing_time=10.0, deadline=1000.0)]
        ctx = _ctx(tasks)
        root = make_root(ctx.initial_offsets)
        child = make_child(root, 0, 0, 10.0, 0.0)
        assert FifoEvaluator().evaluate(ctx, child) == 0.0


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("load_balancing", LoadBalancingEvaluator),
            ("earliest_finish", EarliestFinishEvaluator),
            ("min_slack", MinSlackEvaluator),
            ("fifo", FifoEvaluator),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(get_evaluator(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_evaluator("bogus")
