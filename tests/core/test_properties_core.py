"""Property-based tests on the core invariants (hypothesis).

The paper's correctness theorem and its supporting invariants are checked
over randomly generated workloads and phase parameters:

1. Every schedule a phase produces satisfies the Figure-4 bound.
2. Per-processor scheduled ends are cumulative and non-decreasing.
3. Search never schedules a task twice.
4. The quantum criterion is monotone in its inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    SelfAdjustingQuantum,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    make_task,
    min_load,
    min_slack,
    run_phase,
)

MAX_EXAMPLES = 60


@st.composite
def workloads(draw):
    """A random batch plus machine state."""
    num_processors = draw(st.integers(min_value=1, max_value=6))
    num_tasks = draw(st.integers(min_value=1, max_value=20))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    tasks = []
    for task_id in range(num_tasks):
        processing = rng.uniform(1.0, 50.0)
        laxity = rng.uniform(1.0, 20.0)
        affinity = frozenset(
            p for p in range(num_processors) if rng.random() < 0.4
        ) or frozenset({rng.randrange(num_processors)})
        tasks.append(
            make_task(
                task_id,
                processing_time=processing,
                deadline=processing * laxity + 1.0,
                affinity=affinity,
            )
        )
    loads = [rng.uniform(0.0, 100.0) for _ in range(num_processors)]
    quantum = rng.uniform(0.5, 80.0)
    remote_cost = rng.uniform(0.0, 100.0)
    return tasks, loads, quantum, remote_cost


@st.composite
def expanders(draw):
    if draw(st.booleans()):
        return AssignmentOrientedExpander()
    return SequenceOrientedExpander(
        beam_width=draw(st.integers(min_value=1, max_value=8)),
        start_processor=draw(st.integers(min_value=0, max_value=3)),
    )


class TestPhaseInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=workloads(), expander=expanders())
    def test_schedule_respects_feasibility_bound(self, workload, expander):
        """Theorem precondition: every entry meets t_s + Q_s + se <= d."""
        tasks, loads, quantum, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = run_phase(
            tasks=tasks,
            loads=loads,
            now=0.0,
            quantum=quantum,
            comm=comm,
            expander=expander,
            evaluator=LoadBalancingEvaluator(),
            per_vertex_cost=0.01,
        )
        bound = result.phase_end_bound
        for entry in result.schedule:
            assert bound + entry.scheduled_end <= entry.task.deadline + 1e-6

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=workloads(), expander=expanders())
    def test_schedule_internally_consistent(self, workload, expander):
        """Validate() accepts every schedule the phase produces."""
        tasks, loads, quantum, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = run_phase(
            tasks=tasks,
            loads=loads,
            now=0.0,
            quantum=quantum,
            comm=comm,
            expander=expander,
            evaluator=LoadBalancingEvaluator(),
            per_vertex_cost=0.01,
        )
        result.validate(comm)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=workloads(), expander=expanders())
    def test_no_task_scheduled_twice(self, workload, expander):
        tasks, loads, quantum, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = run_phase(
            tasks=tasks,
            loads=loads,
            now=0.0,
            quantum=quantum,
            comm=comm,
            expander=expander,
            evaluator=LoadBalancingEvaluator(),
            per_vertex_cost=0.01,
        )
        ids = [e.task.task_id for e in result.schedule]
        assert len(ids) == len(set(ids))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(workload=workloads())
    def test_time_used_within_quantum(self, workload):
        tasks, loads, quantum, remote_cost = workload
        comm = UniformCommunicationModel(remote_cost)
        result = run_phase(
            tasks=tasks,
            loads=loads,
            now=0.0,
            quantum=quantum,
            comm=comm,
            expander=AssignmentOrientedExpander(),
            evaluator=LoadBalancingEvaluator(),
            per_vertex_cost=0.01,
        )
        assert 0.0 < result.time_used <= quantum + 1e-12


class TestQuantumProperties:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        deadlines=st.lists(
            st.floats(min_value=10.0, max_value=1e4), min_size=1, max_size=20
        ),
        loads=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=8
        ),
    )
    def test_quantum_at_least_both_terms_floor(self, deadlines, loads):
        batch = [
            make_task(i, processing_time=1.0, deadline=d)
            for i, d in enumerate(deadlines)
        ]
        policy = SelfAdjustingQuantum()
        quantum = policy.quantum(batch, loads, now=0.0)
        expected = max(
            min_slack(batch, 0.0), min_load(loads), policy.min_quantum
        )
        assert quantum == expected

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        load=st.floats(min_value=0.0, max_value=1e4),
        extra=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_min_load_monotone(self, load, extra):
        assert min_load([load]) >= min_load([load, load - extra])


class TestMaskInvariants:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(indices=st.lists(st.integers(min_value=0, max_value=200),
                            unique=True, min_size=1, max_size=50))
    def test_bitmask_roundtrip(self, indices):
        """The scheduled-task bitmask encodes exactly the set of indices."""
        mask = 0
        for index in indices:
            mask |= 1 << index
        recovered = {i for i in range(201) if (mask >> i) & 1}
        assert recovered == set(indices)
