"""Tests for RT-SADS, D-COLS, and the scheduler interface glue."""

import pytest

from repro.core import (
    DCOLS,
    RTSADS,
    EarliestFinishEvaluator,
    FixedQuantum,
    LoadBalancingEvaluator,
    SelfAdjustingQuantum,
    UniformCommunicationModel,
    make_task,
)
from repro.core.scheduler import phase_overhead, useful_search_time


@pytest.fixture
def tasks():
    return [
        make_task(i, processing_time=10.0, deadline=500.0, affinity=[i % 2])
        for i in range(6)
    ]


class TestRTSADS:
    def test_defaults_match_paper(self, comm):
        scheduler = RTSADS(comm)
        assert scheduler.name == "RT-SADS"
        assert isinstance(scheduler.evaluator, LoadBalancingEvaluator)
        assert isinstance(scheduler.quantum_policy, SelfAdjustingQuantum)

    def test_schedule_phase_produces_feasible_schedule(self, comm, tasks):
        scheduler = RTSADS(comm)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        assert len(result.schedule) == 6
        result.validate(comm)

    def test_phase_counter_advances_and_resets(self, comm, tasks):
        scheduler = RTSADS(comm)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        assert scheduler.phase_index == 1
        scheduler.reset()
        assert scheduler.phase_index == 0

    def test_override_evaluator(self, comm):
        scheduler = RTSADS(comm, evaluator=EarliestFinishEvaluator())
        assert isinstance(scheduler.evaluator, EarliestFinishEvaluator)

    def test_override_quantum_policy(self, comm, tasks):
        scheduler = RTSADS(comm, quantum_policy=FixedQuantum(5.0))
        assert scheduler.plan_quantum(tasks, [0.0], now=0.0) == 5.0

    def test_quantum_capped_by_useful_search_time(self, comm):
        scheduler = RTSADS(comm, per_vertex_cost=0.01)
        batch = [make_task(0, processing_time=1.0, deadline=1e9)]
        quantum = scheduler.plan_quantum(batch, [0.0, 0.0], now=0.0)
        cap = useful_search_time(1, 2, 0.01, scheduler.quantum_cap_factor)
        assert quantum <= max(cap, scheduler.quantum_policy.min_quantum)

    def test_quantum_cap_disabled(self, comm):
        scheduler = RTSADS(comm, per_vertex_cost=0.01)
        scheduler.quantum_cap_factor = None
        batch = [make_task(0, processing_time=1.0, deadline=1e9)]
        quantum = scheduler.plan_quantum(batch, [0.0, 0.0], now=0.0)
        assert quantum == pytest.approx(1e9 - 1.0)

    def test_phase_overhead_consumes_time(self, comm, tasks):
        scheduler = RTSADS(comm)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        overhead = phase_overhead(
            len(tasks), 2, scheduler.per_vertex_cost,
            scheduler.phase_overhead_factor,
        )
        assert result.time_used >= overhead

    def test_validation(self, comm):
        with pytest.raises(ValueError):
            RTSADS(comm, per_vertex_cost=0.0)
        with pytest.raises(ValueError):
            RTSADS(comm, max_task_probes=0)


class TestDCOLS:
    def test_defaults(self, comm):
        scheduler = DCOLS(comm)
        assert scheduler.name == "D-COLS"
        assert scheduler.rotate_start is False
        assert scheduler.beam_width is None

    def test_round_robin_assignment_order(self, comm):
        tasks = [
            make_task(i, processing_time=10.0, deadline=1000.0, affinity=[0, 1])
            for i in range(4)
        ]
        scheduler = DCOLS(comm)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        assert [e.processor for e in result.schedule.entries] == [0, 1, 0, 1]

    def test_rotate_start_changes_first_processor(self, comm):
        tasks = [
            make_task(i, processing_time=10.0, deadline=1000.0, affinity=[0, 1])
            for i in range(2)
        ]
        scheduler = DCOLS(comm, rotate_start=True)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        first = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        # Second phase starts its round robin at P1.
        second = scheduler.schedule_phase(
            [tasks[0]], [0.0, 0.0], first.phase_end, quantum
        )
        assert first.schedule.entries[0].processor == 0
        assert second.schedule.entries[0].processor == 1

    def test_same_quantum_regime_as_rtsads(self, comm, tasks):
        """Section 5.2: both algorithms get the same time quantum."""
        rtsads = RTSADS(comm)
        dcols = DCOLS(comm)
        loads = [13.0, 4.0]
        assert rtsads.plan_quantum(tasks, loads, 0.0) == pytest.approx(
            dcols.plan_quantum(tasks, loads, 0.0)
        )

    def test_schedule_is_deadline_safe(self, comm, tasks):
        scheduler = DCOLS(comm)
        quantum = scheduler.plan_quantum(tasks, [0.0, 0.0], now=0.0)
        result = scheduler.schedule_phase(tasks, [0.0, 0.0], 0.0, quantum)
        result.validate(comm)
