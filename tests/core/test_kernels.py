"""Unit tests for the search-kernel registry (:mod:`repro.core.kernels`).

Covers name resolution (including the ``auto`` fallback), the clean
ImportError when the vectorized kernel is named without numpy, third-party
registration, instance caching, config validation and cache-digest
participation, and the vectorized kernel's small-phase delegation knob.
Everything here runs on hosts without numpy; numpy-dependent checks skip
themselves individually.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.core import kernels
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    ScalarKernel,
    SearchKernel,
    get_kernel,
    kernel_available,
    numpy_available,
    register_kernel,
    registered_kernels,
    resolve_kernel,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import config_digest

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="requires numpy (the [fast] extra)"
)


@pytest.fixture(autouse=True)
def _isolated_registry(monkeypatch):
    """Each test gets private registry/instance tables."""
    monkeypatch.setattr(kernels, "_REGISTRY", {})
    monkeypatch.setattr(kernels, "_INSTANCES", {})


class _StubKernel(SearchKernel):
    name = "stub"

    def search(self, ctx, expander, budget, max_candidates=None,
               max_iterations=None):  # pragma: no cover - never run
        raise AssertionError("stub kernel must not be executed")


def test_default_is_scalar() -> None:
    assert DEFAULT_KERNEL == "scalar"
    assert isinstance(get_kernel(None), ScalarKernel)
    assert isinstance(get_kernel("scalar"), ScalarKernel)


def test_instances_are_cached_singletons() -> None:
    assert get_kernel("scalar") is get_kernel("scalar")


def test_unknown_name_lists_known_kernels() -> None:
    with pytest.raises(ValueError, match="scalar"):
        get_kernel("simd-avx512")


def test_kernel_names_are_always_nameable() -> None:
    # Every KERNEL_NAMES entry must be accepted by config validation and
    # the CLI even when it cannot *resolve* (vectorized without numpy).
    assert set(KERNEL_NAMES) == {"scalar", "vectorized", "auto"}
    assert kernel_available("scalar")
    assert kernel_available("auto")
    assert kernel_available("vectorized") == numpy_available()
    assert not kernel_available("simd-avx512")


def test_auto_falls_back_to_scalar_without_numpy(monkeypatch) -> None:
    monkeypatch.setattr(kernels, "numpy_available", lambda: False)
    assert isinstance(get_kernel("auto"), ScalarKernel)


@requires_numpy
def test_auto_resolves_to_vectorized_with_numpy() -> None:
    assert get_kernel("auto").name == "vectorized"


def test_vectorized_without_numpy_raises_actionable_importerror(
    monkeypatch,
) -> None:
    # Blocking the module in sys.modules makes `from . import vectorized`
    # raise ImportError exactly as it would on a host without numpy.  The
    # parent-package attribute must go too, or a previous import of the
    # module in this process satisfies the `from . import` directly.
    import repro.core

    monkeypatch.setitem(sys.modules, "repro.core.vectorized", None)
    monkeypatch.delattr(repro.core, "vectorized", raising=False)
    with pytest.raises(ImportError, match=r"pip install.*fast"):
        get_kernel("vectorized")


def test_register_kernel_and_resolution() -> None:
    register_kernel("stub", _StubKernel)
    assert "stub" in registered_kernels()
    assert isinstance(get_kernel("stub"), _StubKernel)
    # Re-registration replaces the factory and drops the cached instance.
    first = get_kernel("stub")
    register_kernel("stub", _StubKernel)
    assert get_kernel("stub") is not first


def test_register_kernel_rejects_empty_name() -> None:
    with pytest.raises(ValueError):
        register_kernel("", _StubKernel)


def test_resolve_kernel_passthrough() -> None:
    assert resolve_kernel(None) is None
    stub = _StubKernel()
    assert resolve_kernel(stub) is stub
    assert isinstance(resolve_kernel("scalar"), ScalarKernel)


def test_scalar_kernel_matches_run_search() -> None:
    from repro.core import (
        AssignmentOrientedExpander,
        LoadBalancingEvaluator,
        PhaseContext,
        UniformCommunicationModel,
        VirtualTimeBudget,
        make_task,
        run_search,
    )

    rng = random.Random(5)
    tasks = [
        make_task(
            tid,
            processing_time=rng.uniform(5.0, 20.0),
            deadline=rng.uniform(100.0, 400.0),
        )
        for tid in range(12)
    ]

    def outcome(search):
        ctx = PhaseContext(
            tasks=list(tasks),
            num_processors=3,
            comm=UniformCommunicationModel(10.0),
            phase_start=0.0,
            quantum=200.0,
            initial_offsets=(0.0, 0.0, 0.0),
            evaluator=LoadBalancingEvaluator(),
        )
        result = search(
            ctx, AssignmentOrientedExpander(),
            VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.1),
        )
        return (
            [(v.batch_index, v.processor) for v in result.best.path()],
            result.stats.vertices_generated,
        )

    assert outcome(ScalarKernel().search) == outcome(run_search)


def test_config_validates_kernel_names() -> None:
    config = ExperimentConfig.quick(num_transactions=10, runs=1)
    for name in KERNEL_NAMES:
        assert config.with_kernel(name).kernel == name
    with pytest.raises(ValueError, match="kernel"):
        config.with_kernel("simd-avx512")


def test_config_accepts_registered_third_party_kernel() -> None:
    config = ExperimentConfig.quick(num_transactions=10, runs=1)
    register_kernel("stub", _StubKernel)
    assert config.with_kernel("stub").kernel == "stub"


def test_kernel_enters_cache_digest() -> None:
    """Kernel choice is part of the sweep cache key.

    Kernels are bit-identical, so sharing a digest would be *safe* — but
    a kernel sweep exists precisely to re-validate that claim, and its
    cells must not shadow each other in the cache.
    """
    config = ExperimentConfig.quick(num_transactions=10, runs=1)
    assert config_digest(config.with_kernel("scalar")) != config_digest(
        config.with_kernel("vectorized")
    )


@requires_numpy
def test_vectorized_small_phase_cutoff_default() -> None:
    from repro.core.vectorized import VectorizedKernel

    assert VectorizedKernel().small_phase_cutoff == 64
    assert VectorizedKernel(small_phase_cutoff=7).small_phase_cutoff == 7


@requires_numpy
def test_vectorized_delegates_small_phases_to_scalar(monkeypatch) -> None:
    """Below the cutoff the batch path must not engage at all."""
    from repro.core import vectorized as vec_mod
    from repro.core.vectorized import VectorizedKernel

    def _boom(*args, **kwargs):  # pragma: no cover - defensive
        raise AssertionError("batch path engaged below the cutoff")

    monkeypatch.setattr(vec_mod, "_batch_search", _boom)
    from repro.core import (
        AssignmentOrientedExpander,
        LoadBalancingEvaluator,
        PhaseContext,
        UniformCommunicationModel,
        VirtualTimeBudget,
        make_task,
    )

    ctx = PhaseContext(
        tasks=[make_task(0, processing_time=5.0, deadline=100.0)],
        num_processors=2,
        comm=UniformCommunicationModel(1.0),
        phase_start=0.0,
        quantum=50.0,
        initial_offsets=(0.0, 0.0),
        evaluator=LoadBalancingEvaluator(),
    )
    outcome = VectorizedKernel().search(
        ctx,
        AssignmentOrientedExpander(),
        VirtualTimeBudget(quantum=50.0, per_vertex_cost=0.1),
    )
    assert outcome.best.depth == 1
