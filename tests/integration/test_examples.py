"""Every example script must run cleanly and produce its key output."""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "distributed_database.py",
        "scalability_study.py",
        "adaptive_quantum.py",
        "replication_tradeoff.py",
        "readwrite_transactions.py",
    } <= scripts


def test_quickstart():
    out = _run("quickstart.py")
    assert "RT-SADS" in out
    assert "deadlines met" in out
    assert "timeline" in out
    assert "theorem violations: 0" in out


def test_distributed_database():
    out = _run("distributed_database.py")
    assert "sub-databases" in out
    assert "RT-SADS" in out and "D-COLS" in out
    assert "indexed" in out and "scan" in out


def test_scalability_study():
    out = _run("scalability_study.py")
    assert "Figure 5" in out
    assert "dead-end rate" in out
    assert "max advantage" in out


def test_adaptive_quantum():
    out = _run("adaptive_quantum.py")
    assert "quantum adaptation" in out
    assert "self-adjusting" in out


def test_replication_tradeoff():
    out = _run("replication_tradeoff.py")
    assert "Figure 6" in out
    assert "difference of means" in out


def test_readwrite_transactions():
    out = _run("readwrite_transactions.py")
    assert "updates (pinned to primary copies)" in out
    assert "first-match early exit" in out
    assert "reclaimed" in out
