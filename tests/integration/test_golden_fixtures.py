"""Golden-fixture regression tests for canonical schedules.

Small canonical cells are checked in as JSON under ``tests/fixtures/golden/``
(serialized with :mod:`repro.metrics.export`); re-running the same seeds must
reproduce them *exactly* — floats are stored as ``repr`` strings, so a single
ULP of drift anywhere in the scheduler fails the diff.  Future performance
PRs diff against these instead of eyeballing schedules.

Regenerate (only when a behaviour change is intended and understood)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_fixtures.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.registry import SCHEDULER_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_once
from repro.metrics.export import table_to_json, write_text

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

#: (scheduler, processors, replication, seed) — small but non-trivial cells.
#: The historical rtsads/dcols entries predate the scheduler registry and
#: must stay bit-identical; every other registry scheduler gets one cell,
#: derived from SCHEDULER_NAMES so registering a new builtin without a
#: golden fails the coverage test below.
GOLDEN_CELLS = [
    ("rtsads", 3, 0.3, 2024),
    ("rtsads", 8, 0.5, 2024),
    ("dcols", 3, 0.3, 2024),
    ("dcols", 8, 0.5, 2024),
] + [
    (name, 3, 0.3, 2024)
    for name in SCHEDULER_NAMES
    if name not in ("rtsads", "dcols")
]

RECORD_HEADERS = [
    "task_id", "status", "scheduled_phase", "processor",
    "delivered_at", "started_at", "finished_at", "planned_cost",
]
PHASE_HEADERS = [
    "index", "start", "quantum", "time_used", "batch_size", "scheduled",
    "dead_end", "complete", "max_depth", "vertices_generated",
]


def _golden_name(scheduler: str, m: int, replication: float, seed: int) -> str:
    return f"{scheduler}_m{m}_R{int(replication * 100)}_s{seed}.json"


def _golden_document(
    scheduler: str, m: int, replication: float, seed: int, kernel: str = None
) -> str:
    config = (
        ExperimentConfig.quick(num_transactions=40, runs=1)
        .with_processors(m)
        .with_replication(replication)
    )
    if kernel is not None:
        # Kernels are bit-identical by contract, so the document must come
        # out byte-equal; tests/differential/test_kernel_differential.py
        # re-runs the search-scheduler cells this way.
        config = config.with_kernel(kernel)
    result = run_once(config, scheduler, seed)
    record_rows = [
        [
            task_id,
            str(record.status),
            record.scheduled_phase,
            record.processor,
            repr(record.delivered_at),
            repr(record.started_at),
            repr(record.finished_at),
            repr(record.planned_cost),
        ]
        for task_id, record in sorted(result.trace.records.items())
    ]
    phase_rows = [
        [
            phase.index,
            repr(phase.start),
            repr(phase.quantum),
            repr(phase.time_used),
            phase.batch_size,
            phase.scheduled,
            phase.dead_end,
            phase.complete,
            phase.max_depth,
            phase.vertices_generated,
        ]
        for phase in result.phases
    ]
    records_json = json.loads(
        table_to_json(RECORD_HEADERS, record_rows, title="task records")
    )
    phases_json = json.loads(
        table_to_json(PHASE_HEADERS, phase_rows, title="phases")
    )
    document = {
        "cell": {
            "scheduler": scheduler,
            "processors": m,
            "replication": replication,
            "seed": seed,
            "transactions": 40,
        },
        "makespan": repr(result.makespan),
        "records": records_json,
        "phases": phases_json,
    }
    return json.dumps(document, indent=2, sort_keys=True)


@pytest.mark.parametrize("scheduler,m,replication,seed", GOLDEN_CELLS)
def test_golden_schedule_reproduced_exactly(
    scheduler: str, m: int, replication: float, seed: int
) -> None:
    path = GOLDEN_DIR / _golden_name(scheduler, m, replication, seed)
    regenerated = _golden_document(scheduler, m, replication, seed)
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        write_text(path, regenerated)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} missing; regenerate with REPRO_REGEN_GOLDENS=1"
    )
    stored = path.read_text().rstrip("\n")
    assert regenerated == stored, (
        f"schedule for {path.name} no longer matches its golden fixture; if "
        "this change is intentional, regenerate with REPRO_REGEN_GOLDENS=1 "
        "and explain the behaviour change in the commit message"
    )


def test_goldens_cover_every_registry_scheduler() -> None:
    """Every builtin registry scheduler must have a golden cell."""
    schedulers = {cell[0] for cell in GOLDEN_CELLS}
    assert set(SCHEDULER_NAMES) <= schedulers
