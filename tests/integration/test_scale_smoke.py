"""Scale smoke tests: the paper-sized burst runs whole and stays sane."""

import multiprocessing
import signal
import socket
import time

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import ExperimentConfig, run_once


class TestPaperScaleSmoke:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig.paper(runs=1)
        started = time.perf_counter()
        result = run_once(config, "rtsads", config.base_seed)
        result.wall_seconds = time.perf_counter() - started
        return result

    def test_thousand_task_burst_completes(self, result):
        assert result.trace.total_tasks() == 1000

    def test_every_task_terminal(self, result):
        from repro.simulator import STATUS_COMPLETED, STATUS_EXPIRED

        for record in result.trace.records.values():
            assert record.status in (STATUS_COMPLETED, STATUS_EXPIRED)

    def test_theorem_at_scale(self, result):
        assert result.trace.scheduled_but_missed() == []

    def test_nontrivial_compliance(self, result):
        # The overloaded paper burst caps out near 30%; a collapse below
        # 10% or an impossible >40% both indicate calibration regressions.
        assert 0.10 < result.hit_ratio < 0.40

    def test_event_count_bounded(self, result):
        # Each task contributes O(1) events plus phases; a blow-up here
        # means the host loop is thrashing.
        assert result.events_dispatched < 100_000

    def test_runs_in_reasonable_wall_time(self, result):
        # ~1-2s typical; 30s signals an accidental complexity regression.
        assert result.wall_seconds < 30.0


@pytest.fixture
def cluster_hard_timeout():
    """SIGALRM guard: a wedged live run aborts instead of hanging CI."""

    def _alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError("live cluster smoke exceeded 120s hard timeout")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class TestClusterLauncherTeardown:
    """The live launcher must never leak processes or sockets, on any path."""

    def test_clean_run_reaps_workers_and_frees_port(
        self, cluster_hard_timeout
    ):
        from repro.cluster import ClusterConfig, launch_cluster

        before = set(multiprocessing.active_children())
        config = ClusterConfig.smoke(workers=2, tasks=10, seed=5)
        report = launch_cluster(config)

        # No orphan worker processes survive the launcher's finally block.
        leaked = [
            p
            for p in multiprocessing.active_children()
            if p not in before and p.is_alive()
        ]
        for process in leaked:
            process.terminate()
        assert leaked == []

        # The master's listening socket is closed: the port rebinds now.
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            probe.bind(("127.0.0.1", report.port))
        finally:
            probe.close()

        assert report.completed + report.expired == report.total_tasks

    def test_worker_crash_still_tears_down_cleanly(
        self, cluster_hard_timeout
    ):
        from repro.cluster import ClusterConfig, FailurePlan, launch_cluster

        before = set(multiprocessing.active_children())
        config = ClusterConfig.smoke(
            workers=2,
            tasks=12,
            seed=5,
            failure=FailurePlan(worker_index=0, after_seconds=0.5),
        )
        report = launch_cluster(config)

        leaked = [
            p
            for p in multiprocessing.active_children()
            if p not in before and p.is_alive()
        ]
        for process in leaked:
            process.terminate()
        assert leaked == []
        assert report.workers_lost == 1
