"""Scale smoke tests: the paper-sized burst runs whole and stays sane."""

import time

import pytest

from repro.experiments import ExperimentConfig, run_once


class TestPaperScaleSmoke:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig.paper(runs=1)
        started = time.perf_counter()
        result = run_once(config, "rtsads", config.base_seed)
        result.wall_seconds = time.perf_counter() - started
        return result

    def test_thousand_task_burst_completes(self, result):
        assert result.trace.total_tasks() == 1000

    def test_every_task_terminal(self, result):
        from repro.simulator import STATUS_COMPLETED, STATUS_EXPIRED

        for record in result.trace.records.values():
            assert record.status in (STATUS_COMPLETED, STATUS_EXPIRED)

    def test_theorem_at_scale(self, result):
        assert result.trace.scheduled_but_missed() == []

    def test_nontrivial_compliance(self, result):
        # The overloaded paper burst caps out near 30%; a collapse below
        # 10% or an impossible >40% both indicate calibration regressions.
        assert 0.10 < result.hit_ratio < 0.40

    def test_event_count_bounded(self, result):
        # Each task contributes O(1) events plus phases; a blow-up here
        # means the host loop is thrashing.
        assert result.events_dispatched < 100_000

    def test_runs_in_reasonable_wall_time(self, result):
        # ~1-2s typical; 30s signals an accidental complexity regression.
        assert result.wall_seconds < 30.0
