"""One experiment cell on both backends: identical RunReport schema.

This is the acceptance test of the runtime unification: a single
``ExperimentConfig`` dispatched through ``run_once`` to the simulator and
to the live TCP cluster must come back as the same ``RunReport`` shape —
identical exported keys, identical value types — so the export and figure
pipeline never needs to know where a run executed.  CI runs this same
matrix as a dedicated smoke job.
"""

from __future__ import annotations

import json
import signal

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import ExperimentConfig, run_once
from repro.metrics import report_to_json


@pytest.fixture
def hard_timeout():
    """SIGALRM guard: a wedged live run aborts instead of hanging CI."""

    def _alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError("backend matrix exceeded 120s hard timeout")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(120)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def cell():
    """A tiny, comfortably feasible cell both backends finish in seconds."""
    return ExperimentConfig.quick(
        num_transactions=16,
        num_processors=2,
        slack_factor=3.0,
        runs=1,
        base_seed=7,
    )


class TestBackendMatrix:
    def test_same_cell_same_schema_on_both_backends(self, cell, hard_timeout):
        sim = run_once(cell, "rtsads", cell.base_seed, backend="sim")
        live = run_once(cell, "rtsads", cell.base_seed, backend="cluster")

        sim_doc = json.loads(report_to_json(sim))
        live_doc = json.loads(report_to_json(live))

        # Identical keys...
        assert sorted(sim_doc) == sorted(live_doc)
        # ...and identical JSON types, phase records included.
        for key in sim_doc:
            assert type(sim_doc[key]) is type(live_doc[key]), key
        assert sim_doc["phases"] and live_doc["phases"]
        for key in sim_doc["phases"][0]:
            assert type(sim_doc["phases"][0][key]) is type(
                live_doc["phases"][0][key]
            ), f"phases[0].{key}"

        # Both saw the same workload and honored the theorem.
        assert sim_doc["backend"] == "sim"
        assert live_doc["backend"] == "cluster"
        assert sim_doc["total_tasks"] == live_doc["total_tasks"] == 16
        assert sim_doc["guaranteed_violations"] == 0
        assert live_doc["guaranteed_violations"] == 0
        for doc in (sim_doc, live_doc):
            assert (
                doc["completed"] + doc["expired"] + doc["failed"]
                == doc["total_tasks"]
            )
