"""End-to-end integration: database -> workload -> scheduler -> simulator."""

import random

import pytest

from repro.core import DCOLS, RTSADS, UniformCommunicationModel
from repro.database import DatabaseConfig, DistributedDatabase
from repro.experiments import ExperimentConfig, run_once
from repro.metrics import compliance_report, hit_ratio_by_tag, processor_balance
from repro.simulator import simulate
from repro.workload import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)

CFG = ExperimentConfig.quick(num_transactions=80, runs=1, num_processors=4)


class TestFullPipeline:
    def test_database_workload_scheduler_simulator(self):
        """Build everything by hand and run the full paper pipeline."""
        rng = random.Random(5)
        database = DistributedDatabase.build(
            config=DatabaseConfig(
                num_subdatabases=6, records_per_subdb=100, domain_size=10
            ),
            num_processors=4,
            replication_rate=0.5,
            rng=rng,
        )
        generator = TransactionWorkloadGenerator(
            database=database,
            config=TransactionWorkloadConfig(num_transactions=60, seed=5),
        )
        tasks = generator.generate_tasks()
        comm = UniformCommunicationModel(40.0)
        result = simulate(
            RTSADS(comm, per_vertex_cost=0.02),
            tasks,
            num_workers=4,
            validate_phases=True,
        )
        report = compliance_report(result.trace)
        assert report.total_tasks == 60
        assert report.scheduled_but_missed == 0
        assert report.deadline_hits > 0

    def test_affinity_respected_when_communication_prohibitive(self):
        """With huge C, tight tasks must execute on affine processors."""
        cfg = ExperimentConfig.quick(
            num_transactions=60, runs=1, num_processors=4, remote_cost=1e6
        )
        result = run_once(cfg, "rtsads", seed=2)
        for record in result.trace.records.values():
            if record.processor is not None and record.met_deadline:
                assert record.processor in record.task.affinity

    def test_execution_windows_respect_communication(self):
        result = run_once(CFG, "rtsads", seed=4)
        comm = UniformCommunicationModel(CFG.remote_cost)
        for record in result.trace.records.values():
            if record.finished_at is None:
                continue
            expected = comm.execution_cost(record.task, record.processor)
            assert record.finished_at - record.started_at == pytest.approx(
                expected
            )

    def test_per_tag_breakdown_present(self):
        result = run_once(CFG, "rtsads", seed=4)
        ratios = hit_ratio_by_tag(result.trace)
        assert set(ratios) <= {"indexed", "scan"}

    def test_work_conservation(self):
        """Completed task count equals machine-side completion counters."""
        result = run_once(CFG, "dcols", seed=4)
        completed = len(result.trace.completed())
        balance = processor_balance(result.trace, CFG.num_processors)
        assert sum(balance) == completed


class TestTheoremAtScale:
    @pytest.mark.parametrize("name", ["rtsads", "dcols", "greedy_edf",
                                      "myopic", "random"])
    def test_no_scheduled_task_ever_late(self, name):
        """The paper's theorem, enforced end-to-end for every scheduler."""
        result = run_once(CFG, name, seed=11, validate_phases=True)
        assert result.trace.scheduled_but_missed() == []

    @pytest.mark.parametrize("replication", [0.1, 0.5, 1.0])
    def test_theorem_across_replication(self, replication):
        cfg = ExperimentConfig.quick(
            num_transactions=60, runs=1, replication_rate=replication,
            num_processors=5,
        )
        for name in ("rtsads", "dcols"):
            result = run_once(cfg, name, seed=3, validate_phases=True)
            assert result.trace.scheduled_but_missed() == []

    @pytest.mark.parametrize("slack_factor", [1.0, 2.0, 3.0])
    def test_theorem_across_laxity(self, slack_factor):
        cfg = ExperimentConfig.quick(
            num_transactions=60, runs=1, slack_factor=slack_factor,
            num_processors=4,
        )
        result = run_once(cfg, "rtsads", seed=3, validate_phases=True)
        assert result.trace.scheduled_but_missed() == []
