"""Determinism audit: same seed, same everything.

Three layers:

* **Simulation path**: two ``run_once`` calls with one seed must produce
  bit-identical traces, phase timings, and makespans for both search
  schedulers (fingerprints at full float precision).
* **Cluster config path**: master and workers rebuild their workload
  independently from ``(experiment, seed)``; two rebuilds must agree on
  every database row, every replica placement, every task, and every raw
  transaction — the property the live cluster relies on instead of
  shipping tables over TCP.
* **Static audit**: no module in ``src/repro`` may draw from the process'
  global RNG (``random.random()`` and friends) or construct an unseeded
  ``random.Random()`` with no argument at call sites that feed scheduling
  state.  Every stream must flow from an explicit seed.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro
from repro.cluster.config import build_cluster_workload
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_once

from tests.differential.harness import simulation_fingerprint

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Module-level RNG functions that read the global (time-seeded) stream.
GLOBAL_RNG_FUNCTIONS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits",
}


def _config() -> ExperimentConfig:
    return (
        ExperimentConfig.quick(num_transactions=60, runs=1)
        .with_processors(5)
        .with_replication(0.3)
    )


@pytest.mark.parametrize("scheduler_name", ["rtsads", "dcols"])
def test_run_once_is_deterministic(scheduler_name: str) -> None:
    config = _config()
    first = simulation_fingerprint(run_once(config, scheduler_name, seed=424242))
    second = simulation_fingerprint(run_once(config, scheduler_name, seed=424242))
    assert first == second


def test_run_once_seed_actually_matters() -> None:
    """Guard against fingerprints that are trivially constant."""
    config = _config()
    a = simulation_fingerprint(run_once(config, "rtsads", seed=1))
    b = simulation_fingerprint(run_once(config, "rtsads", seed=2))
    assert a != b


def test_cluster_workload_rebuild_is_identical() -> None:
    config = _config()
    db1, tasks1, txns1 = build_cluster_workload(config, seed=777)
    db2, tasks2, txns2 = build_cluster_workload(config, seed=777)

    assert sorted(db1.subdatabases) == sorted(db2.subdatabases)
    for subdb_id in db1.subdatabases:
        assert db1.subdatabases[subdb_id].rows == db2.subdatabases[subdb_id].rows, (
            f"sub-database {subdb_id} rows diverged between rebuilds"
        )
        assert db1.placement.processors_holding(subdb_id) == (
            db2.placement.processors_holding(subdb_id)
        )
    # TaskSet has no container equality; compare the ordered task lists.
    assert list(tasks1) == list(tasks2)
    assert len(txns1) == len(txns2)
    assert all(t1 == t2 for t1, t2 in zip(txns1, txns2))


def test_no_global_rng_usage_in_src() -> None:
    """AST audit: every RNG in src/repro must be an explicitly seeded
    ``random.Random``; the global module-level stream is forbidden."""
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr in GLOBAL_RNG_FUNCTIONS:
                    offenders.append(
                        f"{path.relative_to(SRC_ROOT)}:{node.lineno} "
                        f"random.{func.attr}(...)"
                    )
                if func.attr == "Random" and not node.args and not node.keywords:
                    offenders.append(
                        f"{path.relative_to(SRC_ROOT)}:{node.lineno} "
                        "unseeded random.Random()"
                    )
    assert not offenders, (
        "global/unseeded RNG usage found in src/repro:\n" + "\n".join(offenders)
    )


def test_no_rng_import_in_scheduling_core_hot_path() -> None:
    """The search/cost/feasibility hot path must not even import random:
    scheduling decisions there are a pure function of the phase inputs."""
    for module in ["search", "cost", "feasibility", "representations", "reference"]:
        tree = ast.parse((SRC_ROOT / "core" / f"{module}.py").read_text())
        imported = {
            alias.name
            for node in ast.walk(tree)
            if isinstance(node, (ast.Import, ast.ImportFrom))
            for alias in node.names
        }
        assert "random" not in imported, f"core/{module}.py imports random"
