"""Smoke tests asserting the paper's qualitative result shapes.

These use reduced configurations (fewer transactions/runs) but assert the
*direction* of every claim the paper's evaluation makes.  Thresholds are
deliberately loose — they guard the phenomenon, not the exact numbers.
"""

import pytest

from repro.experiments import ExperimentConfig, run_cell

BASE = ExperimentConfig.quick(runs=2)


@pytest.fixture(scope="module")
def sweep_cells():
    """Hit percentages for both algorithms at m in {2, 6, 10}."""
    cells = {}
    for m in (2, 6, 10):
        for name in ("rtsads", "dcols"):
            cells[(name, m)] = run_cell(BASE.with_processors(m), name)
    return cells


class TestFigure5Shape(object):
    def test_rtsads_scales_up(self, sweep_cells):
        """RT-SADS increases deadline compliance as processors are added."""
        series = [
            sweep_cells[("rtsads", m)].mean_hit_percent for m in (2, 6, 10)
        ]
        assert series[0] < series[1] < series[2]
        assert series[2] - series[0] > 20.0  # substantial gain

    def test_rtsads_dominates_dcols_at_scale(self, sweep_cells):
        for m in (6, 10):
            assert (
                sweep_cells[("rtsads", m)].mean_hit_percent
                > sweep_cells[("dcols", m)].mean_hit_percent
            )

    def test_gap_grows_with_processors(self, sweep_cells):
        """The paper: RT-SADS outperforms by more as m increases."""
        gap_small = (
            sweep_cells[("rtsads", 2)].mean_hit_percent
            - sweep_cells[("dcols", 2)].mean_hit_percent
        )
        gap_large = (
            sweep_cells[("rtsads", 10)].mean_hit_percent
            - sweep_cells[("dcols", 10)].mean_hit_percent
        )
        assert gap_large > gap_small

    def test_dcols_dead_ends_dominate(self, sweep_cells):
        """Section 3 conjecture: the sequence representation dead-ends."""
        assert sweep_cells[("dcols", 10)].mean_dead_end_rate > 0.5
        assert sweep_cells[("rtsads", 10)].mean_dead_end_rate < 0.5


class TestFigure6Shape:
    @pytest.fixture(scope="class")
    def replication_cells(self):
        cells = {}
        for rate in (0.1, 1.0):
            for name in ("rtsads", "dcols"):
                cells[(name, rate)] = run_cell(
                    BASE.with_replication(rate), name
                )
        return cells

    def test_dcols_improves_with_replication(self, replication_cells):
        assert (
            replication_cells[("dcols", 1.0)].mean_hit_percent
            > replication_cells[("dcols", 0.1)].mean_hit_percent
        )

    def test_rtsads_above_dcols_at_every_rate(self, replication_cells):
        for rate in (0.1, 1.0):
            assert (
                replication_cells[("rtsads", rate)].mean_hit_percent
                >= replication_cells[("dcols", rate)].mean_hit_percent
            )

    def test_rtsads_robust_to_low_replication(self, replication_cells):
        """RT-SADS degrades far less than D-COLS when replication drops."""
        rtsads_drop = (
            replication_cells[("rtsads", 1.0)].mean_hit_percent
            - replication_cells[("rtsads", 0.1)].mean_hit_percent
        )
        dcols_drop = (
            replication_cells[("dcols", 1.0)].mean_hit_percent
            - replication_cells[("dcols", 0.1)].mean_hit_percent
        )
        assert rtsads_drop < dcols_drop
