"""A4: interconnect-model ablation.

The paper's cost model assumes wormhole (cut-through) routing makes the
communication cost distance-independent.  This bench swaps in
store-and-forward per-hop costs over a 2-D mesh, calibrated to the same
mean remote cost, and checks the headline conclusion (RT-SADS > D-COLS)
survives the change of routing assumption.
"""

from conftest import bench_config

from repro.experiments import ablation_interconnect


def test_interconnect_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: ablation_interconnect(config), rounds=1, iterations=1
    )
    print()
    print(result.render())

    for row in result.rows:
        label, rtsads, dcols = row
        assert rtsads >= dcols, (
            f"RT-SADS must dominate under {label!r}"
        )
