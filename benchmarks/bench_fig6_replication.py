"""E2 / paper Figure 6: deadline compliance vs replication rate.

Regenerates the figure's series (hit ratio for RT-SADS and D-COLS across
replication rates 10%..100% at P = 10, SF = 1).  Expected shape: D-COLS
rises steeply with the replication rate; RT-SADS stays high throughout and
above D-COLS at every rate.
"""

from conftest import bench_config

from repro.experiments import figure6

RATES = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_fig6_replication_sweep(benchmark):
    config = bench_config()

    result = benchmark.pedantic(
        lambda: figure6(config, replication_rates=RATES),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.render())

    rtsads = result.figure.series_by_label("RT-SADS").values
    dcols = result.figure.series_by_label("D-COLS").values
    assert dcols[-1] > dcols[0], "D-COLS must improve with replication"
    assert all(r >= d for r, d in zip(rtsads, dcols)), (
        "RT-SADS must stay above D-COLS at every replication rate"
    )
    # RT-SADS is robust to low replication; D-COLS is not.
    assert (rtsads[-1] - rtsads[0]) < (dcols[-1] - dcols[0])


def test_fig6_low_replication_cell(benchmark):
    """Unit of work: the hardest cell (R=10%), both algorithms."""
    from repro.experiments import run_once

    config = bench_config(runs=1, replication_rate=0.1)

    def run_pair():
        return (
            run_once(config, "rtsads", config.base_seed),
            run_once(config, "dcols", config.base_seed),
        )

    rtsads, dcols = benchmark(run_pair)
    assert rtsads.trace.scheduled_but_missed() == []
    assert dcols.trace.scheduled_but_missed() == []
