"""A2: cost-function / heuristic ablation (paper Section 4.4).

Swaps RT-SADS's load-balancing cost function ``CE`` for the
earliest-finish heuristic, a min-slack heuristic, and no heuristic at all,
holding everything else fixed.  The paper credits ``CE`` with
simultaneously balancing load and avoiding communication.
"""

from conftest import bench_config

from repro.experiments import ablation_cost


def test_cost_function_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: ablation_cost(config), rounds=1, iterations=1
    )
    print()
    print(result.render())

    by_label = {row[0]: row for row in result.rows}
    load_balancing = by_label["load_balancing"]
    fifo = by_label["fifo"]
    # The informed evaluators must not lose to the no-heuristic baseline.
    assert load_balancing[1] >= fifo[1] - 2.0
    # Load balancing must actually spread work across processors.
    assert load_balancing[2] >= fifo[2] - 1e-9
