"""Instrumentation overhead regression check.

Observability must stay cheap enough to leave on when it matters: this
benchmark times the same experiment cell with instrumentation disabled
(the tier-1 default) and with full tracing into an in-memory sink (the
``--trace-out`` hot path minus the file write, which
:class:`~repro.observability.sinks.JsonlSink` flushes per line by
design), and fails when tracing costs more than :data:`MAX_SLOWDOWN`
times the uninstrumented run.

The threshold is deliberately generous — tracing stamps every task
transition and phase span, so some cost is expected; what the bar
catches is an accidental hot-path regression (instrumentation calls
leaking inside the search inner loop, an event per vertex expansion,
and the like), which shows up as an order of magnitude, not a factor.

Headline numbers land in ``results/BENCH_instrumentation.json``.
"""

import time

from conftest import record_metric

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_once
from repro.observability import (
    OFF,
    Instrumentation,
    MemorySink,
    StructuredLogger,
    instrumented,
)

#: Acceptance bar: full tracing may cost at most this factor over the
#: uninstrumented run (generous; a hot-path leak overshoots it by 10x+).
MAX_SLOWDOWN = 3.0

#: Timing repetitions; best-of filters scheduler noise on shared runners.
REPEATS = 5


def _cell_config():
    return ExperimentConfig.quick(
        num_transactions=120, num_processors=4, runs=1, base_seed=1998
    )


def _best_of(run, repeats=REPEATS):
    """Minimum wall time over ``repeats`` runs (noise-resistant)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return min(samples), samples


def test_enabled_tracing_overhead_bounded():
    config = _cell_config()
    seed = config.seeds()[0]

    def disabled_run():
        run_once(config, "rtsads", seed)

    def traced_run():
        obs = Instrumentation(
            sink=MemorySink(), logger=StructuredLogger(level=OFF)
        )
        with instrumented(obs):
            run_once(config, "rtsads", seed)

    # Warm both paths once (imports, allocator) before timing.
    disabled_run()
    traced_run()

    disabled, disabled_samples = _best_of(disabled_run)
    traced, traced_samples = _best_of(traced_run)
    slowdown = traced / disabled

    record_metric(
        "instrumentation",
        "disabled_run_seconds",
        samples=disabled_samples,
        unit="s",
    )
    record_metric(
        "instrumentation",
        "traced_run_seconds",
        samples=traced_samples,
        unit="s",
    )
    record_metric(
        "instrumentation",
        "traced_slowdown",
        slowdown=round(slowdown, 3),
        threshold=MAX_SLOWDOWN,
    )

    assert slowdown <= MAX_SLOWDOWN, (
        f"tracing slowed the run {slowdown:.2f}x "
        f"(disabled {disabled:.4f}s, traced {traced:.4f}s); "
        f"the bar is {MAX_SLOWDOWN}x — an instrumentation call likely "
        f"leaked into the search hot path"
    )


def test_traced_events_actually_flow():
    """The overhead number is meaningless if tracing silently no-ops."""
    config = _cell_config()
    sink = MemorySink()
    obs = Instrumentation(sink=sink, logger=StructuredLogger(level=OFF))
    with instrumented(obs):
        run_once(config, "rtsads", config.seeds()[0])
    kinds = {event.get("event") for event in sink.events}
    assert {"run_start", "run_end", "span", "task"} <= kinds, kinds
