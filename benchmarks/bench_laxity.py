"""E3: the laxity (SF) sweep described in Section 5.1.

"SF values range from 1 to 3.  A low value of SF signifies tight deadlines
whereas a high value of SF signifies loose deadlines. ... In all parameters
configuration, RT-SADS outperforms the sequence-oriented based algorithm
D-COLS."  This bench regenerates the processor sweep at SF in {1, 2, 3} and
asserts both that compliance rises with laxity and that RT-SADS wins at
scale under every SF.
"""

from conftest import bench_config

from repro.experiments import laxity_sweep

PROCESSORS = (2, 6, 10)
SLACK_FACTORS = (1.0, 2.0, 3.0)


def test_laxity_sweep(benchmark):
    config = bench_config()

    result = benchmark.pedantic(
        lambda: laxity_sweep(
            config, slack_factors=SLACK_FACTORS, processors=PROCESSORS
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.render())

    final_rtsads = {}
    for sf, sweep in result.sweeps.items():
        rtsads = sweep.figure.series_by_label("RT-SADS").values
        dcols = sweep.figure.series_by_label("D-COLS").values
        final_rtsads[sf] = rtsads[-1]
        assert rtsads[-1] >= dcols[-1], (
            f"RT-SADS must win at m={PROCESSORS[-1]} for SF={sf}"
        )
    # Looser deadlines mean higher compliance for the paper's algorithm.
    assert final_rtsads[3.0] >= final_rtsads[1.0]


def test_laxity_single_cell_sf3(benchmark):
    from repro.experiments import run_once

    config = bench_config(runs=1, slack_factor=3.0)
    result = benchmark(lambda: run_once(config, "rtsads", config.base_seed))
    assert result.trace.scheduled_but_missed() == []
