"""X1: resource-reclaiming extension (the paper's reference [3]).

Not a paper figure — the paper schedules with worst-case estimates and the
Paragon executed them as such.  This bench quantifies what the runtime's
automatic reclaiming buys when execution undercuts the worst case, using
the real database's first-match early exit among other models.
"""

from conftest import bench_config

from repro.experiments import extension_reclaiming


def test_reclaiming_extension(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: extension_reclaiming(config), rounds=1, iterations=1
    )
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    worst = rows["worst-case (paper)"]
    scaled = rows["scaled 50%"]
    # Reclaiming must never hurt compliance and must shorten the makespan.
    assert scaled[1] >= worst[1] - 1e-9
    assert scaled[3] < worst[3]
    assert worst[2] == 0.0  # no reclaimed time without early completion
    assert scaled[2] > 0.0
