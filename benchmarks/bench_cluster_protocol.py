"""Microbenchmarks of the live cluster's wire layer.

Not a paper figure — these bound the messaging tax the live runtime pays
on top of scheduling: pack/unpack throughput of the length-prefixed JSON
protocol, incremental frame decoding, and full round-trip latency over a
real localhost TCP socket (hub on one end, worker channel on the other).
If messages/sec here ever drops near the per-phase dispatch rate, the
master's selector loop — not the scheduler — becomes the bottleneck.
"""

from __future__ import annotations

from repro.cluster import protocol
from repro.cluster.network import CONNECT, MESSAGE, MessageHub, WorkerChannel
from repro.cluster.protocol import HEADER, FrameDecoder, pack, unpack

#: The hottest message on the wire: one per scheduled task.
ASSIGN_MESSAGE = protocol.assign(
    task_id=1234,
    worker_id=7,
    total_cost=523.5,
    communication_cost=80.0,
    deadline=9_876.25,
)

BATCH_SIZE = 1_000


def test_pack_throughput(benchmark):
    def pack_batch():
        frame = b""
        for _ in range(BATCH_SIZE):
            frame = pack(ASSIGN_MESSAGE)
        return frame

    frame = benchmark(pack_batch)
    assert len(frame) > HEADER.size
    if getattr(benchmark, "stats", None):  # absent under --benchmark-disable
        rate = BATCH_SIZE / benchmark.stats.stats.mean
        print(f"\npack: {rate:,.0f} messages/sec")


def test_unpack_throughput(benchmark):
    body = pack(ASSIGN_MESSAGE)[HEADER.size:]

    def unpack_batch():
        message = None
        for _ in range(BATCH_SIZE):
            message = unpack(body)
        return message

    message = benchmark(unpack_batch)
    assert message["task_id"] == 1234
    if getattr(benchmark, "stats", None):
        rate = BATCH_SIZE / benchmark.stats.stats.mean
        print(f"\nunpack: {rate:,.0f} messages/sec")


def test_frame_decoder_throughput(benchmark):
    """Decoder fed realistic bursts: many frames per feed() call."""
    burst = pack(ASSIGN_MESSAGE) * 50

    def decode_bursts():
        decoder = FrameDecoder()
        total = 0
        for _ in range(BATCH_SIZE // 50):
            total += len(decoder.feed(burst))
        return total

    assert benchmark(decode_bursts) == BATCH_SIZE


def test_localhost_round_trip_latency(benchmark):
    """One ASSIGN out, one TASK_DONE back, over a real TCP socket pair.

    The benchmarked unit is a single full round trip, so the reported mean
    IS the localhost messaging latency the guarantee margin must absorb.
    """
    hub = MessageHub()
    channel = WorkerChannel.connect(hub.host, hub.port, timeout=5.0)
    try:
        conn_id = None
        for _ in range(200):
            for event in hub.poll(0.02):
                if event.kind == CONNECT:
                    conn_id = event.conn_id
            if conn_id is not None:
                break
        assert conn_id is not None

        reply = protocol.task_done(
            task_id=1234,
            worker_id=7,
            actual_cost=500.0,
            estimated_cost=523.5,
            exec_seconds=0.5,
        )

        def round_trip():
            hub.send(conn_id, ASSIGN_MESSAGE)
            received = []
            while not received:
                received = channel.poll(1.0)
            channel.send(reply)
            answered = []
            while not any(e.kind == MESSAGE for e in answered):
                answered = hub.poll(1.0)
            return received[0], answered

        received, answered = benchmark(round_trip)
        assert received["type"] == protocol.ASSIGN
        if getattr(benchmark, "stats", None):
            latency_us = benchmark.stats.stats.mean * 1e6
            print(f"\nround trip: {latency_us:,.0f} us mean")
    finally:
        channel.close()
        hub.close()
