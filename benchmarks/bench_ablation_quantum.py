"""A1: quantum-allocation ablation (paper Section 4.2 motivation).

Compares the self-adjusting ``max(Min_Slack, Min_Load)`` criterion against
its single-term components and fixed quanta.  The paper's claim: the
adaptive criterion both protects batch deadlines (short quanta under
pressure) and buys schedule quality (long quanta when workers are busy).
"""

from conftest import bench_config

from repro.experiments import ablation_quantum


def test_quantum_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: ablation_quantum(config), rounds=1, iterations=1
    )
    print()
    print(result.render())

    by_label = {row[0]: row[1] for row in result.rows}
    adaptive = by_label["self-adjusting (paper)"]
    tiny = next(v for k, v in by_label.items() if k.startswith("fixed tiny"))
    long_ = next(v for k, v in by_label.items() if k.startswith("fixed long"))
    # The adaptive criterion needs no tuning and must clearly beat both
    # degenerate fixed extremes: too-short quanta starve the search, too-long
    # quanta push the feasibility bound out until waiting tasks expire.
    assert adaptive > tiny + 5.0
    assert adaptive > long_ + 5.0
    # ... and it must track the best policy of the table closely.
    assert adaptive >= max(by_label.values()) - 12.0
