"""X4: fault injection — fail-stop processor crashes (extension).

Crashes kill the in-flight task and hand queued work back to the host for
rescheduling on the survivors.  Dynamic scheduling must degrade gracefully
(roughly proportional to the lost capacity), never collapse, and the
deadline guarantee must hold for everything that still completes.
"""

from conftest import bench_config

from repro.experiments import extension_failures

FAILURE_COUNTS = (0, 1, 3)


def test_failure_injection_extension(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: extension_failures(config, failure_counts=FAILURE_COUNTS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    rtsads = [row[1] for row in result.rows]
    dcols = [row[2] for row in result.rows]
    # Compliance never rises with more crashes and never collapses.
    assert all(a >= b - 1.0 for a, b in zip(rtsads, rtsads[1:]))
    lost_fraction = FAILURE_COUNTS[-1] / config.num_processors
    assert rtsads[-1] >= rtsads[0] * (1.0 - 2.0 * lost_fraction)
    # RT-SADS routes around failures at least as well as D-COLS.
    assert all(r >= d for r, d in zip(rtsads, dcols))
