"""A3: representation-only ablation (paper Section 3 conjectures).

Identical quantum policy, evaluator, and per-vertex costs — only the search
representation differs.  The paper's conjecture: pruned sequence-oriented
search dead-ends often, terminates shallow, and uses only a fraction of the
processors, while assignment-oriented search exploits every resource
greedily.  The printed table shows exactly those quantities.
"""

from conftest import bench_config

from repro.experiments import ablation_representation


def test_representation_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: ablation_representation(config), rounds=1, iterations=1
    )
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    rtsads, dcols = rows["RT-SADS"], rows["D-COLS"]
    # hit ratio: assignment-oriented wins.
    assert rtsads[1] > dcols[1]
    # dead-end rate: the sequence representation dead-ends overwhelmingly.
    assert dcols[2] > rtsads[2]
    # schedule depth per phase: assignment-oriented goes deeper.
    assert rtsads[3] > dcols[3]
