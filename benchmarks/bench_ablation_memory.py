"""A5: bounded scheduling memory (candidate-list size).

The paper's CL stores every feasible successor; a real host processor has
finite scheduling memory.  Our CL drops the oldest (shallowest) candidates
beyond a bound — this bench shows depth-first phases tolerate very small
bounds with no compliance loss, so the algorithm is deployable with O(m)
scheduling memory per level rather than O(search-tree).
"""

from conftest import bench_config

from repro.experiments import ablation_memory

CL_BOUNDS = (8, 256, None)


def test_memory_bound_ablation(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: ablation_memory(config, cl_bounds=CL_BOUNDS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    by_label = {row[0]: row[1] for row in result.rows}
    unbounded = by_label["unbounded"]
    tiny = by_label["8"]
    # A tiny CL must not cost more than a few points of compliance.
    assert tiny >= unbounded - 5.0
