"""X3: read/write transaction mix (extension; the paper is read-only).

Sweeps the fraction of update transactions.  Writes execute at their
partition's primary copy under primary-copy replication; the bench asserts
RT-SADS keeps its advantage over D-COLS at every mix (see the extension's
docstring for the two opposing effects at play).
"""

from conftest import bench_config

from repro.experiments import extension_write_mix

WRITE_FRACTIONS = (0.0, 0.2, 0.5)


def test_write_mix_extension(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: extension_write_mix(config, write_fractions=WRITE_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    for row in result.rows:
        fraction, rtsads, dcols = row
        assert rtsads >= dcols, (
            f"RT-SADS must dominate at write fraction {fraction}"
        )
