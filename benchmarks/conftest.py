"""Shared benchmark configuration and machine-readable result emission.

Figure benchmarks run the reduced `quick` scale by default so the whole
suite finishes in minutes; set ``REPRO_BENCH_PAPER=1`` to run the full
Section-5.1 scale (1000 transactions, 10 runs per cell — slow).

Benchmarks record their headline numbers through :func:`record_metric`;
at session end each report is written as ``results/BENCH_<report>.json``
(e.g. ``BENCH_search.json``, ``BENCH_fig5.json``).  The files are plain
JSON so ``benchmarks/compare.py`` can diff two snapshots.
"""

import json
import os
import statistics
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: report name -> {metric name -> payload}; populated during the session.
_REPORTS: Dict[str, Dict[str, dict]] = {}


def bench_config(**overrides) -> ExperimentConfig:
    if os.environ.get("REPRO_BENCH_PAPER"):
        return ExperimentConfig.paper(**overrides)
    defaults = dict(num_transactions=150, runs=3)
    defaults.update(overrides)
    return ExperimentConfig.quick(**defaults)


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return bool(os.environ.get("REPRO_BENCH_PAPER"))


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    rank = max(1, -(-int(q * len(ordered) * 100) // 100))  # ceil without float
    return ordered[min(rank, len(ordered)) - 1]


def summarize(samples: Sequence[float]) -> dict:
    """mean/p50/p95 summary of a numeric sample, as compare.py expects."""
    ordered = sorted(float(s) for s in samples)
    return {
        "mean": statistics.fmean(ordered),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "min": ordered[0],
        "max": ordered[-1],
        "samples": len(ordered),
    }


def record_metric(
    report: str,
    name: str,
    samples: Optional[Sequence[float]] = None,
    unit: str = "",
    **extra,
) -> None:
    """Record one benchmark metric for ``results/BENCH_<report>.json``.

    ``samples`` (if given) is summarized to mean/p50/p95; scalar facts go
    in ``extra`` verbatim.  Re-recording a name overwrites it, so re-runs
    of a benchmark converge on the last measurement.
    """
    payload: dict = {}
    if samples is not None:
        payload.update(summarize(samples))
    if unit:
        payload["unit"] = unit
    payload.update(extra)
    _REPORTS.setdefault(report, {})[name] = payload


def pytest_sessionfinish(session, exitstatus):
    for report, metrics in sorted(_REPORTS.items()):
        document = {
            "report": report,
            "scale": "paper" if os.environ.get("REPRO_BENCH_PAPER") else "quick",
            "metrics": metrics,
        }
        path = RESULTS_DIR / f"BENCH_{report}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
