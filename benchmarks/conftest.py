"""Shared benchmark configuration.

Figure benchmarks run the reduced `quick` scale by default so the whole
suite finishes in minutes; set ``REPRO_BENCH_PAPER=1`` to run the full
Section-5.1 scale (1000 transactions, 10 runs per cell — slow).
"""

import os

import pytest

from repro.experiments import ExperimentConfig


def bench_config(**overrides) -> ExperimentConfig:
    if os.environ.get("REPRO_BENCH_PAPER"):
        return ExperimentConfig.paper(**overrides)
    defaults = dict(num_transactions=150, runs=3)
    defaults.update(overrides)
    return ExperimentConfig.quick(**defaults)


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return bool(os.environ.get("REPRO_BENCH_PAPER"))
