"""E1 / paper Figure 5: deadline scalability vs processor count.

Regenerates the figure's series (deadline hit ratio for RT-SADS and D-COLS
at m = 2..10, R = 30%, SF = 1) and prints them, while benchmarking the cost
of the full sweep.  Expected shape (see EXPERIMENTS.md): RT-SADS's curve
rises toward the high end, D-COLS's stays far lower, and the gap grows with
the processor count.
"""

from bench_search_micro import timing_samples
from conftest import bench_config, record_metric

from repro.experiments import figure5
from repro.metrics import comparison_summary

PROCESSORS = (2, 4, 6, 8, 10)


def test_fig5_scalability_sweep(benchmark):
    config = bench_config()

    result = benchmark.pedantic(
        lambda: figure5(config, processors=PROCESSORS),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.render())
    summary = comparison_summary(result.figure, "RT-SADS", "D-COLS")
    print(
        f"\nRT-SADS max advantage over D-COLS: "
        f"{summary['max_advantage']:.1f} points "
        f"({summary['final_advantage']:.1f} at m={PROCESSORS[-1]})"
    )

    for (name, m), cell in sorted(result.cells.items()):
        record_metric(
            "fig5",
            f"{name}_hit_percent_m{m}",
            samples=cell.hit_percents,
            unit="%",
        )

    # Guard the paper's qualitative claims.
    rtsads = result.figure.series_by_label("RT-SADS").values
    dcols = result.figure.series_by_label("D-COLS").values
    assert rtsads[-1] > rtsads[0], "RT-SADS must scale up"
    assert rtsads[-1] > dcols[-1], "RT-SADS must win at the high end"
    assert (rtsads[-1] - dcols[-1]) > (rtsads[0] - dcols[0]), (
        "the gap must grow with processors"
    )


def test_fig5_parallel_sweep(benchmark, tmp_path):
    """The same sweep through the parallel engine, plus the cache-hit path.

    Three guarantees measured and asserted in one pass: a pooled sweep
    (jobs=2) produces exactly the serial result, a warm-cache re-run
    executes zero cells, and the cache-hit pass is what the benchmark
    times (the expensive cold passes run once outside the timer).
    """
    from repro.experiments import run_grid

    config = bench_config()
    serial = figure5(config, processors=PROCESSORS)
    specs = [
        (config.with_processors(m), name)
        for name in ("rtsads", "dcols")
        for m in PROCESSORS
    ]
    cold = run_grid(specs, jobs=2, cache_dir=str(tmp_path))
    assert cold.stats.executed == cold.stats.total_cells

    warm = benchmark.pedantic(
        lambda: run_grid(specs, jobs=2, cache_dir=str(tmp_path)),
        rounds=3,
        iterations=1,
    )
    assert warm.stats.executed == 0, "warm cache must re-execute nothing"
    record_metric(
        "fig5",
        "parallel_sweep_cache_hit_seconds",
        samples=timing_samples(benchmark),
        unit="s",
    )

    # The pooled/cached cells must be bit-identical to the serial figure.
    for cell in warm.cells:
        m = cell.config.num_processors
        assert (
            cell.hit_percents
            == serial.cells[(cell.scheduler_name, m)].hit_percents
        )


def _record_cell_vertices(name: str, result) -> None:
    """Per-phase search effort: vertices the quantum actually bought."""
    record_metric(
        "fig5",
        f"{name}_vertices_per_quantum",
        samples=[phase.vertices_generated for phase in result.phases],
        unit="vertices",
    )


def test_fig5_single_cell_rtsads(benchmark):
    """Unit of work: one full simulation at m=10 (RT-SADS)."""
    from repro.experiments import run_once

    config = bench_config(runs=1)
    result = benchmark(lambda: run_once(config, "rtsads", config.base_seed))
    assert result.trace.scheduled_but_missed() == []
    record_metric(
        "fig5", "rtsads_cell_seconds", samples=timing_samples(benchmark), unit="s"
    )
    _record_cell_vertices("rtsads", result)


def test_fig5_single_cell_dcols(benchmark):
    """Unit of work: one full simulation at m=10 (D-COLS)."""
    from repro.experiments import run_once

    config = bench_config(runs=1)
    result = benchmark(lambda: run_once(config, "dcols", config.base_seed))
    assert result.trace.scheduled_but_missed() == []
    record_metric(
        "fig5", "dcols_cell_seconds", samples=timing_samples(benchmark), unit="s"
    )
    _record_cell_vertices("dcols", result)
