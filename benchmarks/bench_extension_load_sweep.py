"""X2: open-system load sweep (extension beyond the paper's burst).

Poisson transaction arrivals at increasing fractions of machine capacity.
Expected shape: both algorithms degrade as offered load crosses 1.0, but
RT-SADS degrades gracefully while D-COLS is already compromised below
capacity by its dead-end-prone representation.
"""

from conftest import bench_config

from repro.experiments import extension_load_sweep

LOAD_FACTORS = (0.4, 0.8, 1.2, 1.6)


def test_load_sweep_extension(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: extension_load_sweep(config, load_factors=LOAD_FACTORS),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    rtsads = [row[1] for row in result.rows]
    dcols = [row[2] for row in result.rows]
    # Compliance falls as offered load rises past capacity.
    assert rtsads[0] > rtsads[-1]
    # RT-SADS stays above D-COLS at every load level.
    assert all(r >= d for r, d in zip(rtsads, dcols))
    # Below capacity RT-SADS keeps compliance high.
    assert rtsads[0] > 90.0
