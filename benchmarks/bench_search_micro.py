"""Microbenchmarks of the search substrate itself.

Not a paper figure — these keep the engine honest: vertex expansion rates
for both representations, candidate-list operations, quantum policy cost,
the discrete-event engine's dispatch rate, and — the headline of the
hot-path optimization work — the optimized expander's speedup over the
frozen reference implementation in :mod:`repro.core.reference`.
Regressions here silently inflate every experiment above.

Headline numbers land in ``results/BENCH_search.json`` (see conftest).
"""

import random
import statistics
import time

from conftest import record_metric

from repro.core import (
    AssignmentOrientedExpander,
    CandidateList,
    LoadBalancingEvaluator,
    PhaseContext,
    SelfAdjustingQuantum,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    VirtualTimeBudget,
    make_child,
    make_root,
    make_task,
    run_search,
)
from repro.core import reference
from repro.simulator import SimulationEngine

#: Acceptance bar for the hot-path optimization: vertices expanded per
#: second of search, optimized vs frozen reference, same quantum.
SPEEDUP_TARGET = 1.5


def timing_samples(benchmark):
    """Raw timing samples, or None under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    return stats.stats.data if stats is not None else None


def _tasks(n, m, seed=0):
    rng = random.Random(seed)
    tasks = []
    for task_id in range(n):
        p = rng.uniform(5.0, 50.0)
        affinity = frozenset(
            proc for proc in range(m) if rng.random() < 0.4
        ) or frozenset({rng.randrange(m)})
        tasks.append(
            make_task(task_id, processing_time=p, deadline=p * 20.0,
                      affinity=affinity)
        )
    return tasks


def _ctx(n=200, m=8, quantum=200.0):
    return PhaseContext(
        tasks=sorted(_tasks(n, m), key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=UniformCommunicationModel(40.0),
        phase_start=0.0,
        quantum=quantum,
        initial_offsets=(0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


def test_assignment_oriented_search_rate(benchmark):
    ctx = _ctx()

    def search():
        return run_search(
            ctx,
            AssignmentOrientedExpander(),
            VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01),
        )

    outcome = benchmark(search)
    assert outcome.best.depth > 0
    record_metric(
        "search",
        "assignment_search_seconds",
        samples=timing_samples(benchmark),
        unit="s",
        vertices_per_quantum=outcome.stats.vertices_generated,
    )


def test_sequence_oriented_search_rate(benchmark):
    ctx = _ctx()

    def search():
        return run_search(
            ctx,
            SequenceOrientedExpander(),
            VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01),
        )

    outcome = benchmark(search)
    assert outcome.stats.vertices_generated > 0
    record_metric(
        "search",
        "sequence_search_seconds",
        samples=timing_samples(benchmark),
        unit="s",
        vertices_per_quantum=outcome.stats.vertices_generated,
    )


def _expansion_rates(run, ctx, expander_factory, budget_factory, repeats):
    """Vertices generated per second of search, one sample per repeat."""
    rates = []
    for _ in range(repeats):
        budget = budget_factory()
        start = time.perf_counter()
        outcome = run(ctx, expander_factory(), budget)
        elapsed = time.perf_counter() - start
        rates.append(outcome.stats.vertices_generated / elapsed)
    return rates, outcome


def _speedup_cell(m, repeats=15, n=200):
    """Optimized vs reference expansion rate on one workload size."""
    budget = lambda: VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01)
    opt_rates, opt_out = _expansion_rates(
        run_search,
        _ctx(n=n, m=m),
        AssignmentOrientedExpander,
        budget,
        repeats,
    )
    ref_ctx = PhaseContext(
        tasks=sorted(_tasks(n, m), key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=UniformCommunicationModel(40.0),
        phase_start=0.0,
        quantum=200.0,
        initial_offsets=(0.0,) * m,
        evaluator=reference.ReferenceLoadBalancingEvaluator(),
    )
    ref_rates, ref_out = _expansion_rates(
        reference.run_search,
        ref_ctx,
        reference.ReferenceAssignmentOrientedExpander,
        budget,
        repeats,
    )
    # Same quantum must buy the same tree — the speedup is pure overhead
    # reduction, not a different search.
    assert opt_out.stats.vertices_generated == ref_out.stats.vertices_generated
    assert opt_out.best.depth == ref_out.best.depth
    assert opt_out.best.scheduled_end == ref_out.best.scheduled_end
    return opt_rates, ref_rates


def test_optimized_vs_reference_speedup():
    """The tentpole acceptance bar: >= 1.5x vertices expanded per unit of
    wall clock against the frozen reference, on the assignment-oriented
    (RT-SADS) representation the paper's scalability claim rests on."""
    results = {}
    for m in (8, 16):
        opt_rates, ref_rates = _speedup_cell(m)
        speedup = statistics.median(opt_rates) / statistics.median(ref_rates)
        results[m] = speedup
        record_metric(
            "search",
            f"optimized_rate_m{m}",
            samples=opt_rates,
            unit="vertices/s",
        )
        record_metric(
            "search",
            f"reference_rate_m{m}",
            samples=ref_rates,
            unit="vertices/s",
        )
        record_metric("search", f"speedup_vs_reference_m{m}", speedup=speedup)
    best = max(results.values())
    record_metric("search", "speedup_vs_reference_best", speedup=best)
    assert best >= SPEEDUP_TARGET, (
        f"hot-path speedup {best:.2f}x fell below the {SPEEDUP_TARGET}x bar "
        f"(per-m: {', '.join(f'm={m}: {s:.2f}x' for m, s in results.items())})"
    )


def test_candidate_list_throughput(benchmark):
    root = make_root((0.0,) * 4)
    block = [make_child(root, i, i % 4, 10.0, 0.0) for i in range(16)]

    def churn():
        cl = CandidateList(max_size=4096)
        for _ in range(200):
            cl.push_block(block)
            for _ in range(8):
                cl.pop()
        return len(cl)

    assert benchmark(churn) > 0


def test_quantum_policy_cost(benchmark):
    tasks = _tasks(500, 8)
    loads = [float(i) for i in range(8)]
    policy = SelfAdjustingQuantum()
    value = benchmark(lambda: policy.quantum(tasks, loads, now=10.0))
    assert value > 0


def test_event_engine_dispatch_rate(benchmark):
    class Tick:
        pass

    def run_engine():
        engine = SimulationEngine()
        count = [0]

        def handler(now, event):
            count[0] += 1
            if count[0] < 5000:
                engine.schedule_after(1.0, Tick())

        engine.subscribe(Tick, handler)
        engine.schedule_at(0.0, Tick())
        engine.run()
        return count[0]

    assert benchmark(run_engine) == 5000


def _schedule_phase(scheduler, tasks, m):
    loads = (0.0,) * m
    quantum = scheduler.plan_quantum(tasks, loads, now=0.0)
    return scheduler.schedule_phase(tasks, loads, now=0.0, quantum=quantum)


def test_phase_instrumentation_disabled_overhead(benchmark):
    """The off-by-default path: must track the uninstrumented seed (<5%)."""
    from repro.core import RTSADS

    m = 8
    tasks = _tasks(120, m, seed=3)
    scheduler = RTSADS(UniformCommunicationModel(40.0))
    result = benchmark(lambda: _schedule_phase(scheduler, tasks, m))
    assert len(result.schedule) > 0


def test_phase_instrumentation_enabled_overhead(benchmark):
    """Full instrumentation: spans + counters + a memory trace sink."""
    from repro.core import RTSADS
    from repro.observability import Instrumentation, MemorySink

    m = 8
    tasks = _tasks(120, m, seed=3)
    obs = Instrumentation(sink=MemorySink())
    scheduler = RTSADS(UniformCommunicationModel(40.0), instrumentation=obs)
    result = benchmark(lambda: _schedule_phase(scheduler, tasks, m))
    assert len(result.schedule) > 0
    assert obs.metrics.snapshot()["counters"]["scheduler_phases{scheduler=RT-SADS}"] > 0
