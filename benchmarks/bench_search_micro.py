"""Microbenchmarks of the search substrate itself.

Not a paper figure — these keep the engine honest: vertex expansion rates
for both representations, candidate-list operations, quantum policy cost,
the discrete-event engine's dispatch rate, the optimized expander's
speedup over the frozen reference implementation in
:mod:`repro.core.reference`, and the vectorized kernel's speedup over the
scalar kernel on the kernel × m × R grid (see ``docs/PERFORMANCE.md``).
Regressions here silently inflate every experiment above.

Headline numbers land in ``results/BENCH_search.json`` (see conftest).
"""

import random
import statistics
import time

import pytest

from conftest import record_metric

from repro.core import (
    AssignmentOrientedExpander,
    CandidateList,
    LoadBalancingEvaluator,
    PhaseContext,
    SelfAdjustingQuantum,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    VirtualTimeBudget,
    get_kernel,
    make_child,
    make_root,
    make_task,
    numpy_available,
    run_search,
)
from repro.core import reference
from repro.simulator import SimulationEngine

#: Acceptance bar for the hot-path optimization: vertices expanded per
#: second of search, optimized vs frozen reference, same quantum.
SPEEDUP_TARGET = 1.5

#: Acceptance bar for the vectorized kernel: mean speedup over the scalar
#: kernel across the m=16 cells of the kernel grid (see below).
KERNEL_SPEEDUP_TARGET = 5.0

#: The kernel grid: every (kernel, m, R) cell runs one deep scheduling
#: phase at paper scale.  ``R`` is the deadline-slack factor — deadlines
#: are drawn from ``quantum * U(1.02, R)``, so every task passes the
#: phase prefilter (as production batches do) and the workload tightens
#: from barely-schedulable to loose as R grows.  Task count scales with
#: the machine (weak scaling, constant per-processor pressure), matching
#: the paper's scalability framing.
KERNEL_GRID_M = (4, 8, 16)
KERNEL_GRID_R = (1.5, 4.0, 10.0)
KERNEL_GRID_TASKS_PER_PROCESSOR = 125
KERNEL_GRID_QUANTUM = 5000.0
KERNEL_GRID_PER_VERTEX_COST = 0.05
KERNEL_GRID_REPEATS = 5


def timing_samples(benchmark):
    """Raw timing samples, or None under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    return stats.stats.data if stats is not None else None


def _tasks(n, m, seed=0):
    rng = random.Random(seed)
    tasks = []
    for task_id in range(n):
        p = rng.uniform(5.0, 50.0)
        affinity = frozenset(
            proc for proc in range(m) if rng.random() < 0.4
        ) or frozenset({rng.randrange(m)})
        tasks.append(
            make_task(task_id, processing_time=p, deadline=p * 20.0,
                      affinity=affinity)
        )
    return tasks


def _ctx(n=200, m=8, quantum=200.0):
    return PhaseContext(
        tasks=sorted(_tasks(n, m), key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=UniformCommunicationModel(40.0),
        phase_start=0.0,
        quantum=quantum,
        initial_offsets=(0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


def test_assignment_oriented_search_rate(benchmark):
    ctx = _ctx()

    def search():
        return run_search(
            ctx,
            AssignmentOrientedExpander(),
            VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01),
        )

    outcome = benchmark(search)
    assert outcome.best.depth > 0
    record_metric(
        "search",
        "assignment_search_seconds",
        samples=timing_samples(benchmark),
        unit="s",
        vertices_per_quantum=outcome.stats.vertices_generated,
    )


def test_sequence_oriented_search_rate(benchmark):
    ctx = _ctx()

    def search():
        return run_search(
            ctx,
            SequenceOrientedExpander(),
            VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01),
        )

    outcome = benchmark(search)
    assert outcome.stats.vertices_generated > 0
    record_metric(
        "search",
        "sequence_search_seconds",
        samples=timing_samples(benchmark),
        unit="s",
        vertices_per_quantum=outcome.stats.vertices_generated,
    )


def _expansion_rates(run, ctx, expander_factory, budget_factory, repeats):
    """Vertices generated per second of search, one sample per repeat."""
    rates = []
    for _ in range(repeats):
        budget = budget_factory()
        start = time.perf_counter()
        outcome = run(ctx, expander_factory(), budget)
        elapsed = time.perf_counter() - start
        rates.append(outcome.stats.vertices_generated / elapsed)
    return rates, outcome


def _speedup_cell(m, repeats=15, n=200):
    """Optimized vs reference expansion rate on one workload size."""
    budget = lambda: VirtualTimeBudget(quantum=200.0, per_vertex_cost=0.01)
    opt_rates, opt_out = _expansion_rates(
        run_search,
        _ctx(n=n, m=m),
        AssignmentOrientedExpander,
        budget,
        repeats,
    )
    ref_ctx = PhaseContext(
        tasks=sorted(_tasks(n, m), key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=UniformCommunicationModel(40.0),
        phase_start=0.0,
        quantum=200.0,
        initial_offsets=(0.0,) * m,
        evaluator=reference.ReferenceLoadBalancingEvaluator(),
    )
    ref_rates, ref_out = _expansion_rates(
        reference.run_search,
        ref_ctx,
        reference.ReferenceAssignmentOrientedExpander,
        budget,
        repeats,
    )
    # Same quantum must buy the same tree — the speedup is pure overhead
    # reduction, not a different search.
    assert opt_out.stats.vertices_generated == ref_out.stats.vertices_generated
    assert opt_out.best.depth == ref_out.best.depth
    assert opt_out.best.scheduled_end == ref_out.best.scheduled_end
    return opt_rates, ref_rates


def test_optimized_vs_reference_speedup():
    """The tentpole acceptance bar: >= 1.5x vertices expanded per unit of
    wall clock against the frozen reference, on the assignment-oriented
    (RT-SADS) representation the paper's scalability claim rests on."""
    results = {}
    for m in (8, 16):
        opt_rates, ref_rates = _speedup_cell(m)
        speedup = statistics.median(opt_rates) / statistics.median(ref_rates)
        results[m] = speedup
        record_metric(
            "search",
            f"optimized_rate_m{m}",
            samples=opt_rates,
            unit="vertices/s",
        )
        record_metric(
            "search",
            f"reference_rate_m{m}",
            samples=ref_rates,
            unit="vertices/s",
        )
        record_metric("search", f"speedup_vs_reference_m{m}", speedup=speedup)
    best = max(results.values())
    record_metric("search", "speedup_vs_reference_best", speedup=best)
    assert best >= SPEEDUP_TARGET, (
        f"hot-path speedup {best:.2f}x fell below the {SPEEDUP_TARGET}x bar "
        f"(per-m: {', '.join(f'm={m}: {s:.2f}x' for m, s in results.items())})"
    )


def test_candidate_list_throughput(benchmark):
    root = make_root((0.0,) * 4)
    block = [make_child(root, i, i % 4, 10.0, 0.0) for i in range(16)]

    def churn():
        cl = CandidateList(max_size=4096)
        for _ in range(200):
            cl.push_block(block)
            for _ in range(8):
                cl.pop()
        return len(cl)

    assert benchmark(churn) > 0


def test_quantum_policy_cost(benchmark):
    tasks = _tasks(500, 8)
    loads = [float(i) for i in range(8)]
    policy = SelfAdjustingQuantum()
    value = benchmark(lambda: policy.quantum(tasks, loads, now=10.0))
    assert value > 0


def test_event_engine_dispatch_rate(benchmark):
    class Tick:
        pass

    def run_engine():
        engine = SimulationEngine()
        count = [0]

        def handler(now, event):
            count[0] += 1
            if count[0] < 5000:
                engine.schedule_after(1.0, Tick())

        engine.subscribe(Tick, handler)
        engine.schedule_at(0.0, Tick())
        engine.run()
        return count[0]

    assert benchmark(run_engine) == 5000


def _schedule_phase(scheduler, tasks, m):
    loads = (0.0,) * m
    quantum = scheduler.plan_quantum(tasks, loads, now=0.0)
    return scheduler.schedule_phase(tasks, loads, now=0.0, quantum=quantum)


def test_phase_instrumentation_disabled_overhead(benchmark):
    """The off-by-default path: must track the uninstrumented seed (<5%)."""
    from repro.core import RTSADS

    m = 8
    tasks = _tasks(120, m, seed=3)
    scheduler = RTSADS(UniformCommunicationModel(40.0))
    result = benchmark(lambda: _schedule_phase(scheduler, tasks, m))
    assert len(result.schedule) > 0


def test_phase_instrumentation_enabled_overhead(benchmark):
    """Full instrumentation: spans + counters + a memory trace sink."""
    from repro.core import RTSADS
    from repro.observability import Instrumentation, MemorySink

    m = 8
    tasks = _tasks(120, m, seed=3)
    obs = Instrumentation(sink=MemorySink())
    scheduler = RTSADS(UniformCommunicationModel(40.0), instrumentation=obs)
    result = benchmark(lambda: _schedule_phase(scheduler, tasks, m))
    assert len(result.schedule) > 0
    assert obs.metrics.snapshot()["counters"]["scheduler_phases{scheduler=RT-SADS}"] > 0


# --- kernel grid: scalar vs vectorized ------------------------------------


def _kernel_grid_tasks(n, m, slack_factor, quantum, seed=3):
    """Deep-descent workload: prefilter-admissible, tightening with depth."""
    rng = random.Random(seed)
    tasks = []
    for task_id in range(n):
        p = rng.uniform(5.0, 30.0)
        affinity = frozenset(
            proc for proc in range(m) if rng.random() < 0.5
        ) or frozenset({rng.randrange(m)})
        tasks.append(
            make_task(
                task_id,
                processing_time=p,
                deadline=quantum * rng.uniform(1.02, slack_factor),
                affinity=affinity,
            )
        )
    return sorted(tasks, key=lambda t: (t.deadline, t.task_id))


def _outcome_fingerprint(outcome):
    """Every observable bit of a search outcome, for identity asserts."""
    path = [
        (v.batch_index, v.processor, repr(v.scheduled_end), repr(v.value))
        for v in outcome.best.path()
    ]
    s = outcome.stats
    return (
        tuple(path),
        s.vertices_generated,
        s.expansions,
        s.backtracks,
        s.feasibility_rejections,
        s.tasks_pruned,
        repr(outcome.time_used),
    )


def _kernel_cell(kernel, m, slack_factor, repeats=KERNEL_GRID_REPEATS):
    """Interleaved scalar/vectorized rates for one (m, R) grid cell.

    Returns ``(scalar_rates, vectorized_rates)`` in vertices/s, one sample
    per repeat, sampled alternately so machine drift hits both kernels
    equally.  Asserts the two kernels produce bit-identical outcomes.
    """
    n = KERNEL_GRID_TASKS_PER_PROCESSOR * m
    quantum = KERNEL_GRID_QUANTUM
    tasks = _kernel_grid_tasks(n, m, slack_factor, quantum)

    def one(search):
        ctx = PhaseContext(
            tasks=tasks,
            num_processors=m,
            comm=UniformCommunicationModel(40.0),
            phase_start=0.0,
            quantum=quantum,
            initial_offsets=tuple(0.5 * k for k in range(m)),
            evaluator=LoadBalancingEvaluator(),
        )
        budget = VirtualTimeBudget(
            quantum=quantum, per_vertex_cost=KERNEL_GRID_PER_VERTEX_COST
        )
        start = time.perf_counter()
        outcome = search(ctx, AssignmentOrientedExpander(), budget)
        elapsed = time.perf_counter() - start
        return outcome.stats.vertices_generated / elapsed, outcome

    scalar_rates, vector_rates = [], []
    for _ in range(repeats):
        rate, scalar_out = one(run_search)
        scalar_rates.append(rate)
        rate, vector_out = one(kernel.search)
        vector_rates.append(rate)
        assert _outcome_fingerprint(scalar_out) == _outcome_fingerprint(
            vector_out
        ), f"kernel outcomes diverged at m={m}, R={slack_factor}"
    assert scalar_out.best.depth > 0
    return scalar_rates, vector_rates


@pytest.mark.skipif(
    not numpy_available(), reason="vectorized kernel requires numpy ([fast])"
)
def test_kernel_grid_speedup():
    """The vectorized-kernel acceptance bar: >= 5x mean vertices/s over the
    scalar kernel across the m=16 cells of the kernel grid, with outcomes
    proven bit-identical cell by cell."""
    kernel = get_kernel("vectorized")
    speedups = {}
    for m in KERNEL_GRID_M:
        for slack_factor in KERNEL_GRID_R:
            scalar_rates, vector_rates = _kernel_cell(kernel, m, slack_factor)
            cell = f"m{m}_r{slack_factor:g}"
            record_metric(
                "search",
                f"kernel_scalar_rate_{cell}",
                samples=scalar_rates,
                unit="vertices/s",
            )
            record_metric(
                "search",
                f"kernel_vectorized_rate_{cell}",
                samples=vector_rates,
                unit="vertices/s",
            )
            speedup = statistics.median(vector_rates) / statistics.median(
                scalar_rates
            )
            speedups[(m, slack_factor)] = speedup
            record_metric("search", f"kernel_speedup_{cell}", speedup=speedup)
    m16 = [s for (m, _), s in speedups.items() if m == 16]
    mean16 = statistics.fmean(m16)
    record_metric("search", "kernel_speedup_m16_mean", speedup=mean16)
    assert mean16 >= KERNEL_SPEEDUP_TARGET, (
        f"vectorized kernel mean speedup {mean16:.2f}x at m=16 fell below "
        f"the {KERNEL_SPEEDUP_TARGET}x bar (cells: "
        + ", ".join(
            f"m={m} R={r}: {s:.2f}x" for (m, r), s in sorted(speedups.items())
        )
        + ")"
    )
