#!/usr/bin/env python
"""Print before/after deltas between two ``BENCH_*.json`` snapshots.

Usage::

    python benchmarks/compare.py results/BENCH_search.json /tmp/BENCH_search.json

The first file is the *before* baseline, the second the *after* run.  For
every metric present in both, each numeric field (mean/p50/p95, speedup,
vertices_per_quantum, ...) is shown with its absolute and relative change;
metrics present only on one side are listed so coverage drift is visible.

Exits non-zero on malformed input, zero otherwise — the tool reports, it
does not judge; thresholds live in the benchmarks themselves.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Numeric per-metric fields worth diffing, in display order.
FIELDS = ("mean", "p50", "p95", "min", "max", "speedup", "vertices_per_quantum")


def load(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    if "metrics" not in document:
        raise SystemExit(f"{path} is not a BENCH_*.json document (no 'metrics')")
    return document


def format_delta(before: float, after: float) -> str:
    delta = after - before
    if before:
        return f"{before:,.4g} -> {after:,.4g}  ({delta:+,.4g}, {delta / before:+.1%})"
    return f"{before:,.4g} -> {after:,.4g}  ({delta:+,.4g})"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("after", type=Path, help="new BENCH_*.json")
    args = parser.parse_args(argv)

    before_doc, after_doc = load(args.before), load(args.after)
    before, after = before_doc["metrics"], after_doc["metrics"]
    if before_doc.get("scale") != after_doc.get("scale"):
        print(
            f"warning: comparing scale={before_doc.get('scale')!r} against "
            f"scale={after_doc.get('scale')!r} — deltas mix workload sizes"
        )

    shared = sorted(set(before) & set(after))
    print(f"report: {after_doc.get('report', '?')}  ({len(shared)} shared metrics)")
    for name in shared:
        unit = after[name].get("unit") or before[name].get("unit") or ""
        print(f"\n{name}" + (f"  [{unit}]" if unit else ""))
        for field in FIELDS:
            if field in before[name] and field in after[name]:
                print(f"  {field:>8}: {format_delta(before[name][field], after[name][field])}")

    for label, only in (
        ("only in before", sorted(set(before) - set(after))),
        ("only in after", sorted(set(after) - set(before))),
    ):
        if only:
            print(f"\n{label}: {', '.join(only)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
