#!/usr/bin/env python
"""Print before/after deltas between two ``BENCH_*.json`` snapshots.

Usage::

    python benchmarks/compare.py results/BENCH_search.json /tmp/BENCH_search.json

The first file is the *before* baseline, the second the *after* run.  For
every metric present in both, each numeric field (mean/p50/p95, speedup,
vertices_per_quantum, ...) is shown with its absolute and relative change;
metrics present only on one side are listed so coverage drift is visible.

Tracked rates are gated: when a throughput metric (unit ``.../s``) or a
``speedup`` field drops more than ``--threshold`` (default 20%) against
the baseline, the offending metric is printed and the exit status is
non-zero, so CI can diff a fresh run against the committed
``results/BENCH_*.json`` and fail on real regressions.  ``--no-gate``
restores report-only behaviour (e.g. for cross-scale comparisons).
Absolute thresholds on single runs still live in the benchmarks
themselves; this gate catches *drift* between snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Numeric per-metric fields worth diffing, in display order.
FIELDS = ("mean", "p50", "p95", "min", "max", "speedup", "vertices_per_quantum")

#: Relative drop in a tracked rate that fails the gate.
DEFAULT_THRESHOLD = 0.20


def tracked_fields(before: dict, after: dict) -> list:
    """Gated (field, higher-is-better value pairs) for one metric.

    A metric is tracked when it is a throughput (its unit ends in ``/s`` —
    vertices/s, events/s, ...) or it carries a ``speedup`` field.  Latency
    metrics (seconds per operation) are reported but not gated: their
    polarity is inverted and the repo's latency bars live in the
    benchmarks themselves.
    """
    unit = after.get("unit") or before.get("unit") or ""
    fields = []
    if unit.endswith("/s") and "mean" in before and "mean" in after:
        fields.append(("mean", before["mean"], after["mean"]))
    if "speedup" in before and "speedup" in after:
        fields.append(("speedup", before["speedup"], after["speedup"]))
    return fields


def load(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    if "metrics" not in document:
        raise SystemExit(f"{path} is not a BENCH_*.json document (no 'metrics')")
    return document


def format_delta(before: float, after: float) -> str:
    delta = after - before
    if before:
        return f"{before:,.4g} -> {after:,.4g}  ({delta:+,.4g}, {delta / before:+.1%})"
    return f"{before:,.4g} -> {after:,.4g}  ({delta:+,.4g})"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("after", type=Path, help="new BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative drop in a tracked rate that fails the gate "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report deltas only; never fail on regressions",
    )
    args = parser.parse_args(argv)

    before_doc, after_doc = load(args.before), load(args.after)
    before, after = before_doc["metrics"], after_doc["metrics"]
    if before_doc.get("scale") != after_doc.get("scale"):
        print(
            f"warning: comparing scale={before_doc.get('scale')!r} against "
            f"scale={after_doc.get('scale')!r} — deltas mix workload sizes"
        )

    shared = sorted(set(before) & set(after))
    print(f"report: {after_doc.get('report', '?')}  ({len(shared)} shared metrics)")
    regressions = []
    for name in shared:
        unit = after[name].get("unit") or before[name].get("unit") or ""
        print(f"\n{name}" + (f"  [{unit}]" if unit else ""))
        for field in FIELDS:
            if field in before[name] and field in after[name]:
                print(f"  {field:>8}: {format_delta(before[name][field], after[name][field])}")
        for field, was, now in tracked_fields(before[name], after[name]):
            if was > 0 and now < was * (1.0 - args.threshold):
                regressions.append(
                    f"{name}.{field}: {format_delta(was, now)} "
                    f"(gate: -{args.threshold:.0%})"
                )

    for label, only in (
        ("only in before", sorted(set(before) - set(after))),
        ("only in after", sorted(set(after) - set(before))),
    ):
        if only:
            print(f"\n{label}: {', '.join(only)}")

    if regressions and not args.no_gate:
        print(f"\nREGRESSION: {len(regressions)} tracked rate(s) fell "
              f"more than {args.threshold:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
