"""E4: the scheduling-cost measurement (Section 5.1).

The paper measures "the scheduling cost as the physical time required to
run the scheduling algorithm".  This bench reports the virtual scheduling
time both algorithms consume per phase under identical quanta, and measures
the *actual* CPython wall-clock cost per search vertex — documenting the
interpreter distortion that motivates the virtual budget (DESIGN.md
Section 2).
"""

from conftest import bench_config

from repro.core import (
    AssignmentOrientedExpander,
    LoadBalancingEvaluator,
    PhaseContext,
    SequenceOrientedExpander,
    UniformCommunicationModel,
    WallClockBudget,
    run_search,
)
from repro.experiments import overhead_table
from repro.experiments.runner import build_workload


def test_overhead_table(benchmark):
    config = bench_config()
    result = benchmark.pedantic(
        lambda: overhead_table(config), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.measured_per_vertex_seconds > 0
    # Scheduling must consume a bounded share of the makespan.
    for row in result.rows:
        assert row[5] < 100.0


def _phase_context(config, m=None):
    _, tasks = build_workload(config, config.base_seed)
    m = m or config.num_processors
    return PhaseContext(
        tasks=sorted(tasks, key=lambda t: (t.deadline, t.task_id)),
        num_processors=m,
        comm=UniformCommunicationModel(config.remote_cost),
        phase_start=0.0,
        quantum=float("inf"),
        initial_offsets=(0.0,) * m,
        evaluator=LoadBalancingEvaluator(),
    )


def test_wall_clock_phase_assignment_oriented(benchmark):
    """Vertices evaluated per wall-clock quantum, assignment-oriented."""
    config = bench_config(runs=1)
    ctx = _phase_context(config)

    def run_wall_clock_phase():
        budget = WallClockBudget(quantum_seconds=0.02)
        run_search(ctx, AssignmentOrientedExpander(), budget)
        return budget.vertices_charged

    vertices = benchmark(run_wall_clock_phase)
    assert vertices > 0


def test_wall_clock_phase_sequence_oriented(benchmark):
    """Vertices evaluated per wall-clock quantum, sequence-oriented."""
    config = bench_config(runs=1)
    ctx = _phase_context(config)

    def run_wall_clock_phase():
        budget = WallClockBudget(quantum_seconds=0.02)
        run_search(ctx, SequenceOrientedExpander(), budget)
        return budget.vertices_charged

    vertices = benchmark(run_wall_clock_phase)
    assert vertices > 0
