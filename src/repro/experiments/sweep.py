"""Parallel sweep engine: fan experiment cells over processes, cache results.

A figure reproduction is a grid of independent *cells* — one
``(config, scheduler, seed)`` triple per repetition per sweep point — and
nothing about the paper's evaluation couples them: every cell rebuilds its
own database, workload, and scheduler from the seed.  This module exploits
that:

* **fan-out** — cells execute on a ``multiprocessing`` *spawn* pool of
  ``jobs`` workers (spawn, not fork: workers must rebuild state from the
  pickled config alone, the same discipline the live cluster already
  enforces);
* **content-addressed cache** — each finished cell persists one small JSON
  record under ``<cache_dir>/<config digest>/``, keyed by the config's
  :meth:`~repro.experiments.config.ExperimentConfig.cache_fields` hash plus
  ``(scheduler, seed)``, so re-runs and ``--resume`` after an interruption
  execute only the missing cells;
* **deterministic merge** — results aggregate in ``config.seeds()`` order
  regardless of completion order, worker count, or cache hits, so figure
  JSON is byte-identical across every ``(jobs, cache, resume)``
  combination (CI's ``sweep-smoke`` job asserts the bytes);
* **observability** — one progress line per finished cell, per-cell wall
  timing into the metrics registry (``sweep_cell_seconds``), and hit/miss
  counters (``sweep_cells{source=...}``).

Cells whose backend is in :data:`SERIAL_BACKENDS` (the live TCP cluster)
never enter the pool: each such cell spawns its own worker processes and
binds a listening socket, so the engine serializes them in the parent,
leasing master ports from a bounded :class:`PortPool` to avoid bind
collisions between consecutive cells.

Units: everything a :class:`CellRecord` stores under a ``*_time`` /
``makespan`` name is virtual quanta (one tuple-check = 1.0 unit);
``wall_seconds`` and ``elapsed_seconds`` are real host seconds.
Process-safety: cache writes are atomic (temp file + ``os.replace``), so
concurrent sweeps sharing a cache directory at worst recompute a cell —
they can never read a torn record.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..observability import NULL_SINK, get_instrumentation, read_jsonl
from .config import ExperimentConfig

#: Bump when the CellRecord schema changes: a new version can never read
#: (or be poisoned by) records written by an older one.
#: v2: records carry the cell's counter deltas, so cached cells keep
#: their metrics contribution on --resume.
#: v3: records carry the run's schedulability-oracle regret section, and
#: the config grew a ``scheduler`` cache field.
#: v4: records carry the run's migration section, and the config grew
#: ``domains`` / ``partition_policy`` cache fields.
CACHE_SCHEMA_VERSION = 4

#: The cache directory the CLI defaults to (relative to the working dir).
DEFAULT_CACHE_DIR = "results/cache"

#: Backends whose cells must not run concurrently: each live-cluster cell
#: spawns its own OS processes and binds a TCP listener, so the engine
#: runs them one at a time in the parent on a bounded port pool.
SERIAL_BACKENDS = frozenset({"cluster", "service"})


# ----- the unit of work ------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit: run ``scheduler_name`` on ``config`` at ``seed``.

    Frozen and picklable (the config is a frozen dataclass of plain
    types), so a cell crosses the spawn boundary to a pool worker intact.
    """

    config: ExperimentConfig
    scheduler_name: str
    seed: int


@dataclass(frozen=True)
class CellRecord:
    """The per-repetition scalars every aggregation consumes, cache-stably.

    Exactly the values :class:`~repro.experiments.runner.CellResult` reads
    off a :class:`~repro.runtime.report.RunReport`, captured once so a
    cached cell aggregates bit-identically to a fresh one (JSON floats
    round-trip exactly via ``repr``).  ``total_scheduling_time`` and
    ``makespan`` are virtual quanta; ``wall_seconds`` is the backend's
    reported real time and ``elapsed_seconds`` the engine-measured wall
    time of producing this record (0.0 when it came from the cache).
    Immutable, hence safe to share across threads.
    """

    scheduler_name: str
    seed: int
    backend: str
    hit_percent: float
    dead_end_rate: float
    mean_depth: float
    mean_processors_touched: float
    total_scheduling_time: float
    makespan: float
    guaranteed_violations: int
    num_phases: int
    wall_seconds: float
    elapsed_seconds: float = 0.0
    #: Counter deltas this cell's run produced (``format_key`` -> value).
    #: Persisted with the record so a cached cell still contributes its
    #: metrics to ``--metrics-out`` on resume; empty when the run was
    #: uninstrumented.
    counters: Dict[str, float] = field(default_factory=dict)
    #: The run's schedulability-oracle verdict + regret (see
    #: :func:`repro.analysis.schedulability.regret_section`); empty when
    #: the oracle was not consulted.
    regret: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_report(cls, report, elapsed_seconds: float = 0.0) -> "CellRecord":
        """Capture one run's aggregation inputs from its ``RunReport``."""
        return cls(
            scheduler_name=report.scheduler_name,
            seed=report.seed,
            backend=report.backend,
            hit_percent=report.hit_percent,
            dead_end_rate=report.dead_end_rate,
            mean_depth=report.mean_depth,
            mean_processors_touched=report.mean_processors_touched,
            total_scheduling_time=report.total_scheduling_time,
            makespan=report.makespan,
            guaranteed_violations=report.guaranteed_violations,
            num_phases=report.num_phases,
            wall_seconds=report.wall_seconds,
            elapsed_seconds=elapsed_seconds,
            regret=dict(report.regret),
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view, the JSON cache-file payload."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellRecord":
        """Rebuild a record from :meth:`as_dict` output (cache read path)."""
        return cls(**payload)


# ----- content-addressed cache ----------------------------------------------


def config_digest(config: ExperimentConfig) -> str:
    """Stable hex digest of everything that determines a cell's outcome.

    Hashes the canonical JSON of :meth:`ExperimentConfig.cache_fields`
    plus :data:`CACHE_SCHEMA_VERSION`; execution knobs (``jobs``,
    ``cache_dir``, ``resume``) are excluded by construction, so the same
    workload computed serially and in parallel shares one digest.
    """
    canonical = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, **config.cache_fields()},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepCache:
    """One directory of finished-cell records, keyed by config digest.

    Layout: ``<root>/<digest[:16]>/<scheduler>-seed<seed>.json`` plus a
    ``config.json`` manifest per digest directory for human inspection.
    Writes are atomic (temp file + ``os.replace``), so the cache is safe
    under concurrent sweeps from multiple processes; loads of missing or
    torn entries return ``None`` (the cell simply re-executes).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def cell_path(self, cell: SweepCell) -> Path:
        """Where ``cell``'s record lives (whether or not it exists yet)."""
        digest = config_digest(cell.config)
        return (
            self.root
            / digest[:16]
            / f"{cell.scheduler_name}-seed{cell.seed}.json"
        )

    def load(self, cell: SweepCell) -> Optional[CellRecord]:
        """The cached record for ``cell``, or ``None`` on any miss.

        Unreadable or schema-mismatched files count as misses, never as
        errors: a half-written entry from an interrupted sweep must not
        wedge the resume that is trying to recover from it.
        """
        path = self.cell_path(cell)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            record = CellRecord.from_dict(payload["record"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return record

    def store(self, cell: SweepCell, record: CellRecord) -> Path:
        """Atomically persist ``cell``'s record; returns the final path."""
        path = self.cell_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        manifest = path.parent / "config.json"
        if not manifest.exists():
            self._write_atomic(
                manifest,
                json.dumps(cell.config.cache_fields(), indent=2,
                           sort_keys=True),
            )
        document = {
            "schema": CACHE_SCHEMA_VERSION,
            "config_digest": config_digest(cell.config),
            "record": record.as_dict(),
        }
        self._write_atomic(path, json.dumps(document, indent=2,
                                            sort_keys=True))
        return path

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write-then-rename so readers never observe a partial file."""
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(text + "\n", encoding="utf-8")
        os.replace(temp, path)


# ----- bounded port pool for live-cluster cells ------------------------------


class PortPool:
    """A bounded pool of TCP ports for live-cluster cells.

    Port 0 means "let the OS pick an ephemeral port" — the default, and
    collision-free by construction; an explicit range pins masters to
    known ports (firewalled environments).  The pool's *size* is the real
    control: at most ``len(ports)`` cluster cells may hold a lease at
    once, and the engine additionally serializes cluster cells, so a
    sweep never races two masters onto one port.  Thread-safe (condition
    variable); leases are parent-process-only and never cross the spawn
    boundary.
    """

    def __init__(self, ports: Sequence[int] = (0,)) -> None:
        if not ports:
            raise ValueError("a port pool needs at least one slot")
        self._free: List[int] = list(ports)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)

    @contextmanager
    def lease(self) -> Iterator[int]:
        """Borrow one port for the duration of a ``with`` block (blocking)."""
        with self._available:
            while not self._free:
                self._available.wait()
            port = self._free.pop(0)
        try:
            yield port
        finally:
            with self._available:
                self._free.append(port)
                self._available.notify()


# ----- pool worker -----------------------------------------------------------


def _execute_cell(
    payload: Tuple[int, SweepCell, Optional[str]]
) -> Tuple[int, Dict[str, object]]:
    """Pool worker: run one cell and return ``(index, record dict)``.

    ``payload`` is ``(index, cell, trace_path)``.  With ``trace_path``
    ``None`` the cell runs under whatever instrumentation is already the
    process default — disabled in a spawned child, the parent's own in
    the serial in-process path.  With a path (the parent is tracing and
    this is a spawned child that cannot reach the parent's sink), the
    child instruments itself into a private JSONL file at that path and
    records its counter deltas on the returned record; the parent adopts
    both when the cell finishes, so ``--trace-out --jobs N`` loses
    nothing relative to ``--jobs 1``.  Module-level by necessity — spawn
    pickles the function by reference.
    """
    index, cell, trace_path = payload
    from .runner import run_once

    if trace_path is None:
        start = time.perf_counter()
        report = run_once(cell.config, cell.scheduler_name, cell.seed)
        elapsed = time.perf_counter() - start
        record = CellRecord.from_report(report, elapsed_seconds=elapsed)
        return index, record.as_dict()

    from ..observability import (
        OFF,
        Instrumentation,
        JsonlSink,
        MetricsRegistry,
        StructuredLogger,
        instrumented,
    )

    obs = Instrumentation(
        metrics=MetricsRegistry(),
        logger=StructuredLogger(name="repro.sweep", level=OFF),
        sink=JsonlSink(trace_path),
    )
    try:
        start = time.perf_counter()
        with instrumented(obs):
            report = run_once(cell.config, cell.scheduler_name, cell.seed)
        elapsed = time.perf_counter() - start
    finally:
        obs.close()
    record = CellRecord.from_report(report, elapsed_seconds=elapsed)
    # A fresh registry means absolute values ARE this cell's deltas;
    # zero-valued (created but never incremented) counters are dropped to
    # match the delta semantics of the in-parent path.
    counters = {
        key: value
        for key, value in obs.metrics.snapshot()["counters"].items()
        if value != 0
    }
    return index, replace(record, counters=counters).as_dict()


# ----- the engine ------------------------------------------------------------


@dataclass
class SweepStats:
    """What one :func:`run_grid` invocation actually did (wall seconds)."""

    total_cells: int = 0
    executed: int = 0
    cached: int = 0
    jobs: int = 1
    elapsed_seconds: float = 0.0


@dataclass
class SweepOutcome:
    """Aggregated results in spec order plus the execution accounting."""

    #: One CellResult per ``(config, scheduler)`` spec, in call order.
    cells: List[object] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)


def run_grid(
    specs: Sequence[Tuple[ExperimentConfig, str]],
    *,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: Optional[bool] = None,
    port_pool: Optional[PortPool] = None,
) -> SweepOutcome:
    """Run every repetition of every ``(config, scheduler)`` spec.

    The execution knobs default to the first config's ``jobs`` /
    ``cache_dir`` / ``resume`` fields (keyword arguments override).  Cells
    found in the cache are not re-executed; everything else fans across a
    spawn pool of ``jobs`` workers, except cells on a
    :data:`SERIAL_BACKENDS` backend, which run one at a time in the
    parent on ``port_pool`` (defaulting to ephemeral ports).

    Aggregation order is fixed by ``specs`` and ``config.seeds()`` — never
    by completion order — so the returned :class:`SweepOutcome` is
    bit-identical for any worker count or cache state.  Safe to call from
    any thread, but do not share one cache directory between two
    *schemas*; the version stamp protects reads either way.
    """
    from .runner import CellResult

    if not specs:
        return SweepOutcome()
    first = specs[0][0]
    jobs = first.jobs if jobs is None else jobs
    cache_dir = first.cache_dir if cache_dir is None else cache_dir
    resume = first.resume if resume is None else resume
    if jobs <= 0:
        raise ValueError("jobs must be positive (1 = serial)")
    cache = SweepCache(cache_dir) if cache_dir else None

    # One flat, deterministically indexed task list across all specs.
    tasks: List[SweepCell] = []
    spec_slices: List[Tuple[int, int]] = []
    for config, scheduler_name in specs:
        start = len(tasks)
        for seed in config.seeds():
            tasks.append(SweepCell(config, scheduler_name, seed))
        spec_slices.append((start, len(tasks)))

    obs = get_instrumentation()
    records: Dict[int, CellRecord] = {}
    pending: List[Tuple[int, SweepCell]] = []
    for index, cell in enumerate(tasks):
        cached = cache.load(cell) if cache is not None else None
        if cached is not None:
            records[index] = cached
            _note_cell(obs, cell, cached, index, len(tasks), source="cache")
        else:
            pending.append((index, cell))

    stats = SweepStats(
        total_cells=len(tasks),
        cached=len(records),
        jobs=jobs,
    )
    if obs.enabled:
        obs.logger.info(
            "sweep start" if not resume else "sweep resume",
            cells=len(tasks),
            cached=stats.cached,
            to_run=len(pending),
            jobs=jobs,
        )

    started = time.perf_counter()
    parallel: List[Tuple[int, SweepCell]] = []
    serial: List[Tuple[int, SweepCell]] = []
    for item in pending:
        if item[1].config.backend in SERIAL_BACKENDS:
            serial.append(item)
        else:
            parallel.append(item)

    def finish(index: int, cell: SweepCell, record: CellRecord) -> None:
        """Accept one freshly executed cell: record, cache, account, log."""
        records[index] = record
        stats.executed += 1
        if cache is not None:
            cache.store(cell, record)
        _note_cell(obs, cell, record, index, len(tasks), source="run")

    if jobs > 1 and len(parallel) > 1:
        # Spawned children cannot reach the parent's sink; when the
        # parent is tracing, each child writes a private per-cell JSONL
        # file that the parent adopts (re-emits, then deletes) as the
        # cell finishes — same event set as a serial run, completion
        # order.
        trace_dir = (
            tempfile.mkdtemp(prefix="repro-sweep-trace-")
            if obs.enabled and obs.sink is not NULL_SINK
            else None
        )
        payloads = [
            (
                index,
                cell,
                os.path.join(trace_dir, f"cell-{index}.jsonl")
                if trace_dir
                else None,
            )
            for index, cell in parallel
        ]
        try:
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(jobs, len(parallel))) as pool:
                for index, payload in pool.imap_unordered(
                    _execute_cell, payloads
                ):
                    record = CellRecord.from_dict(payload)
                    if trace_dir:
                        _adopt_cell_trace(
                            obs,
                            os.path.join(trace_dir, f"cell-{index}.jsonl"),
                        )
                    finish(index, tasks[index], record)
        finally:
            if trace_dir:
                shutil.rmtree(trace_dir, ignore_errors=True)
    else:
        for index, cell in parallel:
            # In-process: run_once sees the parent's own instrumentation,
            # so trace events flow straight to the sink; only the per-cell
            # counter deltas need explicit capture.
            before = _counter_values(obs)
            _, payload = _execute_cell((index, cell, None))
            record = CellRecord.from_dict(payload)
            record = replace(
                record, counters=_counter_delta(before, _counter_values(obs))
            )
            finish(index, cell, record)

    if serial:
        _run_serial_backends(serial, port_pool or PortPool(), finish, obs)

    stats.elapsed_seconds = time.perf_counter() - started
    if obs.enabled:
        obs.logger.info(
            "sweep done",
            cells=stats.total_cells,
            executed=stats.executed,
            cached=stats.cached,
            jobs=stats.jobs,
            elapsed_s=round(stats.elapsed_seconds, 3),
        )

    outcome = SweepOutcome(stats=stats)
    for (config, scheduler_name), (start, stop) in zip(specs, spec_slices):
        ordered = [records[index] for index in range(start, stop)]
        cell = _aggregate(CellResult, config, scheduler_name, ordered)
        outcome.cells.append(cell)
        if obs.enabled:
            # Same per-cell summary shape the serial runner records for
            # --metrics-out.  Counter deltas sum over the spec's records:
            # fresh cells captured them at execution time (in the child
            # or around the in-parent run) and cached cells persisted
            # them in their cache records, so a resumed sweep reports the
            # same totals as the run that populated the cache.
            summed: Dict[str, float] = {}
            for record in ordered:
                for key, value in record.counters.items():
                    summed[key] = summed.get(key, 0) + value
            obs.record_cell(
                {
                    "scheduler": scheduler_name,
                    "backend": config.backend,
                    "processors": config.num_processors,
                    "replication": config.replication_rate,
                    "slack_factor": config.slack_factor,
                    "transactions": config.num_transactions,
                    "runs": config.runs,
                    "mean_hit_percent": cell.mean_hit_percent,
                    "mean_dead_end_rate": cell.mean_dead_end_rate,
                    "scheduled_but_missed": cell.scheduled_but_missed,
                    "counters": summed,
                }
            )
    return outcome


def _run_serial_backends(items, port_pool: PortPool, finish, obs) -> None:
    """Run live-cluster cells one at a time on leased master ports.

    Each cell spawns its own worker processes, so concurrency here would
    multiply process counts and risk port collisions; serialized on the
    pool, consecutive masters can never contend for one listener.  Runs
    in the parent, so trace events reach the sink directly; counter
    deltas are captured per cell like the serial runner does.
    """
    from ..runtime.backend import get_backend
    from .runner import run_once

    for index, cell in items:
        with port_pool.lease() as port:
            backend = get_backend(cell.config.backend)
            if port and hasattr(backend, "with_port"):
                backend = backend.with_port(port)
            before = _counter_values(obs)
            start = time.perf_counter()
            report = run_once(
                cell.config, cell.scheduler_name, cell.seed, backend=backend
            )
            elapsed = time.perf_counter() - start
        record = replace(
            CellRecord.from_report(report, elapsed_seconds=elapsed),
            counters=_counter_delta(before, _counter_values(obs)),
        )
        finish(index, cell, record)


def _counter_values(obs) -> Dict[str, float]:
    """Flat ``format_key -> value`` view of the registry's counters."""
    if not obs.enabled:
        return {}
    return dict(obs.metrics.snapshot()["counters"])


def _counter_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Counters that moved between two :func:`_counter_values` snapshots."""
    return {
        key: value - before.get(key, 0)
        for key, value in after.items()
        if value != before.get(key, 0)
    }


def _adopt_cell_trace(obs, path: str) -> None:
    """Re-emit one pool child's private trace file into the parent sink.

    Unreadable or half-written files are skipped, never fatal: a child
    that died mid-write already failed louder elsewhere, and a trace must
    not take the sweep down with it.  The file is deleted after adoption.
    """
    try:
        events = read_jsonl(path)
    except (OSError, ValueError):
        return
    for event in events:
        obs.sink.emit(event)
    try:
        os.unlink(path)
    except OSError:
        pass


def _aggregate(cell_result_cls, config, scheduler_name, records):
    """Fold per-seed records into one ``CellResult`` in seed order.

    Identical arithmetic to the serial ``run_cell`` loop — append per
    repetition, sum the violations — so cached, pooled, and in-process
    paths cannot diverge even in float rounding.
    """
    return cell_result_cls(
        scheduler_name=scheduler_name,
        config=config,
        hit_percents=[r.hit_percent for r in records],
        dead_end_rates=[r.dead_end_rate for r in records],
        mean_depths=[r.mean_depth for r in records],
        processors_touched=[r.mean_processors_touched for r in records],
        scheduling_times=[r.total_scheduling_time for r in records],
        makespans=[r.makespan for r in records],
        scheduled_but_missed=sum(r.guaranteed_violations for r in records),
        regrets=[dict(r.regret) for r in records],
    )


def _note_cell(
    obs, cell: SweepCell, record: CellRecord, index: int, total: int,
    *, source: str,
) -> None:
    """Per-cell observability: progress line, timing histogram, counters."""
    if not obs.enabled:
        return
    obs.metrics.counter("sweep_cells", source=source).inc()
    if source == "run":
        obs.metrics.histogram(
            "sweep_cell_seconds",
            scheduler=cell.scheduler_name,
            backend=record.backend,
        ).observe(record.elapsed_seconds)
    obs.logger.info(
        "cell done",
        cell=f"{index + 1}/{total}",
        scheduler=cell.scheduler_name,
        seed=cell.seed,
        backend=record.backend,
        processors=cell.config.num_processors,
        replication=cell.config.replication_rate,
        hit_percent=round(record.hit_percent, 2),
        source=source,
        elapsed_s=round(record.elapsed_seconds, 3),
    )
