"""The ``repro trace`` command: analyze, visualize, and diff JSONL traces.

Every run of the experiment CLI with ``--trace-out`` (simulator sweeps and
live cluster runs alike) leaves one merged JSONL trace; this module is the
terminal-side consumer::

    repro trace analyze trace.jsonl
    repro trace timeline trace.jsonl --phase 0
    repro trace diff sim.jsonl cluster.jsonl

``analyze`` replays the trace and attributes every deadline miss to
exactly one cause (see :mod:`repro.observability.analyze` for the
taxonomy), ``timeline`` draws an ASCII per-processor Gantt chart, and
``diff`` compares two traces task by task — the intended use is holding a
simulator trace against a live-cluster trace of the same configuration.

All heavy lifting lives in :mod:`repro.observability.analyze`; this module
only parses arguments, reads files, and prints.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..observability import (
    attribute_misses,
    diff_traces,
    read_jsonl,
    render_attribution,
    render_diff,
    render_timeline,
)

#: Subcommand name the experiments CLI routes here.
TRACE_COMMAND = "trace"


def build_trace_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser (separate so tests can drive it)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Analyze JSONL traces written by --trace-out: attribute "
            "deadline misses, draw per-processor timelines, and diff two "
            "traces (e.g. simulator vs live cluster)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze",
        help="classify every deadline miss into exactly one cause",
    )
    analyze.add_argument("trace", help="path to a JSONL trace")
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the attribution as JSON instead of tables",
    )

    timeline = commands.add_parser(
        "timeline",
        help="ASCII per-processor Gantt chart of the executed tasks",
    )
    timeline.add_argument("trace", help="path to a JSONL trace")
    timeline.add_argument(
        "--phase",
        type=int,
        help="restrict to tasks placed in this scheduling phase",
    )
    timeline.add_argument(
        "--width",
        type=int,
        default=72,
        help="chart width in columns (default 72)",
    )

    diff = commands.add_parser(
        "diff",
        help="compare two traces task by task (presence, outcome, causes)",
    )
    diff.add_argument("trace_a", help="first JSONL trace (e.g. simulator)")
    diff.add_argument("trace_b", help="second JSONL trace (e.g. cluster)")
    diff.add_argument(
        "--label-a", default=None, help="display name for the first trace"
    )
    diff.add_argument(
        "--label-b", default=None, help="display name for the second trace"
    )
    return parser


def run_analyze(args: argparse.Namespace) -> int:
    """Attribute every miss in one trace; prints tables (or JSON)."""
    events = read_jsonl(args.trace)
    report = attribute_misses(events)
    if args.json:
        document = {
            "total_tasks": report.total_tasks,
            "phases": report.phases,
            "outcomes": dict(report.outcomes),
            "misses": [
                {
                    "task_id": miss.task_id,
                    "cause": miss.cause,
                    "outcome": miss.outcome,
                    "detail": miss.detail,
                    "deadline": miss.deadline,
                    "miss_time": miss.miss_time,
                    "phase": miss.phase,
                    "workload": miss.workload,
                    "regret": miss.is_regret,
                }
                for miss in report.misses
            ],
            "by_cause": dict(report.by_cause),
            "workload_class": report.workload_class,
            "regret_misses": report.regret_misses,
            "oracle": (
                report.oracle.as_dict() if report.oracle is not None else None
            ),
        }
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_attribution(report))
    return 0


def run_timeline(args: argparse.Namespace) -> int:
    """Draw the per-processor Gantt chart of one trace."""
    if args.width < 16:
        raise SystemExit("--width must be at least 16 columns")
    events = read_jsonl(args.trace)
    print(render_timeline(events, phase=args.phase, width=args.width))
    return 0


def run_diff(args: argparse.Namespace) -> int:
    """Compare two traces; exit 0 on identical outcomes, 1 otherwise.

    The nonzero exit mirrors ``diff(1)``: scripted comparisons (CI holding
    the simulator against the live cluster) can branch on it directly.
    """
    events_a = read_jsonl(args.trace_a)
    events_b = read_jsonl(args.trace_b)
    diff = diff_traces(events_a, events_b)
    label_a = args.label_a or args.trace_a
    label_b = args.label_b or args.trace_b
    print(render_diff(diff, label_a=label_a, label_b=label_b))
    return 0 if diff.identical_outcomes else 1


#: Subcommand name -> handler taking the parsed namespace.
TRACE_HANDLERS = {
    "analyze": run_analyze,
    "timeline": run_timeline,
    "diff": run_diff,
}


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro trace`` (and the routed experiments CLI)."""
    parser = build_trace_parser()
    args = parser.parse_args(argv)
    try:
        return TRACE_HANDLERS[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via cli.main
    sys.exit(trace_main())
