"""Experiment configurations (paper Section 5.1 parameters).

The paper's setup: 10 sub-databases of 1000 records x 10 attributes, 1000
bursty transactions, deadlines ``SF * 10 * Estimated_Cost`` with SF in
[1, 3], replication rate R in [10%, 100%], processors 2..10, 10 runs per
point, 99% confidence.  :meth:`ExperimentConfig.paper` reproduces that
scale; :meth:`ExperimentConfig.quick` shrinks records and repetitions so CI
and the benchmark harness stay fast while preserving every ratio that
drives the result shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from ..core.domains import PARTITION_POLICIES
from ..service.admission import ADMISSION_POLICY_NAMES
from ..workload.arrivals import ARRIVAL_NAMES

#: Fields describing *how* a sweep executes (parallelism, caching) rather
#: than *what* it computes.  They are excluded from
#: :meth:`ExperimentConfig.cache_fields`, so changing them can never
#: invalidate cached results — ``--jobs 4`` reuses cells computed serially.
EXECUTION_FIELDS = ("jobs", "cache_dir", "resume")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: workload + machine + scheduler cost model.

    Frozen and built from plain picklable types, so a config can cross a
    ``multiprocessing`` spawn boundary unchanged (the parallel sweep engine
    relies on this).  All cost/time fields are in virtual quanta (one
    tuple-checking iteration = 1.0 unit), never wall seconds.
    """

    # --- workload (paper Section 5.1) ---
    num_transactions: int = 1000
    slack_factor: float = 1.0
    num_subdatabases: int = 10
    records_per_subdb: int = 1000
    num_attributes: int = 10
    domain_size: int = 100
    # Probability a transaction gives a key value (None = paper-literal
    # uniform attribute subsets, ~55%).  At paper scale 1000 transactions
    # against 10k records would offer 4.5x the deadline-feasible capacity
    # with the literal mix; 0.9 keeps offered load ~1.1x capacity at m=10,
    # the same balance the quick scale has naturally.
    key_probability: float | None = 0.9

    # --- machine ---
    num_processors: int = 10
    replication_rate: float = 0.3
    remote_cost: float = 400.0  # constant C of the wormhole model

    # --- scheduling cost model ---
    # kappa: virtual cost per generated vertex.  Chosen so one full pass over
    # the batch (kappa * m * n) stays comparable to the cheapest task class's
    # deadline horizon — the regime a Paragon-class host operates in.
    per_vertex_cost: float = 0.005

    # --- statistics ---
    runs: int = 10
    base_seed: int = 1998  # venue year; any constant works
    confidence: float = 0.99
    significance_level: float = 0.01

    # --- execution ---
    # Registry name of the ExecutionBackend the runner dispatches to
    # ("sim" = virtual-clock simulator, "cluster" = live TCP system,
    # "service" = long-lived streaming service under open-loop load).
    # Kept a plain string so configs stay picklable and open to backends
    # registered by downstream code.
    backend: str = "sim"

    # Registry name of the scheduler to run (see repro.core.registry).
    # None means "no explicit choice": experiments fall back to their own
    # scheduler set (the figures compare rtsads vs dcols), while a name
    # pins every cell of a sweep to that one scheduler.  An ordinary
    # cache field, so `--scheduler edf` sweeps are content-addressed
    # separately from the default comparisons.
    scheduler: Optional[str] = None

    # --- sharding (see src/repro/sharding/) ---
    # Number of scheduling domains the worker set is partitioned into and
    # the partitioning policy (a member of
    # repro.core.domains.PARTITION_POLICIES).  domains=1 is the paper's
    # single-master system; domains>1 dispatches through the sharded
    # runtime (sim) or the multi-master launcher (cluster).  Ordinary
    # cache fields, so shard-curve sweeps are content-addressed like any
    # other axis.
    domains: int = 1
    partition_policy: str = "hash"

    # Search-kernel registry name (repro.core.kernels): "scalar" is the
    # zero-dependency default, "vectorized" the numpy batch kernel, "auto"
    # picks vectorized when numpy is importable.  Kernels are bit-identical
    # by contract, so every cell result is byte-equal across kernels — the
    # field still enters the cache key (it is not an EXECUTION_FIELD), so
    # a kernel sweep re-validating that claim is content-addressed like
    # any other axis.
    kernel: str = "scalar"

    # --- service mode (see src/repro/service/; ignored by sim/cluster) ---
    # Arrival-process name for the open-loop load generator (a key of
    # repro.workload.arrivals.ARRIVAL_NAMES), the offered load as a
    # fraction of fleet capacity (1.0 = mean arrival work == what the
    # workers can clear), and the admission/overload-shedding policy
    # (a key of repro.service.admission.ADMISSION_POLICY_NAMES).  They
    # are ordinary cache fields, so load-curve grids are content-addressed
    # like every other sweep axis.
    arrival: str = "burst"
    offered_load: float = 1.0
    admission_policy: str = "reject-newest"

    # --- sweep execution (see experiments/sweep.py) ---
    # How the cell grid executes: worker processes to fan cells across
    # (1 = serial, in-process), where cached cell results live (None =
    # no cache), and whether a sweep is explicitly resuming an earlier,
    # interrupted invocation.  None of these affect what is computed —
    # they are excluded from the cache key (EXECUTION_FIELDS) and results
    # are byte-identical for every (jobs, cache_dir, resume) combination.
    jobs: int = 1
    cache_dir: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        """Reject configurations no experiment could meaningfully run."""
        if self.num_transactions <= 0:
            raise ValueError("num_transactions must be positive")
        if self.slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if not 0.0 < self.replication_rate <= 1.0:
            raise ValueError("replication_rate must be in (0, 1]")
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if self.remote_cost < 0:
            raise ValueError("remote_cost must be non-negative")
        if self.per_vertex_cost <= 0:
            raise ValueError("per_vertex_cost must be positive")
        if self.runs <= 0:
            raise ValueError("runs must be positive")
        if not self.backend:
            raise ValueError("backend must be a non-empty registry name")
        if self.scheduler is not None and not self.scheduler:
            raise ValueError(
                "scheduler must be None or a non-empty registry name"
            )
        if self.domains <= 0:
            raise ValueError("domains must be positive")
        from ..core.kernels import registered_kernels

        if self.kernel not in registered_kernels():
            raise ValueError(
                f"kernel must be one of {sorted(registered_kernels())}, "
                f"got {self.kernel!r}"
            )
        if self.domains > self.num_processors:
            raise ValueError(
                f"cannot split {self.num_processors} processors into "
                f"{self.domains} non-empty domains"
            )
        if self.partition_policy not in PARTITION_POLICIES:
            raise ValueError(
                f"partition_policy must be one of {PARTITION_POLICIES}, "
                f"got {self.partition_policy!r}"
            )
        if self.arrival not in ARRIVAL_NAMES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_NAMES}, got {self.arrival!r}"
            )
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if self.admission_policy not in ADMISSION_POLICY_NAMES:
            raise ValueError(
                f"admission_policy must be one of {ADMISSION_POLICY_NAMES}, "
                f"got {self.admission_policy!r}"
            )
        if self.jobs <= 0:
            raise ValueError("jobs must be positive (1 = serial)")
        if self.resume and self.cache_dir is None:
            raise ValueError(
                "resume requires a cache_dir: without cached cells there "
                "is nothing to resume from"
            )

    # ----- canonical scales --------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "ExperimentConfig":
        """The full Section-5.1 configuration."""
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides) -> "ExperimentConfig":
        """A CI-scale configuration preserving the paper's cost ratios.

        Records per sub-database shrink 5x (so scans cost 200 checking
        iterations instead of 1000) with the domain size shrunk alongside so
        the mean key frequency stays at the paper's 10 tuples per key; the
        transaction count shrinks 4x, and the remote cost C and per-vertex
        cost scale with the scan cost.  Runs drop to 3 — enough for a
        confidence interval, fast enough for benchmarks.
        """
        defaults = dict(
            num_transactions=250,
            records_per_subdb=200,
            domain_size=20,
            remote_cost=80.0,
            per_vertex_cost=0.02,
            key_probability=None,  # literal mix already balances this scale
            runs=3,
        )
        defaults.update(overrides)
        return cls(**defaults)

    # ----- derived quantities -------------------------------------------------

    @property
    def total_records(self) -> int:
        """``r``: global record count."""
        return self.num_subdatabases * self.records_per_subdb

    @property
    def scan_cost(self) -> float:
        """Worst-case cost of a non-key transaction (``k * r/d``)."""
        return float(self.records_per_subdb)

    def with_processors(self, num_processors: int) -> "ExperimentConfig":
        """A copy with ``num_processors`` replaced (figure-5 sweep axis)."""
        return replace(self, num_processors=num_processors)

    def with_replication(self, replication_rate: float) -> "ExperimentConfig":
        """A copy with ``replication_rate`` replaced (figure-6 sweep axis)."""
        return replace(self, replication_rate=replication_rate)

    def with_slack_factor(self, slack_factor: float) -> "ExperimentConfig":
        """A copy with ``slack_factor`` replaced (laxity sweep axis)."""
        return replace(self, slack_factor=slack_factor)

    def with_backend(self, backend: str) -> "ExperimentConfig":
        """A copy dispatching to another execution backend registry name."""
        return replace(self, backend=backend)

    def with_scheduler(self, scheduler: Optional[str]) -> "ExperimentConfig":
        """A copy pinned to one scheduler registry name (None unpins)."""
        return replace(self, scheduler=scheduler)

    def with_domains(self, domains: int) -> "ExperimentConfig":
        """A copy with ``domains`` replaced (shard-curve sweep axis)."""
        return replace(self, domains=domains)

    def with_kernel(self, kernel: str) -> "ExperimentConfig":
        """A copy pinned to one search kernel (see repro.core.kernels)."""
        return replace(self, kernel=kernel)

    def with_partition_policy(self, policy: str) -> "ExperimentConfig":
        """A copy with the domain-partitioning policy replaced."""
        return replace(self, partition_policy=policy)

    def with_offered_load(self, offered_load: float) -> "ExperimentConfig":
        """A copy with ``offered_load`` replaced (load-curve sweep axis)."""
        return replace(self, offered_load=offered_load)

    def with_arrival(self, arrival: str) -> "ExperimentConfig":
        """A copy with the service arrival-process name replaced."""
        return replace(self, arrival=arrival)

    def with_admission_policy(self, policy: str) -> "ExperimentConfig":
        """A copy with the service admission policy replaced."""
        return replace(self, admission_policy=policy)

    def with_execution(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        resume: Optional[bool] = None,
    ) -> "ExperimentConfig":
        """A copy with sweep-execution knobs replaced (None keeps current).

        Only touches :data:`EXECUTION_FIELDS`, so the returned config has
        the same :meth:`cache_fields` — and therefore the same cached
        cells — as this one.
        """
        overrides: Dict[str, object] = {}
        if jobs is not None:
            overrides["jobs"] = jobs
        if cache_dir is not None:
            overrides["cache_dir"] = cache_dir
        if resume is not None:
            overrides["resume"] = resume
        return replace(self, **overrides) if overrides else self

    def seeds(self) -> List[int]:
        """One deterministic seed per repetition.

        Purely arithmetic over ``(base_seed, runs)``: the same list comes
        back no matter where or how often it is called, which is what
        makes sweep cells reproducible from any worker process — the
        parallel engine never generates seeds, it only distributes these.
        """
        return [self.base_seed + run for run in range(self.runs)]

    def cache_fields(self) -> Dict[str, object]:
        """Every field that determines a run's outcome, as plain types.

        This is the identity the sweep cache hashes: all workload,
        machine, cost-model, statistics, and backend fields — everything
        except :data:`EXECUTION_FIELDS`, which only describe how a sweep
        executes.  Any change to any returned value must invalidate
        cached cells (tested in ``tests/experiments/test_sweep.py``).
        """
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in EXECUTION_FIELDS
        }


#: Sweep axes used by the figure reproductions (paper Section 5.1).
PROCESSOR_SWEEP: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10)
REPLICATION_SWEEP: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)
SLACK_FACTOR_SWEEP: Tuple[float, ...] = (1.0, 2.0, 3.0)
#: Offered-load axis of the service compliance-under-load curve: from
#: comfortable headroom through saturation into 1.6x overload.
OFFERED_LOAD_SWEEP: Tuple[float, ...] = (0.6, 0.9, 1.2, 1.6)
