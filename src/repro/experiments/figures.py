"""Reproduction of every figure and measurement in the paper's evaluation.

Each function regenerates one experiment (see DESIGN.md Section 4):

* :func:`figure5`  — deadline scalability vs processors (paper Figure 5)
* :func:`figure6`  — deadline compliance vs replication rate (paper Figure 6)
* :func:`laxity_sweep` — the SF in {1, 2, 3} sweep the text describes (E3)
* :func:`overhead_table` — the scheduling-cost measurement (E4), including
  the wall-clock distortion study motivating the virtual budget
* :func:`ablation_quantum`, :func:`ablation_cost`,
  :func:`ablation_representation` — design-choice ablations A1-A3

All return result objects carrying a :class:`~repro.metrics.reporting.FigureData`
(or table rows) plus a ``render()`` method producing the printable report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.affinity import UniformCommunicationModel
from ..core.cost import get_evaluator
from ..core.quantum import (
    FixedQuantum,
    LoadOnlyQuantum,
    SelfAdjustingQuantum,
    SlackOnlyQuantum,
)
from ..core.representations import AssignmentOrientedExpander
from ..core.search import PhaseContext, WallClockBudget, run_search
from ..core.cost import LoadBalancingEvaluator
from ..metrics.reporting import (
    FigureData,
    ascii_chart,
    format_figure,
    format_table,
)
from ..metrics.stats import difference_of_means
from .config import (
    PROCESSOR_SWEEP,
    REPLICATION_SWEEP,
    SLACK_FACTOR_SWEEP,
    ExperimentConfig,
)
from .runner import CellResult, build_workload, run_cell
from .sweep import run_grid

#: Display names used in figures, matching the paper's legends.
DISPLAY_NAMES = {
    "rtsads": "RT-SADS",
    "dcols": "D-COLS",
    "greedy_edf": "Greedy-EDF",
    "myopic": "Myopic",
    "random": "Random",
    "edf": "Global-EDF",
    "partitioned-edf": "Partitioned-EDF",
    "candidate-sort": "Candidate-Sort",
}

#: The paper's head-to-head comparison, used whenever a config does not
#: pin a scheduler of its own.
DEFAULT_SCHEDULERS = ("rtsads", "dcols")


def _pick_schedulers(
    config: ExperimentConfig, schedulers: Sequence[str]
) -> Sequence[str]:
    """``config.scheduler`` pins a sweep to one scheduler; otherwise the
    caller's (usually the paper's) comparison set stands."""
    if config.scheduler is not None:
        return (config.scheduler,)
    return schedulers


@dataclass
class SweepResult:
    """A reproduced figure: the series plus per-cell aggregates."""

    figure: FigureData
    cells: Dict[Tuple[str, float], CellResult]
    significance: List[str] = field(default_factory=list)

    def render(self, chart: bool = True) -> str:
        """Printable report: table, optional ASCII chart, significance."""
        parts = [format_figure(self.figure)]
        if chart:
            parts.append("")
            parts.append(ascii_chart(self.figure))
        if self.significance:
            parts.append("")
            parts.extend(self.significance)
        return "\n".join(parts)


def _run_sweep(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    configs: Sequence[ExperimentConfig],
    schedulers: Sequence[str],
    notes: Sequence[str] = (),
) -> SweepResult:
    """Shared machinery: one cell per (scheduler, x), stats across pairs.

    When the configs enable sweep execution (``jobs > 1`` or a
    ``cache_dir``), the *entire* grid is handed to
    :func:`repro.experiments.sweep.run_grid` as one batch, so a single
    worker pool covers every (scheduler, x, seed) cell — much better
    fan-out than pooling one cell at a time.  Otherwise each cell runs
    through the legacy serial :func:`~repro.experiments.runner.run_cell`
    path.  Either way the cells land in the same deterministic
    (scheduler-major, x-minor, seed-innermost) order, so the resulting
    figure is byte-identical across paths.
    """
    figure = FigureData(
        title=title, x_label=x_label, x_values=list(x_values), notes=list(notes)
    )
    cells: Dict[Tuple[str, float], CellResult] = {}
    if configs and (configs[0].jobs > 1 or configs[0].cache_dir):
        specs = [
            (config, name) for name in schedulers for config in configs
        ]
        grid = iter(run_grid(specs).cells)
        for name in schedulers:
            for x in x_values:
                cells[(name, x)] = next(grid)
    else:
        for name in schedulers:
            for x, config in zip(x_values, configs):
                cells[(name, x)] = run_cell(config, name)
    for name in schedulers:
        figure.add_series(
            DISPLAY_NAMES.get(name, name),
            [cells[(name, x)].mean_hit_percent for x in x_values],
        )
    significance = []
    if len(schedulers) >= 2 and configs and configs[0].runs >= 2:
        first, second = schedulers[0], schedulers[1]
        for x in x_values:
            test = difference_of_means(
                cells[(first, x)].hit_percents,
                cells[(second, x)].hit_percents,
                significance_level=configs[0].significance_level,
            )
            verdict = "significant" if test.significant else "not significant"
            significance.append(
                f"{x_label}={x}: mean diff "
                f"{test.mean_difference:+.2f} pts, p={test.p_value:.4f} "
                f"({verdict} at {configs[0].significance_level})"
            )
    return SweepResult(figure=figure, cells=cells, significance=significance)


def figure5(
    config: Optional[ExperimentConfig] = None,
    processors: Sequence[int] = PROCESSOR_SWEEP,
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> SweepResult:
    """Paper Figure 5: deadline scalability (R=30%, SF=1, m=2..10)."""
    config = config or ExperimentConfig.paper()
    schedulers = _pick_schedulers(config, schedulers)
    configs = [config.with_processors(m) for m in processors]
    return _run_sweep(
        title=(
            "Figure 5 - Deadline scalability "
            f"(R={config.replication_rate:.0%}, SF={config.slack_factor:g})"
        ),
        x_label="processors",
        x_values=list(processors),
        configs=configs,
        schedulers=schedulers,
        notes=[
            "y values are mean deadline hit ratios (%) over "
            f"{config.runs} runs",
        ],
    )


def figure6(
    config: Optional[ExperimentConfig] = None,
    replication_rates: Sequence[float] = REPLICATION_SWEEP,
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> SweepResult:
    """Paper Figure 6: compliance vs replication rate (P=10, SF=1)."""
    config = config or ExperimentConfig.paper()
    schedulers = _pick_schedulers(config, schedulers)
    configs = [config.with_replication(r) for r in replication_rates]
    return _run_sweep(
        title=(
            "Figure 6 - Deadline compliance vs replication rate "
            f"(P={config.num_processors}, SF={config.slack_factor:g})"
        ),
        x_label="replication",
        x_values=list(replication_rates),
        configs=configs,
        schedulers=schedulers,
        notes=[
            "y values are mean deadline hit ratios (%) over "
            f"{config.runs} runs",
        ],
    )


#: Shard-curve axes: the processor sweep extends past the paper's m=10
#: into the regime where one master's serialized search latency flattens
#: the compliance curve, and the domain counts compared against it.
SHARD_PROCESSOR_SWEEP: Tuple[int, ...] = (4, 8, 16, 24)
SHARD_DOMAIN_SWEEP: Tuple[int, ...] = (1, 2, 4)


def shard_curve(
    config: Optional[ExperimentConfig] = None,
    processors: Sequence[int] = SHARD_PROCESSOR_SWEEP,
    domains: Sequence[int] = SHARD_DOMAIN_SWEEP,
    scheduler: str = "rtsads",
) -> SweepResult:
    """Compliance vs m with the fleet split into k scheduling domains.

    One series per domain count, same scheduler everywhere: the figure
    isolates the *scheduling architecture* (how many concurrent masters)
    exactly the way Figure 5 isolates the algorithm.  The default config
    raises the per-vertex cost and transaction count until the single
    master's search latency dominates — its curve flattens and then
    collapses as m grows (every extra worker lengthens each phase's
    search, delaying every delivery), while k=4 domains keep scaling
    because each master searches ~n/k tasks over m/k workers and the four
    searches overlap on the shared clock, with inter-domain migration
    patching the partition's load imbalances.
    """
    config = config or ExperimentConfig.quick(
        num_transactions=500, per_vertex_cost=0.1
    )
    if config.scheduler is not None:
        scheduler = config.scheduler
    domains = sorted(set(int(k) for k in domains))
    if max(domains) > min(processors):
        raise ValueError(
            f"domains={max(domains)} cannot partition the smallest "
            f"machine in the sweep (m={min(processors)})"
        )
    figure = FigureData(
        title=(
            "Shard curve - Deadline compliance vs processors by domain "
            f"count ({DISPLAY_NAMES.get(scheduler, scheduler)}, "
            f"SF={config.slack_factor:g})"
        ),
        x_label="processors",
        x_values=list(processors),
        notes=[
            "y values are mean deadline hit ratios (%) over "
            f"{config.runs} runs",
            f"partition policy: {config.partition_policy}",
        ],
    )
    grid_configs = [
        config.with_processors(m).with_domains(k)
        for k in domains
        for m in processors
    ]
    cells: Dict[Tuple[str, float], CellResult] = {}
    if config.jobs > 1 or config.cache_dir:
        specs = [(cell_config, scheduler) for cell_config in grid_configs]
        grid = iter(run_grid(specs).cells)
        for k in domains:
            for m in processors:
                cells[(f"domains={k}", m)] = next(grid)
    else:
        ordered = iter(grid_configs)
        for k in domains:
            for m in processors:
                cells[(f"domains={k}", m)] = run_cell(next(ordered), scheduler)
    for k in domains:
        figure.add_series(
            f"domains={k}",
            [cells[(f"domains={k}", m)].mean_hit_percent for m in processors],
        )
    significance = []
    if len(domains) >= 2 and config.runs >= 2:
        low, high = f"domains={domains[0]}", f"domains={domains[-1]}"
        for m in processors:
            test = difference_of_means(
                cells[(high, m)].hit_percents,
                cells[(low, m)].hit_percents,
                significance_level=config.significance_level,
            )
            verdict = "significant" if test.significant else "not significant"
            significance.append(
                f"processors={m}: {high} vs {low} mean diff "
                f"{test.mean_difference:+.2f} pts, p={test.p_value:.4f} "
                f"({verdict} at {config.significance_level})"
            )
    return SweepResult(figure=figure, cells=cells, significance=significance)


@dataclass
class LaxitySweepResult:
    """E3: one Figure-5-style sweep per slack factor."""

    sweeps: Dict[float, SweepResult]

    def render(self) -> str:
        """One chartless sweep report per slack factor, ascending SF."""
        parts = []
        for slack_factor in sorted(self.sweeps):
            parts.append(self.sweeps[slack_factor].render(chart=False))
            parts.append("")
        return "\n".join(parts).rstrip()


def laxity_sweep(
    config: Optional[ExperimentConfig] = None,
    slack_factors: Sequence[float] = SLACK_FACTOR_SWEEP,
    processors: Sequence[int] = PROCESSOR_SWEEP,
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> LaxitySweepResult:
    """Section 5.1's "SF values range from 1 to 3" across the m sweep."""
    config = config or ExperimentConfig.paper()
    schedulers = _pick_schedulers(config, schedulers)
    sweeps = {}
    for slack_factor in slack_factors:
        sf_config = config.with_slack_factor(slack_factor)
        configs = [sf_config.with_processors(m) for m in processors]
        sweeps[slack_factor] = _run_sweep(
            title=(
                f"Laxity sweep - SF={slack_factor:g} "
                f"(R={config.replication_rate:.0%})"
            ),
            x_label="processors",
            x_values=list(processors),
            configs=configs,
            schedulers=schedulers,
        )
    return LaxitySweepResult(sweeps=sweeps)


#: Assumed wall-clock duration of one tuple-checking iteration (= 1 virtual
#: time unit) on period hardware, used only to express the CPython
#: distortion in comparable terms.  A mid-90s i860 node compares ~10 integer
#: attribute values with memory traffic in roughly a microsecond.
ASSUMED_CHECK_SECONDS = 1e-6


@dataclass
class OverheadResult:
    """E4: scheduling-cost measurement plus the CPython distortion study."""

    rows: List[List[object]]
    measured_per_vertex_seconds: float
    modelled_per_vertex_cost: float

    @property
    def distortion_factor(self) -> float:
        """How much CPython inflates per-vertex cost vs the modelled host.

        The model says a vertex costs ``kappa`` checking iterations; under
        the assumed iteration duration that is ``kappa *
        ASSUMED_CHECK_SECONDS`` wall-clock.  CPython's measured per-vertex
        time divided by that is the inflation a wall-clock quantum would
        suffer — the timing distortion the virtual budget removes.
        """
        modelled_seconds = self.modelled_per_vertex_cost * ASSUMED_CHECK_SECONDS
        if modelled_seconds <= 0:
            return float("nan")
        return self.measured_per_vertex_seconds / modelled_seconds

    def render(self) -> str:
        """The E4 cost table plus the wall-clock distortion summary."""
        headers = [
            "algorithm",
            "phases",
            "mean Q_s",
            "mean used",
            "total sched time",
            "sched/makespan %",
        ]
        table = format_table(headers, self.rows)
        return "\n".join(
            [
                "E4 - Scheduling cost (virtual time units)",
                table,
                "",
                "Wall-clock distortion study (why the budget is virtual):",
                f"  measured CPython cost per search vertex: "
                f"{self.measured_per_vertex_seconds * 1e6:.1f} us",
                f"  modelled per-vertex cost: "
                f"{self.modelled_per_vertex_cost:g} checking iterations "
                f"(~{self.modelled_per_vertex_cost * ASSUMED_CHECK_SECONDS * 1e6:.3f} us "
                "at 1 us per iteration on period hardware)",
                f"  => wall-clock quanta in CPython would inflate per-vertex "
                f"scheduling cost ~{self.distortion_factor:,.0f}x relative to "
                "the modelled host — the interpreter distortion the virtual "
                "budget removes.",
            ]
        )


def _measure_wall_clock_vertex_cost(
    config: ExperimentConfig, budget_seconds: float = 0.05
) -> float:
    """Seconds per vertex when a real phase runs under a wall-clock budget."""
    _, tasks = build_workload(config, config.base_seed)
    comm = UniformCommunicationModel(config.remote_cost)
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.task_id))
    ctx = PhaseContext(
        tasks=ordered,
        num_processors=config.num_processors,
        comm=comm,
        phase_start=0.0,
        quantum=float("inf"),
        initial_offsets=(0.0,) * config.num_processors,
        evaluator=LoadBalancingEvaluator(),
    )
    budget = WallClockBudget(quantum_seconds=budget_seconds)
    start = time.perf_counter()
    run_search(ctx, AssignmentOrientedExpander(), budget)
    elapsed = time.perf_counter() - start
    vertices = max(1, budget.vertices_charged)
    return elapsed / vertices


def overhead_table(
    config: Optional[ExperimentConfig] = None,
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> OverheadResult:
    """E4: per-phase scheduling time under the virtual budget, both sides."""
    config = config or ExperimentConfig.paper()
    rows: List[List[object]] = []
    for name in schedulers:
        cell = run_cell(config, name)
        total_sched = sum(cell.scheduling_times) / len(cell.scheduling_times)
        makespan = sum(cell.makespans) / len(cell.makespans)
        # Per-phase means come from a single representative run.
        from .runner import run_once

        result = run_once(config, name, config.base_seed)
        phases = result.phases
        mean_quantum = (
            sum(p.quantum for p in phases) / len(phases) if phases else 0.0
        )
        mean_used = (
            sum(p.time_used for p in phases) / len(phases) if phases else 0.0
        )
        rows.append(
            [
                DISPLAY_NAMES.get(name, name),
                len(phases),
                mean_quantum,
                mean_used,
                total_sched,
                100.0 * total_sched / makespan if makespan else 0.0,
            ]
        )
    return OverheadResult(
        rows=rows,
        measured_per_vertex_seconds=_measure_wall_clock_vertex_cost(config),
        modelled_per_vertex_cost=config.per_vertex_cost,
    )


@dataclass
class AblationResult:
    """A table of variants of one design choice."""

    title: str
    headers: List[str]
    rows: List[List[object]]

    def render(self) -> str:
        """Title plus the variants table, formatted for a terminal."""
        return "\n".join([self.title, format_table(self.headers, self.rows)])


def ablation_quantum(
    config: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """A1: the self-adjusting quantum vs fixed and single-term policies."""
    config = config or ExperimentConfig.paper()
    # Three fixed strawmen: "tiny" cannot complete even one task probe per
    # phase, "medium" is a hand-tuned sweet spot, "long" pushes the
    # feasibility bound so far out that waiting tasks expire.  The paper's
    # criterion needs no tuning and must beat both degenerate extremes.
    tiny_fixed = 10 * config.per_vertex_cost
    medium_fixed = max(2.0, 100 * config.per_vertex_cost)
    long_fixed = 2.0 * config.scan_cost
    policies = [
        ("self-adjusting (paper)", SelfAdjustingQuantum()),
        ("slack-only", SlackOnlyQuantum()),
        ("load-only", LoadOnlyQuantum()),
        (f"fixed tiny ({tiny_fixed:g})", FixedQuantum(tiny_fixed)),
        (f"fixed medium ({medium_fixed:g})", FixedQuantum(medium_fixed)),
        (f"fixed long ({long_fixed:g})", FixedQuantum(long_fixed)),
    ]
    rows = []
    for label, policy in policies:
        cell = run_cell(config, "rtsads", quantum_policy=policy)
        rows.append(
            [
                label,
                cell.mean_hit_percent,
                cell.mean_dead_end_rate * 100,
                cell.mean_depth,
                sum(cell.scheduling_times) / len(cell.scheduling_times),
            ]
        )
    return AblationResult(
        title=(
            "A1 - Quantum allocation policies (RT-SADS, "
            f"P={config.num_processors}, R={config.replication_rate:.0%}, "
            f"SF={config.slack_factor:g})"
        ),
        headers=[
            "policy",
            "hit ratio %",
            "dead-end %",
            "mean depth",
            "total sched time",
        ],
        rows=rows,
    )


def ablation_cost(
    config: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """A2: cost function / heuristic choices for RT-SADS."""
    config = config or ExperimentConfig.paper()
    rows = []
    for name in ("load_balancing", "earliest_finish", "min_slack", "fifo"):
        cell = run_cell(config, "rtsads", evaluator=get_evaluator(name))
        rows.append(
            [
                name,
                cell.mean_hit_percent,
                cell.mean_processors_touched,
                cell.mean_depth,
            ]
        )
    return AblationResult(
        title=(
            "A2 - Vertex evaluation functions (RT-SADS, "
            f"P={config.num_processors}, R={config.replication_rate:.0%})"
        ),
        headers=["evaluator", "hit ratio %", "procs touched", "mean depth"],
        rows=rows,
    )


def ablation_memory(
    config: Optional[ExperimentConfig] = None,
    cl_bounds: Sequence[Optional[int]] = (8, 64, 512, 4096, None),
    scheduler_name: str = "rtsads",
) -> AblationResult:
    """A5: bounded scheduling memory (candidate-list size).

    The paper stores every feasible successor in the candidate list CL; a
    real host has finite scheduling memory, so our CL drops its oldest
    (shallowest) candidates beyond a bound.  This sweep shows how small the
    CL can get before schedule quality suffers — in practice depth-first
    search rarely revisits old candidates, so tight bounds are nearly free.
    """
    from .runner import build_scheduler
    from ..simulator.runtime import simulate

    config = config or ExperimentConfig.paper()
    rows = []
    for bound in cl_bounds:
        hits = []
        for seed in config.seeds():
            _, tasks = build_workload(config, seed)
            comm = UniformCommunicationModel(config.remote_cost)
            scheduler = build_scheduler(scheduler_name, config, comm)
            scheduler.max_candidates = bound
            result = simulate(
                scheduler, tasks, num_workers=config.num_processors
            )
            hits.append(100.0 * result.hit_ratio)
        label = "unbounded" if bound is None else str(bound)
        rows.append([label, sum(hits) / len(hits)])
    return AblationResult(
        title=(
            "A5 - Candidate-list memory bound "
            f"({DISPLAY_NAMES.get(scheduler_name, scheduler_name)}, "
            f"P={config.num_processors}, R={config.replication_rate:.0%})"
        ),
        headers=["CL bound", "hit ratio %"],
        rows=rows,
    )


def ablation_representation(
    config: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """A3: representation-only comparison, validating Section 3's conjecture.

    Everything else — quantum policy, evaluator, per-vertex cost — is held
    identical; the table shows the dead-end rate, search depth, and number
    of processors each representation manages to use per phase.
    """
    config = config or ExperimentConfig.paper()
    rows = []
    for name in ("rtsads", "dcols"):
        cell = run_cell(config, name)
        rows.append(
            [
                DISPLAY_NAMES[name],
                cell.mean_hit_percent,
                cell.mean_dead_end_rate * 100,
                cell.mean_depth,
                cell.mean_processors_touched,
            ]
        )
    return AblationResult(
        title=(
            "A3 - Representation only (identical quantum/evaluator, "
            f"P={config.num_processors}, R={config.replication_rate:.0%})"
        ),
        headers=[
            "representation",
            "hit ratio %",
            "dead-end %",
            "mean depth",
            "procs touched/phase",
        ],
        rows=rows,
    )
