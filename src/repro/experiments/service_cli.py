"""The ``repro serve`` / ``repro load`` subcommands: service mode on a CLI.

``repro serve`` stands up a long-lived scheduler service (master + worker
fleet) on a TCP port and runs until SIGTERM, a ``--max-seconds`` cap, or —
with ``--idle-stop`` — until the last client disconnects with nothing in
flight.  ``repro load`` drives an open-loop submission stream against a
running service and prints the client-side compliance digest.

Both sides rebuild the *template universe* deterministically from the same
``(workload flags, seed)``, so the only thing that crosses the wire is
template ids — which is why the workload flags of a ``load`` invocation
must match its ``serve``.  A quickstart lives in README.md; the
compliance-under-load methodology is in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from ..observability import instrumented
from .config import ExperimentConfig

#: Flags shared by serve and load that must agree between the two sides
#: (they define the template universe both rebuild).
_WORKLOAD_FLAG_DESTS = (
    "workers", "transactions", "seed", "slack_factor", "replication"
)


def _add_workload_flags(parser: argparse.ArgumentParser) -> None:
    """The template-universe flags, identical on both subcommands."""
    group = parser.add_argument_group(
        "template universe",
        "must match between serve and load (both sides rebuild the "
        "workload deterministically from these)",
    )
    group.add_argument(
        "--workers", type=int, default=2,
        help="worker fleet size / data placement width (default 2)",
    )
    group.add_argument(
        "--transactions", type=int, default=100,
        help="distinct transaction templates (default 100)",
    )
    group.add_argument(
        "--seed", type=int, default=1,
        help="workload seed (default 1)",
    )
    group.add_argument(
        "--slack-factor", type=float, default=3.0,
        help="deadline slack factor SF (default 3; live runs burn real "
        "milliseconds on hops, so SF=1 would measure socket latency)",
    )
    group.add_argument(
        "--replication", type=float, default=None,
        help="override replication rate",
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--verbose", "-v", action="store_true",
        help="structured INFO logging on stderr",
    )
    group.add_argument("--quiet", action="store_true", help=argparse.SUPPRESS)
    group.add_argument(
        "--trace-out", metavar="PATH",
        help="write a JSONL event trace (repro trace analyze PATH)",
    )
    group.add_argument("--metrics-out", metavar="PATH", help=argparse.SUPPRESS)


def experiment_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """The template universe both subcommands rebuild from flags."""
    overrides = {
        "backend": "service",
        "num_processors": args.workers,
        "num_transactions": args.transactions,
        "base_seed": args.seed,
        "slack_factor": args.slack_factor,
        "runs": 1,
    }
    if args.replication is not None:
        overrides["replication_rate"] = args.replication
    return replace(ExperimentConfig.quick(), **overrides)


# ----- repro serve -----------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser of ``repro serve`` (separate so tests can drive it)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run a long-lived RT-SADS scheduler service: master on a TCP "
            "port, a worker fleet, streaming admission. Stop with SIGTERM "
            "for a graceful drain."
        ),
    )
    _add_workload_flags(parser)
    parser.add_argument(
        "--port", type=int, default=0,
        help="master port (default 0 = OS-chosen; printed at startup)",
    )
    parser.add_argument(
        "--scheduler", default="rtsads",
        help="scheduler registry name (default rtsads)",
    )
    parser.add_argument(
        "--policy", default="reject-newest",
        help="admission policy: reject-newest, least-slack, or "
        "schedulability (default reject-newest)",
    )
    parser.add_argument(
        "--backlog-units", type=float, default=0.0,
        help="admission backlog cap in cost units (default 0 = derive "
        "from fleet size and mean template laxity)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=0.0,
        help="stop serving after this many wall seconds (default 0 = "
        "serve until SIGTERM or idle-stop)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="wall seconds in-flight work may finish during a drain "
        "before being surrendered (default 5)",
    )
    parser.add_argument(
        "--idle-stop", action="store_true",
        help="exit once at least one client was served and none remain "
        "(what scripted smoke runs use)",
    )
    parser.add_argument(
        "--join", action="append", default=[], metavar="INDEX@SECONDS",
        help="spawn an elastic worker mid-run, e.g. --join 2@3.0 "
        "(repeatable)",
    )
    parser.add_argument(
        "--kill-worker", metavar="INDEX@SECONDS",
        help="fail-stop one worker mid-run, e.g. 1@2.5",
    )
    parser.add_argument(
        "--time-scale", type=float, default=None,
        help="wall seconds per virtual cost unit (default 0.001)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None,
        help="worker heartbeat interval in seconds",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=None,
        help="hard abort ceiling for the whole run (safety net)",
    )
    _add_observability_flags(parser)
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro serve``."""
    # Heavy imports stay inside main so `repro fig5` never pays for them.
    from ..cluster import FailurePlan
    from ..cluster.config import ClusterConfig
    from ..service.config import JoinPlan, ServiceConfig
    from ..service.server import run_service
    from .cli import build_instrumentation, write_metrics_snapshot

    args = build_serve_parser().parse_args(argv)
    experiment = experiment_from_args(args)
    knobs = {"port": args.port}
    if args.kill_worker:
        knobs["failure"] = FailurePlan.parse(args.kill_worker)
    if args.time_scale is not None:
        knobs["seconds_per_unit"] = args.time_scale
    if args.heartbeat is not None:
        knobs["heartbeat_interval"] = args.heartbeat
    if args.max_wall_seconds is not None:
        knobs["max_wall_seconds"] = args.max_wall_seconds
    service = ServiceConfig(
        cluster=ClusterConfig(
            experiment=experiment,
            scheduler_name=args.scheduler,
            **knobs,
        ),
        admission_policy=args.policy,
        max_backlog_units=args.backlog_units,
        drain_grace_seconds=args.drain_grace,
        max_service_seconds=args.max_seconds,
        stop_when_idle=args.idle_stop,
    )
    joins = [JoinPlan.parse(spec) for spec in args.join]
    obs = build_instrumentation(args)

    def _serve(instrumentation) -> int:
        report = run_service(
            service,
            instrumentation=instrumentation,
            joins=joins,
            install_signal_handlers=True,
        )
        print(report.render())
        # A violated guarantee falsifies the theorem the service exists
        # to uphold; surrendered guarantees (drain) do not count.
        return 0 if report.guaranteed_violations == 0 else 1

    if obs is None:
        return _serve(None)
    try:
        with instrumented(obs):
            status = _serve(obs)
        if args.metrics_out:
            write_metrics_snapshot(args.metrics_out, obs, ["serve"])
    finally:
        obs.close()
    return status


# ----- repro load ------------------------------------------------------------


def build_load_parser() -> argparse.ArgumentParser:
    """Parser of ``repro load`` (separate so tests can drive it)."""
    parser = argparse.ArgumentParser(
        prog="repro load",
        description=(
            "Drive an open-loop transaction stream against a running "
            "'repro serve' and print the compliance digest. The template "
            "universe flags must match the serve side."
        ),
    )
    _add_workload_flags(parser)
    parser.add_argument(
        "--port", type=int, required=True,
        help="port of the running service master",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="host of the running service master (default 127.0.0.1)",
    )
    parser.add_argument(
        "--arrival", default="poisson",
        help="arrival process: burst, poisson, uniform, batched, pareto, "
        "lognormal, diurnal (default poisson)",
    )
    parser.add_argument(
        "--load", type=float, default=1.0,
        help="offered load as a fraction of fleet capacity (default 1.0)",
    )
    parser.add_argument(
        "--submissions", type=int, default=0,
        help="submissions to stream (default 0 = one per template)",
    )
    parser.add_argument(
        "--load-seed", type=int, default=0,
        help="seed of the arrival stream (default 0 = the workload seed)",
    )
    parser.add_argument(
        "--time-scale", type=float, default=None,
        help="wall seconds per virtual cost unit; must match the serve "
        "side (default 0.001)",
    )
    parser.add_argument(
        "--settle-grace", type=float, default=5.0,
        help="extra wall seconds to await straggler RESULTs (default 5)",
    )
    parser.add_argument(
        "--clients", type=int, default=1,
        help="concurrent client connections; the stream is dealt "
        "round-robin across them (default 1)",
    )
    return parser


def load_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro load``."""
    from ..cluster.network import ConnectionLost
    from ..service.load import LoadSpec, run_load

    args = build_load_parser().parse_args(argv)
    experiment = experiment_from_args(args)
    spec_overrides = {}
    if args.time_scale is not None:
        spec_overrides["seconds_per_unit"] = args.time_scale
    spec = LoadSpec(
        experiment=experiment,
        arrival=args.arrival,
        offered_load=args.load,
        submissions=args.submissions,
        seed=args.load_seed,
        settle_grace_seconds=args.settle_grace,
        clients=args.clients,
        **spec_overrides,
    )
    try:
        report = run_load(args.host, args.port, spec)
    except (ConnectionRefusedError, ConnectionLost):
        print(
            f"no service listening on {args.host}:{args.port} "
            "(is 'repro serve' running?)",
            file=sys.stderr,
        )
        return 2
    print(report.render())
    # Unsettled submissions mean the service broke its every-ACCEPT-gets-
    # a-RESULT promise (or vanished); make that loud in exit status.
    return 0 if report.unsettled == 0 else 1
