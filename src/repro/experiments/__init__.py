"""Experiment harness: configs, runners, and figure reproductions."""

from .config import (
    PROCESSOR_SWEEP,
    REPLICATION_SWEEP,
    SLACK_FACTOR_SWEEP,
    ExperimentConfig,
)
from .extensions import (
    ablation_interconnect,
    extension_load_sweep,
    extension_failures,
    extension_reclaiming,
    extension_write_mix,
)
from .figures import (
    AblationResult,
    LaxitySweepResult,
    OverheadResult,
    SweepResult,
    ablation_cost,
    ablation_memory,
    ablation_quantum,
    ablation_representation,
    figure5,
    figure6,
    laxity_sweep,
    overhead_table,
)
from .runner import (
    SCHEDULER_NAMES,
    CellResult,
    build_scheduler,
    build_workload,
    run_cell,
    run_once,
)

__all__ = [
    "AblationResult",
    "CellResult",
    "ExperimentConfig",
    "LaxitySweepResult",
    "OverheadResult",
    "PROCESSOR_SWEEP",
    "REPLICATION_SWEEP",
    "SCHEDULER_NAMES",
    "SLACK_FACTOR_SWEEP",
    "SweepResult",
    "ablation_cost",
    "ablation_interconnect",
    "ablation_memory",
    "ablation_quantum",
    "ablation_representation",
    "build_scheduler",
    "extension_failures",
    "extension_load_sweep",
    "extension_reclaiming",
    "extension_write_mix",
    "build_workload",
    "figure5",
    "figure6",
    "laxity_sweep",
    "overhead_table",
    "run_cell",
    "run_once",
]
