"""Experiment harness: configs, runners, sweeps, and figure reproductions.

The public surface: :class:`ExperimentConfig` describes a cell,
:func:`run_once`/:func:`run_cell` execute it, :func:`run_grid` fans whole
grids over worker processes with per-cell result caching, and the
``figure5``/``figure6``/... builders reproduce the paper's evaluation.
"""

from .config import (
    PROCESSOR_SWEEP,
    REPLICATION_SWEEP,
    SLACK_FACTOR_SWEEP,
    ExperimentConfig,
)
from .extensions import (
    ablation_interconnect,
    extension_load_sweep,
    extension_failures,
    extension_reclaiming,
    extension_write_mix,
)
from .figures import (
    AblationResult,
    LaxitySweepResult,
    OverheadResult,
    SweepResult,
    ablation_cost,
    ablation_memory,
    ablation_quantum,
    ablation_representation,
    figure5,
    figure6,
    laxity_sweep,
    overhead_table,
    shard_curve,
)
from .runner import (
    SCHEDULER_NAMES,
    CellResult,
    build_scheduler,
    build_workload,
    run_cell,
    run_once,
)
from .sweep import (
    CellRecord,
    PortPool,
    SweepCache,
    SweepCell,
    SweepOutcome,
    SweepStats,
    config_digest,
    run_grid,
)

__all__ = [
    "AblationResult",
    "CellRecord",
    "CellResult",
    "ExperimentConfig",
    "PortPool",
    "SweepCache",
    "SweepCell",
    "SweepOutcome",
    "SweepStats",
    "config_digest",
    "run_grid",
    "LaxitySweepResult",
    "OverheadResult",
    "PROCESSOR_SWEEP",
    "REPLICATION_SWEEP",
    "SCHEDULER_NAMES",
    "SLACK_FACTOR_SWEEP",
    "SweepResult",
    "ablation_cost",
    "ablation_interconnect",
    "ablation_memory",
    "ablation_quantum",
    "ablation_representation",
    "build_scheduler",
    "extension_failures",
    "extension_load_sweep",
    "extension_reclaiming",
    "extension_write_mix",
    "build_workload",
    "figure5",
    "figure6",
    "laxity_sweep",
    "overhead_table",
    "run_cell",
    "run_once",
    "shard_curve",
]
