"""Experiment runner: build everything, run repetitions, aggregate.

One *cell* is (config, scheduler); the runner builds the database, the
transaction workload, the machine, and the scheduler from the config, runs
the cell ``config.runs`` times with distinct seeds, and aggregates hit
ratios with the paper's statistics (mean, 99% CI).

*Where* each repetition runs is the config's (or the caller's) choice:
:func:`run_once` dispatches through the
:class:`~repro.runtime.backend.ExecutionBackend` registry, so the same
cell definition executes on the virtual-clock simulator or the live TCP
cluster and comes back as the same
:class:`~repro.runtime.report.RunReport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..analysis.schedulability import (
    analyze_tasks,
    regret_section,
    unknown_regret_section,
)
from ..core.affinity import UniformCommunicationModel
from ..core.cost import VertexEvaluator
from ..core.quantum import QuantumPolicy
from ..core.registry import SCHEDULER_NAMES, SchedulerContext, make_scheduler
from ..core.scheduler import Scheduler
from ..database.database import DatabaseConfig, DistributedDatabase
from ..metrics.regret import summarize_regret
from ..metrics.stats import ConfidenceInterval, confidence_interval, mean
from ..observability import get_instrumentation
from ..runtime.backend import ExecutionBackend, get_backend
from ..runtime.report import RunReport
from ..workload.transactions import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)
from .config import ExperimentConfig

def build_scheduler(
    name: str,
    config: ExperimentConfig,
    comm: UniformCommunicationModel,
    evaluator: Optional[VertexEvaluator] = None,
    quantum_policy: Optional[QuantumPolicy] = None,
) -> Scheduler:
    """Instantiate a scheduler by registry name with optional overrides.

    Thin adapter over :func:`repro.core.registry.make_scheduler`: it packs
    the experiment-level knobs into a
    :class:`~repro.core.registry.SchedulerContext` so builders stay
    ignorant of :class:`ExperimentConfig`.
    """
    return make_scheduler(
        name,
        SchedulerContext(
            comm=comm,
            per_vertex_cost=config.per_vertex_cost,
            evaluator=evaluator,
            quantum_policy=quantum_policy,
            kernel=None if config.kernel == "scalar" else config.kernel,
        ),
    )


def build_workload(config: ExperimentConfig, seed: int):
    """Database + tasks for one repetition; returns (database, task set)."""
    rng = random.Random(seed)
    database = DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=config.num_subdatabases,
            records_per_subdb=config.records_per_subdb,
            num_attributes=config.num_attributes,
            domain_size=config.domain_size,
        ),
        num_processors=config.num_processors,
        replication_rate=config.replication_rate,
        rng=rng,
    )
    generator = TransactionWorkloadGenerator(
        database=database,
        config=TransactionWorkloadConfig(
            num_transactions=config.num_transactions,
            slack_factor=config.slack_factor,
            key_probability=config.key_probability,
            seed=seed,
        ),
    )
    return database, generator.generate_tasks()


def run_once(
    config: ExperimentConfig,
    scheduler_name: str,
    seed: int,
    evaluator: Optional[VertexEvaluator] = None,
    quantum_policy: Optional[QuantumPolicy] = None,
    validate_phases: bool = False,
    backend: Union[str, ExecutionBackend, None] = None,
) -> RunReport:
    """One full run of one cell with one seed on one backend.

    ``backend`` (a registry name or a pre-built
    :class:`~repro.runtime.backend.ExecutionBackend` instance) overrides
    ``config.backend``; the default follows the config, so a plain
    ``run_once(config, name, seed)`` keeps running on the simulator.
    """
    chosen = get_backend(backend if backend is not None else config.backend)
    report = chosen.run_once(
        config,
        scheduler_name,
        seed,
        evaluator=evaluator,
        quantum_policy=quantum_policy,
        validate_phases=validate_phases,
    )
    if not report.regret:
        report.regret = _regret_for(report, config, seed)
    return report


#: Backends whose workload :func:`build_workload` reconstructs exactly
#: (the live cluster and the sharded runtime mirror the simulator's
#: generator, same seed — partitioning never changes the task set).
_ORACLE_BACKENDS = frozenset({"sim", "cluster", "sharded"})


def _regret_for(
    report: RunReport, config: ExperimentConfig, seed: int
) -> dict:
    """Oracle verdict + regret for one finished run.

    The oracle rebuilds the run's workload offline — possible whenever
    the backend derives its task set deterministically from ``(config,
    seed)``.  Backends that mint tasks at request time (the streaming
    service) get an explicit ``unknown`` placeholder instead, keeping the
    exported schema identical everywhere.
    """
    if report.backend not in _ORACLE_BACKENDS:
        return unknown_regret_section(
            report.total_tasks, report.num_workers
        )
    _, tasks = build_workload(config, seed)
    verdict = analyze_tasks(tasks, config.num_processors)
    return regret_section(verdict, report.deadline_hits)


@dataclass
class CellResult:
    """Aggregate of all repetitions of one (config, scheduler) cell."""

    scheduler_name: str
    config: ExperimentConfig
    hit_percents: List[float]
    dead_end_rates: List[float]
    mean_depths: List[float]
    processors_touched: List[float]
    scheduling_times: List[float]
    makespans: List[float]
    scheduled_but_missed: int
    #: One schedulability-oracle regret section per repetition (empty
    #: dicts when the oracle was not consulted for that run).
    regrets: List[Dict[str, object]] = field(default_factory=list)

    def regret_summary(self) -> Dict[str, object]:
        """Per-cell aggregate of the repetitions' oracle verdicts."""
        return summarize_regret(self.regrets)

    @property
    def mean_hit_percent(self) -> float:
        """Mean deadline hit ratio (%) across repetitions — the y axis."""
        return mean(self.hit_percents)

    def hit_ci(self) -> Optional[ConfidenceInterval]:
        """Confidence interval on the hit ratio, or None below 2 runs."""
        if len(self.hit_percents) < 2:
            return None
        return confidence_interval(self.hit_percents, self.config.confidence)

    @property
    def mean_dead_end_rate(self) -> float:
        """Mean fraction of phases ending in a search dead end."""
        return mean(self.dead_end_rates)

    @property
    def mean_depth(self) -> float:
        """Mean search-tree depth reached per phase across repetitions."""
        return mean(self.mean_depths)

    @property
    def mean_processors_touched(self) -> float:
        """Mean processors the schedule actually used per phase."""
        return mean(self.processors_touched)


def run_cell(
    config: ExperimentConfig,
    scheduler_name: str,
    evaluator: Optional[VertexEvaluator] = None,
    quantum_policy: Optional[QuantumPolicy] = None,
    backend: Union[str, ExecutionBackend, None] = None,
) -> CellResult:
    """Run every repetition of a cell and aggregate the paper's metrics.

    When the config enables sweep execution (``jobs > 1`` or a
    ``cache_dir``) and no scheduler-construction overrides are given, the
    repetitions route through the parallel sweep engine
    (:func:`repro.experiments.sweep.run_grid`): cached repetitions are
    reused and missing ones may fan across worker processes.  Overrides
    (``evaluator``/``quantum_policy``, the ablation studies) force the
    serial in-process path — they are live objects that cannot be part of
    a cache key.  Either path aggregates in ``config.seeds()`` order, so
    results are bit-identical.  Not thread-safe under instrumentation
    (the metrics registry is unlocked); virtual quanta throughout.
    """
    # Resolve the backend once so the aggregated CellResult (and the
    # metrics snapshot) record where the cell actually ran, even when the
    # caller overrode the config's choice.
    resolved = get_backend(backend if backend is not None else config.backend)
    if config.backend != resolved.name:
        config = config.with_backend(resolved.name)
    backend = resolved
    if (
        evaluator is None
        and quantum_policy is None
        and (config.jobs > 1 or config.cache_dir)
    ):
        from .sweep import run_grid

        return run_grid([(config, scheduler_name)]).cells[0]
    obs = get_instrumentation()
    counters_before = (
        dict(obs.metrics.snapshot()["counters"]) if obs.enabled else {}
    )
    hit_percents: List[float] = []
    dead_end_rates: List[float] = []
    mean_depths: List[float] = []
    processors_touched: List[float] = []
    scheduling_times: List[float] = []
    makespans: List[float] = []
    regrets: List[Dict[str, object]] = []
    missed = 0
    seeds = config.seeds()
    for repetition, seed in enumerate(seeds, start=1):
        report = run_once(
            config,
            scheduler_name,
            seed,
            evaluator=evaluator,
            quantum_policy=quantum_policy,
            backend=backend,
        )
        hit_percents.append(report.hit_percent)
        dead_end_rates.append(report.dead_end_rate)
        mean_depths.append(report.mean_depth)
        processors_touched.append(report.mean_processors_touched)
        scheduling_times.append(report.total_scheduling_time)
        makespans.append(report.makespan)
        regrets.append(dict(report.regret))
        missed += report.guaranteed_violations
        obs.logger.info(
            "repetition done",
            scheduler=scheduler_name,
            rep=f"{repetition}/{len(seeds)}",
            seed=seed,
            backend=report.backend,
            processors=config.num_processors,
            replication=config.replication_rate,
            hit_percent=round(report.hit_percent, 2),
            phases=report.num_phases,
        )
    cell = CellResult(
        scheduler_name=scheduler_name,
        config=config,
        hit_percents=hit_percents,
        dead_end_rates=dead_end_rates,
        mean_depths=mean_depths,
        processors_touched=processors_touched,
        scheduling_times=scheduling_times,
        makespans=makespans,
        scheduled_but_missed=missed,
        regrets=regrets,
    )
    if obs.enabled:
        _record_cell_snapshot(obs, cell, counters_before)
    return cell


def _record_cell_snapshot(obs, cell: CellResult, counters_before) -> None:
    """Store one cell's summary + counter deltas for ``--metrics-out``."""
    counters_after = obs.metrics.snapshot()["counters"]
    deltas = {
        key: value - counters_before.get(key, 0)
        for key, value in counters_after.items()
        if value != counters_before.get(key, 0)
    }
    config = cell.config
    obs.record_cell(
        {
            "scheduler": cell.scheduler_name,
            "backend": config.backend,
            "processors": config.num_processors,
            "replication": config.replication_rate,
            "slack_factor": config.slack_factor,
            "transactions": config.num_transactions,
            "runs": config.runs,
            "mean_hit_percent": cell.mean_hit_percent,
            "mean_dead_end_rate": cell.mean_dead_end_rate,
            "scheduled_but_missed": cell.scheduled_but_missed,
            "counters": deltas,
        }
    )
