"""``python -m repro.experiments`` entry point.

The main guard matters here: the parallel sweep engine spawns worker
processes, and ``multiprocessing``'s spawn bootstrap re-imports the
parent's entry module in every child — without the guard each worker
would re-run the CLI instead of executing its cells.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
