"""Command-line interface: regenerate any experiment from a terminal.

Examples::

    python -m repro.experiments fig5 --quick
    python -m repro.experiments fig6 --paper
    python -m repro.experiments laxity --quick --runs 2
    python -m repro.experiments overhead --quick
    python -m repro.experiments ablate-quantum --quick
    python -m repro.experiments shard-curve --runs 1 --export shard.json
    python -m repro.experiments all --quick

Parallel sweeps (see EXPERIMENTS.md "Parallel sweeps" appendix)::

    python -m repro.experiments fig5 --quick --jobs 4
    python -m repro.experiments fig5 --quick --jobs 4 --resume
    python -m repro.experiments fig5 --quick --jobs 4 --export fig5.json

Observability (see EXPERIMENTS.md appendix for the schemas)::

    python -m repro.experiments fig5 --quick --verbose
    python -m repro.experiments fig5 --quick --trace-out trace.jsonl \\
        --metrics-out metrics.json

Trace analysis (see docs/OBSERVABILITY.md; also ``repro trace ...``)::

    python -m repro.experiments trace analyze trace.jsonl
    python -m repro.experiments trace timeline trace.jsonl --phase 0
    python -m repro.experiments trace diff sim.jsonl cluster.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, replace
from typing import List, Optional

from ..observability import (
    Instrumentation,
    JsonlSink,
    StructuredLogger,
    instrumented,
)
from ..core.domains import PARTITION_POLICIES
from ..core.kernels import KERNEL_NAMES
from ..core.registry import SCHEDULER_NAMES
from ..runtime import BACKEND_NAMES
from .config import ExperimentConfig
from .sweep import DEFAULT_CACHE_DIR
from .extensions import (
    ablation_interconnect,
    extension_load_sweep,
    extension_failures,
    extension_reclaiming,
    extension_write_mix,
    service_curve,
)
from .figures import (
    ablation_cost,
    ablation_memory,
    ablation_quantum,
    ablation_representation,
    figure5,
    figure6,
    laxity_sweep,
    overhead_table,
    shard_curve,
)

EXPERIMENTS = (
    "fig5",
    "fig6",
    "laxity",
    "overhead",
    "ablate-quantum",
    "ablate-cost",
    "ablate-representation",
    "ablate-interconnect",
    "ablate-memory",
    "reclaiming",
    "load-sweep",
    "write-mix",
    "failures",
)

#: Runs real processes over TCP, so it is not part of "all" (which stays a
#: pure-simulation sweep safe for any sandbox).
CLUSTER_COMMAND = "cluster"

#: Also real processes (one service lifetime per cell) — selectable by
#: name, excluded from "all" for the same reason as 'cluster'.
SERVICE_CURVE_COMMAND = "service-curve"

#: Pure simulation, but runs at its own pressure scale (heavier search
#: cost than the shared --quick config), so it is a standalone command
#: rather than part of "all".
SHARD_CURVE_COMMAND = "shard-curve"


def _parse_domains(spec: str) -> tuple:
    """Parse ``--domains``: one count (``4``) or a comma list (``1,2,4``)."""
    try:
        values = tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise ValueError(f"invalid --domains value {spec!r}") from None
    if not values or any(value < 1 for value in values):
        raise ValueError(f"invalid --domains value {spec!r}")
    return values


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (kept separate so tests can drive it)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'A Scalable Scheduling Algorithm "
            "for Real-Time Distributed Systems' (ICDCS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS
        + ("all", CLUSTER_COMMAND, SERVICE_CURVE_COMMAND, SHARD_CURVE_COMMAND),
        help=(
            "which experiment to run; 'cluster' runs the live master/worker "
            "system over localhost TCP instead of the simulator; "
            "'service-curve' sweeps compliance-under-load on the live "
            "streaming service (see also: repro serve / repro load); "
            "'shard-curve' sweeps compliance vs processors for each "
            "scheduling-domain count"
        ),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--paper",
        action="store_true",
        help="full Section-5.1 scale (1000 transactions, 10 runs; slow)",
    )
    scale.add_argument(
        "--quick",
        action="store_true",
        help="CI scale preserving cost ratios (default)",
    )
    parser.add_argument("--runs", type=int, help="override repetitions per cell")
    parser.add_argument(
        "--transactions", type=int, help="override transaction count"
    )
    parser.add_argument("--seed", type=int, help="override base seed")
    parser.add_argument(
        "--processors", type=int, help="override fixed processor count"
    )
    parser.add_argument(
        "--replication", type=float, help="override fixed replication rate"
    )
    parser.add_argument(
        "--slack-factor", type=float, help="override slack factor SF"
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        help=(
            "pin every cell to one scheduler registry name (default: the "
            "paper's rtsads-vs-dcols comparison for figures, rtsads for "
            "'cluster')"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        help=(
            "execution backend for every cell: 'sim' (virtual-clock "
            "simulator, the default), 'cluster' (live TCP processes), or "
            "'service' (live streaming service under open-loop load)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        help=(
            "search kernel for every phase: 'scalar' (default, "
            "dependency-free), 'vectorized' (numpy batch evaluation, "
            "requires the [fast] extra), or 'auto' (vectorized when "
            "numpy is importable).  Kernels are bit-identical; this "
            "only changes speed"
        ),
    )
    sharding = parser.add_argument_group(
        "scheduling domains",
        "split the workers into k domains, one master each, with "
        "inter-domain migration (see docs/ARCHITECTURE.md)",
    )
    sharding.add_argument(
        "--domains",
        metavar="K[,K...]",
        help=(
            "scheduling-domain count: a single k shards any experiment "
            "(sim or cluster) into k masters; a comma list sets the "
            "shard-curve series (default 1,2,4)"
        ),
    )
    sharding.add_argument(
        "--partition-policy",
        choices=PARTITION_POLICIES,
        help="how workers are assigned to domains (default hash)",
    )
    sweeps = parser.add_argument_group(
        "parallel sweeps",
        "fan cells over worker processes and cache finished cells "
        "(results are byte-identical for every combination of these flags)",
    )
    sweeps.add_argument(
        "--jobs",
        "-j",
        type=int,
        help=(
            "worker processes for independent cells (default 1 = serial; "
            f"implies caching under {DEFAULT_CACHE_DIR} unless --no-cache)"
        ),
    )
    sweeps.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "cache finished cells under DIR so re-runs skip them "
            f"(default {DEFAULT_CACHE_DIR} when --jobs/--resume is given, "
            "otherwise off)"
        ),
    )
    caching = sweeps.add_mutually_exclusive_group()
    caching.add_argument(
        "--no-cache",
        action="store_true",
        help="never read or write the cell cache, even with --jobs",
    )
    caching.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep: re-run only cells missing from "
            "the cache (implies caching)"
        ),
    )
    sweeps.add_argument(
        "--export",
        metavar="PATH",
        help=(
            "also write the figure's data as JSON to PATH "
            "(fig5, fig6, laxity, shard-curve only; byte-stable across "
            "--jobs/--resume)"
        ),
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="progress line per repetition on stderr (INFO level)",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress everything below ERROR",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event trace (phase spans, task lifecycle)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a JSON metrics snapshot (per-scheduler counters, per cell)",
    )
    cluster = parser.add_argument_group(
        "cluster mode", "only meaningful with the 'cluster' experiment"
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes to spawn (default 4)",
    )
    cluster.add_argument(
        "--tasks",
        type=int,
        default=200,
        help="transactions in the live workload (default 200)",
    )
    cluster.add_argument(
        "--kill-worker",
        metavar="INDEX@SECONDS",
        help="fail-stop one worker mid-run, e.g. 1@0.5",
    )
    cluster.add_argument(
        "--time-scale",
        type=float,
        help="wall seconds per virtual cost unit (default 0.001)",
    )
    cluster.add_argument(
        "--heartbeat",
        type=float,
        help="worker heartbeat interval in seconds (default 0.25)",
    )
    return parser


def build_instrumentation(args: argparse.Namespace) -> Optional[Instrumentation]:
    """The CLI's instrumentation, or None when every flag is off.

    Instrumentation stays disabled unless at least one observability flag is
    given, keeping the default run path as fast as the uninstrumented seed.
    """
    wants_any = args.verbose or args.trace_out or args.metrics_out
    if not wants_any:
        return None
    if args.verbose:
        level = "info"
    elif args.quiet:
        level = "error"
    else:
        level = "warning"
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    return Instrumentation(
        logger=StructuredLogger(name="repro.experiments", level=level),
        sink=sink,
    )


def write_metrics_snapshot(
    path: str, obs: Instrumentation, experiments: List[str]
) -> None:
    """Dump the run's registry snapshot plus per-cell summaries as JSON."""
    document = {
        "experiments": experiments,
        "cells": obs.cells,
        "metrics": obs.metrics.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def sweep_execution_from_args(args: argparse.Namespace) -> dict:
    """The (jobs, cache_dir, resume) overrides the sweep flags imply.

    Caching policy: ``--cache-dir`` always enables it; ``--jobs N`` and
    ``--resume`` turn it on under :data:`DEFAULT_CACHE_DIR`; ``--no-cache``
    forces it off; and a plain serial invocation leaves it off entirely, so
    the default CLI run touches nothing on disk.
    """
    jobs = args.jobs if args.jobs is not None else 1
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    elif jobs > 1 or args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    else:
        cache_dir = None
    return {"jobs": jobs, "cache_dir": cache_dir, "resume": args.resume}


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Build the run's :class:`ExperimentConfig` from parsed CLI flags.

    Starts from the chosen scale (``--paper`` / ``--quick``), applies the
    generic workload overrides, then the sweep-execution knobs from
    :func:`sweep_execution_from_args`.
    """
    config = (
        ExperimentConfig.paper() if args.paper else ExperimentConfig.quick()
    )
    overrides = dict(sweep_execution_from_args(args))
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.transactions is not None:
        overrides["num_transactions"] = args.transactions
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.processors is not None:
        overrides["num_processors"] = args.processors
    if args.replication is not None:
        overrides["replication_rate"] = args.replication
    if args.slack_factor is not None:
        overrides["slack_factor"] = args.slack_factor
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.scheduler is not None:
        overrides["scheduler"] = args.scheduler
    if args.kernel is not None:
        overrides["kernel"] = args.kernel
    if getattr(args, "domains", None) is not None:
        values = _parse_domains(args.domains)
        if len(values) == 1:
            overrides["domains"] = values[0]
        elif args.experiment != SHARD_CURVE_COMMAND:
            raise SystemExit(
                "--domains accepts a comma list only with shard-curve"
            )
    if getattr(args, "partition_policy", None) is not None:
        overrides["partition_policy"] = args.partition_policy
    return replace(config, **overrides) if overrides else config


#: Experiment name -> builder returning a result object with ``.render()``.
EXPERIMENT_BUILDERS = {
    "fig5": figure5,
    "fig6": figure6,
    "laxity": laxity_sweep,
    "overhead": overhead_table,
    "ablate-quantum": ablation_quantum,
    "ablate-cost": ablation_cost,
    "ablate-representation": ablation_representation,
    "ablate-interconnect": ablation_interconnect,
    "ablate-memory": ablation_memory,
    "reclaiming": extension_reclaiming,
    "load-sweep": extension_load_sweep,
    "write-mix": extension_write_mix,
    "failures": extension_failures,
    SERVICE_CURVE_COMMAND: service_curve,
    SHARD_CURVE_COMMAND: shard_curve,
}


def build_experiment(name: str, config: ExperimentConfig, **kwargs):
    """Run one experiment by CLI name and return its result object.

    ``kwargs`` pass through to the builder (only shard-curve uses any:
    its ``domains`` series).
    """
    try:
        builder = EXPERIMENT_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}") from None
    return builder(config, **kwargs)


def run_experiment(name: str, config: ExperimentConfig) -> str:
    """Run one experiment by CLI name and return its printable report."""
    return build_experiment(name, config).render()


def _sweep_regret(result) -> dict:
    """Per-cell oracle regret summaries of one sweep, keyed for JSON.

    Shape: ``{scheduler: {x_value: summary}}`` using
    :func:`repro.metrics.regret.summarize_regret`; cells without regret
    data (non-figure results) contribute nothing.  Deterministic given
    the cells, so exports stay byte-stable across ``--jobs``/``--resume``.
    """
    section: dict = {}
    for (scheduler, x), cell in getattr(result, "cells", {}).items():
        if not hasattr(cell, "regret_summary"):
            continue
        section.setdefault(scheduler, {})[f"{x:g}"] = cell.regret_summary()
    return section


def export_figure_json(path: str, name: str, result) -> None:
    """Write one experiment's figure data as canonical JSON.

    Supports results carrying a ``figure`` (fig5/fig6 sweeps) and the
    laxity result's per-SF sweep dict; sweep results additionally carry a
    ``regret`` section (compliance vs the schedulability oracle's bound,
    see EXPERIMENTS.md).  The document is dumped with sorted keys and a
    fixed indent, and dataclass floats serialize via ``repr``, so two
    runs that computed identical values produce byte-identical files —
    this is what CI's ``sweep-smoke`` job compares across ``--jobs``
    counts.
    """
    if hasattr(result, "figure"):
        document = {"experiment": name, "figure": asdict(result.figure)}
        regret = _sweep_regret(result)
        if regret:
            document["regret"] = regret
    elif hasattr(result, "sweeps"):
        document = {
            "experiment": name,
            "figures": {
                f"SF={sf:g}": asdict(result.sweeps[sf].figure)
                for sf in sorted(result.sweeps)
            },
        }
        regret = {
            f"SF={sf:g}": _sweep_regret(result.sweeps[sf])
            for sf in sorted(result.sweeps)
        }
        if any(regret.values()):
            document["regret"] = regret
    else:
        raise ValueError(
            f"experiment {name!r} has no figure data to export; --export "
            "supports fig5, fig6, laxity, shard-curve, and service-curve"
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cluster_config_from_args(
    args: argparse.Namespace,
) -> ExperimentConfig:
    """The 'cluster' subcommand's :class:`ExperimentConfig`.

    Starts from the shared :func:`config_from_args` so every generic
    override (--transactions, --seed, --runs, ...) means the same thing on
    both backends, then applies the live-friendly presets where no
    override was given: the CLI's historical 200-task / 4-worker scale,
    one run, a slack factor of 3 (live deadlines burn real milliseconds
    on message hops, so the tightest setting would measure socket latency,
    not scheduling), and base seed 1.
    """
    config = config_from_args(args)
    presets = {"backend": "cluster"}
    if args.transactions is None:
        presets["num_transactions"] = args.tasks
    if args.processors is None:
        presets["num_processors"] = args.workers
    if args.slack_factor is None:
        presets["slack_factor"] = 3.0
    if args.runs is None:
        presets["runs"] = 1
    if args.seed is None:
        presets["base_seed"] = 1
    return replace(config, **presets)


def shard_config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """The 'shard-curve' subcommand's :class:`ExperimentConfig`.

    Starts from the shared :func:`config_from_args`, then applies the
    curve's pressure presets where no override was given.  The figure
    only separates domain counts when the single master is
    search-latency-bound (many tasks per batch, expensive vertices), so
    the defaults raise the per-vertex cost and the transaction count
    well above the generic --quick scale; at --quick scale all domain
    counts would sit on top of each other.
    """
    config = config_from_args(args)
    presets = {}
    if args.transactions is None:
        presets["num_transactions"] = 500
    # No CLI flag exposes the per-vertex cost; the shard curve is
    # *about* search latency, so the pressure preset applies at both
    # scales.
    presets["per_vertex_cost"] = 0.1
    return replace(config, **presets) if presets else config


def run_cluster(args: argparse.Namespace) -> int:
    """Run one cell on the live master/worker system and print its report."""
    # Imported lazily: simulation-only usage never touches sockets or
    # multiprocessing machinery.
    from ..cluster import FailurePlan
    from ..runtime.live import ClusterBackend
    from .runner import run_once

    knobs = {}
    if args.kill_worker:
        knobs["failure"] = FailurePlan.parse(args.kill_worker)
    if args.time_scale is not None:
        knobs["seconds_per_unit"] = args.time_scale
    if args.heartbeat is not None:
        knobs["heartbeat_interval"] = args.heartbeat
    backend = ClusterBackend(**knobs)
    config = cluster_config_from_args(args)
    # The live repetition draws its seed exactly where the simulator
    # does, so `--seed S` reproduces one specific simulated repetition
    # on real processes.
    seed = config.seeds()[0]
    obs = build_instrumentation(args)
    scheduler = args.scheduler or "rtsads"
    if obs is None:
        report = run_once(config, scheduler, seed, backend=backend)
    else:
        try:
            with instrumented(obs):
                with obs.span(
                    "cluster_run", workers=config.num_processors
                ):
                    report = run_once(
                        config, scheduler, seed, backend=backend
                    )
            if args.metrics_out:
                write_metrics_snapshot(
                    args.metrics_out, obs, [CLUSTER_COMMAND]
                )
        finally:
            obs.close()
    print(report.render())
    # A guaranteed task missing its deadline falsifies the theorem the
    # live system exists to demonstrate; make that loud in exit status.
    return 0 if report.guaranteed_violations == 0 else 1


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-cluster`` console script."""
    forwarded = list(sys.argv[1:] if argv is None else argv)
    return main([CLUSTER_COMMAND, *forwarded])


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` / ``repro-experiments`` console scripts."""
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist and arglist[0] == "trace":
        # The trace toolbox has its own subcommand grammar; route before
        # the experiment parser rejects the unknown positional.
        from .trace_cli import trace_main

        return trace_main(arglist[1:])
    if arglist and arglist[0] == "serve":
        # Service mode has its own grammar too (see service_cli).
        from .service_cli import serve_main

        return serve_main(arglist[1:])
    if arglist and arglist[0] == "load":
        from .service_cli import load_main

        return load_main(arglist[1:])
    parser = build_parser()
    args = parser.parse_args(arglist)
    if args.experiment == CLUSTER_COMMAND:
        return run_cluster(args)
    if args.export and args.experiment not in (
        "fig5", "fig6", "laxity", SERVICE_CURVE_COMMAND, SHARD_CURVE_COMMAND
    ):
        parser.error(
            "--export requires fig5, fig6, laxity, shard-curve, "
            "or service-curve"
        )
    extra = {}
    if args.experiment == SHARD_CURVE_COMMAND:
        config = shard_config_from_args(args)
        if args.domains is not None:
            extra["domains"] = _parse_domains(args.domains)
    else:
        config = config_from_args(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    def run_all() -> None:
        """Run and print every selected experiment, exporting if asked."""
        for name in names:
            result = build_experiment(name, config, **extra)
            print(result.render())
            print()
            if args.export:
                export_figure_json(args.export, name, result)

    obs = build_instrumentation(args)
    if obs is None:
        run_all()
        return 0
    try:
        with instrumented(obs):
            for name in names:
                obs.logger.info("experiment start", experiment=name)
                with obs.span("experiment", experiment=name):
                    result = build_experiment(name, config, **extra)
                    print(result.render())
                print()
                if args.export:
                    export_figure_json(args.export, name, result)
                    obs.logger.info("figure exported", path=args.export)
        if args.metrics_out:
            write_metrics_snapshot(args.metrics_out, obs, names)
            obs.logger.info("metrics written", path=args.metrics_out)
        if args.trace_out:
            obs.logger.info("trace written", path=args.trace_out)
    finally:
        obs.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
