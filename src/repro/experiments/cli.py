"""Command-line interface: regenerate any experiment from a terminal.

Examples::

    python -m repro.experiments fig5 --quick
    python -m repro.experiments fig6 --paper
    python -m repro.experiments laxity --quick --runs 2
    python -m repro.experiments overhead --quick
    python -m repro.experiments ablate-quantum --quick
    python -m repro.experiments all --quick

Observability (see EXPERIMENTS.md appendix for the schemas)::

    python -m repro.experiments fig5 --quick --verbose
    python -m repro.experiments fig5 --quick --trace-out trace.jsonl \\
        --metrics-out metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from ..observability import (
    Instrumentation,
    JsonlSink,
    StructuredLogger,
    instrumented,
)
from ..runtime import BACKEND_NAMES
from .config import ExperimentConfig
from .extensions import (
    ablation_interconnect,
    extension_load_sweep,
    extension_failures,
    extension_reclaiming,
    extension_write_mix,
)
from .figures import (
    ablation_cost,
    ablation_memory,
    ablation_quantum,
    ablation_representation,
    figure5,
    figure6,
    laxity_sweep,
    overhead_table,
)

EXPERIMENTS = (
    "fig5",
    "fig6",
    "laxity",
    "overhead",
    "ablate-quantum",
    "ablate-cost",
    "ablate-representation",
    "ablate-interconnect",
    "ablate-memory",
    "reclaiming",
    "load-sweep",
    "write-mix",
    "failures",
)

#: Runs real processes over TCP, so it is not part of "all" (which stays a
#: pure-simulation sweep safe for any sandbox).
CLUSTER_COMMAND = "cluster"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'A Scalable Scheduling Algorithm "
            "for Real-Time Distributed Systems' (ICDCS 1998)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", CLUSTER_COMMAND),
        help=(
            "which experiment to run; 'cluster' runs the live master/worker "
            "system over localhost TCP instead of the simulator"
        ),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--paper",
        action="store_true",
        help="full Section-5.1 scale (1000 transactions, 10 runs; slow)",
    )
    scale.add_argument(
        "--quick",
        action="store_true",
        help="CI scale preserving cost ratios (default)",
    )
    parser.add_argument("--runs", type=int, help="override repetitions per cell")
    parser.add_argument(
        "--transactions", type=int, help="override transaction count"
    )
    parser.add_argument("--seed", type=int, help="override base seed")
    parser.add_argument(
        "--processors", type=int, help="override fixed processor count"
    )
    parser.add_argument(
        "--replication", type=float, help="override fixed replication rate"
    )
    parser.add_argument(
        "--slack-factor", type=float, help="override slack factor SF"
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        help=(
            "execution backend for every cell: 'sim' (virtual-clock "
            "simulator, the default) or 'cluster' (live TCP processes)"
        ),
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="progress line per repetition on stderr (INFO level)",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress everything below ERROR",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL event trace (phase spans, task lifecycle)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a JSON metrics snapshot (per-scheduler counters, per cell)",
    )
    cluster = parser.add_argument_group(
        "cluster mode", "only meaningful with the 'cluster' experiment"
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes to spawn (default 4)",
    )
    cluster.add_argument(
        "--tasks",
        type=int,
        default=200,
        help="transactions in the live workload (default 200)",
    )
    cluster.add_argument(
        "--scheduler",
        default="rtsads",
        help="scheduler to run on the live master (default rtsads)",
    )
    cluster.add_argument(
        "--kill-worker",
        metavar="INDEX@SECONDS",
        help="fail-stop one worker mid-run, e.g. 1@0.5",
    )
    cluster.add_argument(
        "--time-scale",
        type=float,
        help="wall seconds per virtual cost unit (default 0.001)",
    )
    cluster.add_argument(
        "--heartbeat",
        type=float,
        help="worker heartbeat interval in seconds (default 0.25)",
    )
    return parser


def build_instrumentation(args: argparse.Namespace) -> Optional[Instrumentation]:
    """The CLI's instrumentation, or None when every flag is off.

    Instrumentation stays disabled unless at least one observability flag is
    given, keeping the default run path as fast as the uninstrumented seed.
    """
    wants_any = args.verbose or args.trace_out or args.metrics_out
    if not wants_any:
        return None
    if args.verbose:
        level = "info"
    elif args.quiet:
        level = "error"
    else:
        level = "warning"
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    return Instrumentation(
        logger=StructuredLogger(name="repro.experiments", level=level),
        sink=sink,
    )


def write_metrics_snapshot(
    path: str, obs: Instrumentation, experiments: List[str]
) -> None:
    """Dump the run's registry snapshot plus per-cell summaries as JSON."""
    document = {
        "experiments": experiments,
        "cells": obs.cells,
        "metrics": obs.metrics.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = (
        ExperimentConfig.paper() if args.paper else ExperimentConfig.quick()
    )
    overrides = {}
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.transactions is not None:
        overrides["num_transactions"] = args.transactions
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.processors is not None:
        overrides["num_processors"] = args.processors
    if args.replication is not None:
        overrides["replication_rate"] = args.replication
    if args.slack_factor is not None:
        overrides["slack_factor"] = args.slack_factor
    if args.backend is not None:
        overrides["backend"] = args.backend
    return replace(config, **overrides) if overrides else config


def run_experiment(name: str, config: ExperimentConfig) -> str:
    if name == "fig5":
        return figure5(config).render()
    if name == "fig6":
        return figure6(config).render()
    if name == "laxity":
        return laxity_sweep(config).render()
    if name == "overhead":
        return overhead_table(config).render()
    if name == "ablate-quantum":
        return ablation_quantum(config).render()
    if name == "ablate-cost":
        return ablation_cost(config).render()
    if name == "ablate-representation":
        return ablation_representation(config).render()
    if name == "ablate-interconnect":
        return ablation_interconnect(config).render()
    if name == "ablate-memory":
        return ablation_memory(config).render()
    if name == "reclaiming":
        return extension_reclaiming(config).render()
    if name == "load-sweep":
        return extension_load_sweep(config).render()
    if name == "write-mix":
        return extension_write_mix(config).render()
    if name == "failures":
        return extension_failures(config).render()
    raise ValueError(f"unknown experiment {name!r}")


def cluster_config_from_args(
    args: argparse.Namespace,
) -> ExperimentConfig:
    """The 'cluster' subcommand's :class:`ExperimentConfig`.

    Starts from the shared :func:`config_from_args` so every generic
    override (--transactions, --seed, --runs, ...) means the same thing on
    both backends, then applies the live-friendly presets where no
    override was given: the CLI's historical 200-task / 4-worker scale,
    one run, a slack factor of 3 (live deadlines burn real milliseconds
    on message hops, so the tightest setting would measure socket latency,
    not scheduling), and base seed 1.
    """
    config = config_from_args(args)
    presets = {"backend": "cluster"}
    if args.transactions is None:
        presets["num_transactions"] = args.tasks
    if args.processors is None:
        presets["num_processors"] = args.workers
    if args.slack_factor is None:
        presets["slack_factor"] = 3.0
    if args.runs is None:
        presets["runs"] = 1
    if args.seed is None:
        presets["base_seed"] = 1
    return replace(config, **presets)


def run_cluster(args: argparse.Namespace) -> int:
    """Run one cell on the live master/worker system and print its report."""
    # Imported lazily: simulation-only usage never touches sockets or
    # multiprocessing machinery.
    from ..cluster import FailurePlan
    from ..runtime.live import ClusterBackend
    from .runner import run_once

    knobs = {}
    if args.kill_worker:
        knobs["failure"] = FailurePlan.parse(args.kill_worker)
    if args.time_scale is not None:
        knobs["seconds_per_unit"] = args.time_scale
    if args.heartbeat is not None:
        knobs["heartbeat_interval"] = args.heartbeat
    backend = ClusterBackend(**knobs)
    config = cluster_config_from_args(args)
    # The live repetition draws its seed exactly where the simulator
    # does, so `--seed S` reproduces one specific simulated repetition
    # on real processes.
    seed = config.seeds()[0]
    obs = build_instrumentation(args)
    if obs is None:
        report = run_once(config, args.scheduler, seed, backend=backend)
    else:
        try:
            with instrumented(obs):
                with obs.span(
                    "cluster_run", workers=config.num_processors
                ):
                    report = run_once(
                        config, args.scheduler, seed, backend=backend
                    )
            if args.metrics_out:
                write_metrics_snapshot(
                    args.metrics_out, obs, [CLUSTER_COMMAND]
                )
        finally:
            obs.close()
    print(report.render())
    # A guaranteed task missing its deadline falsifies the theorem the
    # live system exists to demonstrate; make that loud in exit status.
    return 0 if report.guaranteed_violations == 0 else 1


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-cluster`` console script."""
    forwarded = list(sys.argv[1:] if argv is None else argv)
    return main([CLUSTER_COMMAND, *forwarded])


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == CLUSTER_COMMAND:
        return run_cluster(args)
    config = config_from_args(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    obs = build_instrumentation(args)
    if obs is None:
        for name in names:
            print(run_experiment(name, config))
            print()
        return 0
    try:
        with instrumented(obs):
            for name in names:
                obs.logger.info("experiment start", experiment=name)
                with obs.span("experiment", experiment=name):
                    print(run_experiment(name, config))
                print()
        if args.metrics_out:
            write_metrics_snapshot(args.metrics_out, obs, names)
            obs.logger.info("metrics written", path=args.metrics_out)
        if args.trace_out:
            obs.logger.info("trace written", path=args.trace_out)
    finally:
        obs.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
