"""Extension experiments beyond the paper's evaluation section.

These exercise directions the paper points at but does not evaluate:

* :func:`extension_reclaiming` — X1, resource reclaiming (the paper's
  reference [3]): workers finish early relative to worst-case estimates and
  the runtime reclaims the slack.
* :func:`extension_load_sweep` — X2, an open system: Poisson transaction
  arrivals at increasing offered load instead of the single burst, probing
  where each algorithm's compliance collapses.
* :func:`extension_write_mix` — X3, read/write transaction mixes with
  primary-copy routing and index maintenance.
* :func:`extension_failures` — X4, fail-stop processor crashes with
  rescheduling of the surrendered queues.
* :func:`ablation_interconnect` — A4, drops the wormhole
  (distance-independent) communication assumption and replaces the constant
  ``C`` with store-and-forward costs over a 2-D mesh.
* :func:`service_curve` — X5, deadline compliance under open-loop load on
  the *live* streaming service: one service lifetime per cell, shedding
  policies compared across offered-load points.

All return :class:`~repro.experiments.figures.AblationResult`-style tables
(:func:`service_curve` returns a figure-bearing
:class:`~repro.experiments.figures.SweepResult`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from ..core.affinity import UniformCommunicationModel
from ..metrics.stats import mean
from ..simulator.execution import (
    FirstMatchDatabaseExecution,
    ScaledExecution,
    StochasticExecution,
)
from ..simulator.interconnect import MeshCommunicationModel, near_square_mesh
from ..simulator.runtime import simulate
from ..workload.arrivals import PoissonArrival
from ..workload.transactions import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)
from .config import OFFERED_LOAD_SWEEP, ExperimentConfig
from .figures import DISPLAY_NAMES, AblationResult, SweepResult
from .runner import build_scheduler, build_workload


def _build_database_workload(config: ExperimentConfig, seed: int,
                             arrivals=None, write_fraction: float = 0.0):
    """Database, tasks, and raw transactions for one repetition."""
    import random

    from ..database.database import DatabaseConfig, DistributedDatabase

    rng = random.Random(seed)
    database = DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=config.num_subdatabases,
            records_per_subdb=config.records_per_subdb,
            num_attributes=config.num_attributes,
            domain_size=config.domain_size,
        ),
        num_processors=config.num_processors,
        replication_rate=config.replication_rate,
        rng=rng,
    )
    generator = TransactionWorkloadGenerator(
        database=database,
        config=TransactionWorkloadConfig(
            num_transactions=config.num_transactions,
            slack_factor=config.slack_factor,
            key_probability=config.key_probability,
            write_fraction=write_fraction,
            seed=seed,
        ),
        arrivals=arrivals,
    )
    tasks, transactions = generator.generate()
    return database, tasks, transactions


def extension_write_mix(
    config: Optional[ExperimentConfig] = None,
    write_fractions: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> AblationResult:
    """X3: read/write transaction mixes (the paper assumed read-only).

    Update transactions are pinned to their partition's primary copy
    (primary-copy replication keeps replicas consistent and serializes
    same-partition writes through one FIFO queue), shrinking the workload's
    *effective* replication.  Two effects pull in opposite directions:
    pinning squeezes processor choice (hurting the sequence-oriented
    representation the way low replication does), while the paper's
    deadline rule ``SF * 10 * cost`` grants write transactions — whose
    worst-case cost includes the write work — proportionally more absolute
    laxity.  The table reports the net effect; RT-SADS dominance at every
    mix is the invariant the bench asserts.
    """
    config = config or ExperimentConfig.paper()
    rows = []
    for fraction in write_fractions:
        row: List[object] = [fraction]
        for name in schedulers:
            hits = []
            for seed in config.seeds():
                _, tasks, _ = _build_database_workload(
                    config, seed, write_fraction=fraction
                )
                comm = UniformCommunicationModel(config.remote_cost)
                scheduler = build_scheduler(name, config, comm)
                result = simulate(
                    scheduler, tasks, num_workers=config.num_processors
                )
                hits.append(100.0 * result.hit_ratio)
            row.append(mean(hits))
        rows.append(row)
    return AblationResult(
        title=(
            "X3 - Read/write transaction mix "
            f"(P={config.num_processors}, R={config.replication_rate:.0%}, "
            f"SF={config.slack_factor:g})"
        ),
        headers=["write fraction"]
        + [DISPLAY_NAMES.get(n, n) + " hit %" for n in schedulers],
        rows=rows,
    )


def extension_reclaiming(
    config: Optional[ExperimentConfig] = None,
    scheduler_name: str = "rtsads",
) -> AblationResult:
    """Resource reclaiming: worst-case plans vs early-finishing execution.

    Compares RT-SADS under (a) worst-case execution, (b) uniformly early
    completion, (c) per-task stochastic completion, and (d) the real
    database's first-match early exit.  Reclaimed time feeds back into
    loads, so the self-adjusting quantum shortens and later batches gain.
    """
    config = config or ExperimentConfig.paper()
    models: List[tuple] = [
        ("worst-case (paper)", lambda db, txns: None),
        ("scaled 50%", lambda db, txns: ScaledExecution(0.5)),
        (
            "stochastic U(0.2, 1.0)",
            lambda db, txns: StochasticExecution(0.2, 1.0, seed=7),
        ),
        (
            "first-match DB early exit",
            lambda db, txns: FirstMatchDatabaseExecution(db, txns),
        ),
    ]
    rows = []
    for label, factory in models:
        hits, reclaimed, makespans = [], [], []
        for seed in config.seeds():
            database, tasks, transactions = _build_database_workload(
                config, seed
            )
            comm = UniformCommunicationModel(config.remote_cost)
            scheduler = build_scheduler(scheduler_name, config, comm)
            result = simulate(
                scheduler,
                tasks,
                num_workers=config.num_processors,
                execution_model=factory(database, transactions),
            )
            hits.append(100.0 * result.hit_ratio)
            reclaimed.append(result.trace.total_reclaimed_time())
            makespans.append(result.makespan)
        rows.append(
            [label, mean(hits), mean(reclaimed), mean(makespans)]
        )
    return AblationResult(
        title=(
            "X1 - Resource reclaiming (RT-SADS, "
            f"P={config.num_processors}, R={config.replication_rate:.0%}, "
            f"SF={config.slack_factor:g})"
        ),
        headers=["execution model", "hit ratio %", "reclaimed time",
                 "makespan"],
        rows=rows,
    )


def extension_load_sweep(
    config: Optional[ExperimentConfig] = None,
    load_factors: Sequence[float] = (0.4, 0.7, 1.0, 1.3, 1.6),
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> AblationResult:
    """Open system: Poisson arrivals at a fraction of machine capacity.

    The paper's burst is the extreme overload point; this sweep shows each
    algorithm's compliance as offered load crosses capacity.  The arrival
    rate for load factor ``f`` is ``f * m / mean_cost``.
    """
    config = config or ExperimentConfig.paper()
    key_p = (
        config.key_probability if config.key_probability is not None else 0.55
    )
    mean_cost = key_p * 10.0 + (1.0 - key_p) * config.scan_cost
    rows = []
    for factor in load_factors:
        rate = factor * config.num_processors / mean_cost
        row: List[object] = [factor]
        for name in schedulers:
            hits = []
            for seed in config.seeds():
                _, tasks, _ = _build_database_workload(
                    config, seed, arrivals=PoissonArrival(rate=rate)
                )
                comm = UniformCommunicationModel(config.remote_cost)
                scheduler = build_scheduler(name, config, comm)
                result = simulate(
                    scheduler, tasks, num_workers=config.num_processors
                )
                hits.append(100.0 * result.hit_ratio)
            row.append(mean(hits))
        rows.append(row)
    return AblationResult(
        title=(
            "X2 - Open-system load sweep (Poisson arrivals, "
            f"P={config.num_processors}, R={config.replication_rate:.0%})"
        ),
        headers=["offered load"]
        + [DISPLAY_NAMES.get(n, n) + " hit %" for n in schedulers],
        rows=rows,
    )


def extension_failures(
    config: Optional[ExperimentConfig] = None,
    failure_counts: Optional[Sequence[int]] = None,
    schedulers: Sequence[str] = ("rtsads", "dcols"),
) -> AblationResult:
    """X4: fail-stop processor crashes mid-run (fault-injection study).

    Crashes are spread across the first quarter of the workload's deadline
    horizon; each kills the in-flight task and sends queued work back to
    the host for rescheduling on the survivors.  Dynamic scheduling's
    headline virtue — routing around current machine state — predicts
    graceful degradation roughly proportional to lost capacity.
    """
    config = config or ExperimentConfig.paper()
    if failure_counts is None:
        # Default sweep: up to 3 crashes, always leaving survivors.
        failure_counts = tuple(
            range(min(3, config.num_processors - 1) + 1)
        )
    horizon = 10.0 * config.slack_factor * config.scan_cost
    rows = []
    for count in failure_counts:
        if count >= config.num_processors:
            raise ValueError("cannot fail every processor in the study")
        failures = [
            (horizon * 0.25 * (i + 1) / max(1, count), i)
            for i in range(count)
        ]
        row: List[object] = [count]
        for name in schedulers:
            hits = []
            for seed in config.seeds():
                _, tasks, _ = _build_database_workload(config, seed)
                comm = UniformCommunicationModel(config.remote_cost)
                scheduler = build_scheduler(name, config, comm)
                result = simulate(
                    scheduler,
                    tasks,
                    num_workers=config.num_processors,
                    failures=failures,
                )
                hits.append(100.0 * result.hit_ratio)
            row.append(mean(hits))
        rows.append(row)
    return AblationResult(
        title=(
            "X4 - Fail-stop processor crashes "
            f"(P={config.num_processors}, R={config.replication_rate:.0%}, "
            f"SF={config.slack_factor:g})"
        ),
        headers=["processors failed"]
        + [DISPLAY_NAMES.get(n, n) + " hit %" for n in schedulers],
        rows=rows,
    )


def ablation_interconnect(
    config: Optional[ExperimentConfig] = None,
    scheduler_names: Sequence[str] = ("rtsads", "dcols"),
) -> AblationResult:
    """A4: wormhole constant-C vs store-and-forward mesh communication.

    The paper justifies the constant ``C`` with cut-through routing; this
    ablation re-runs the main comparison with per-hop mesh costs whose
    machine-wide mean matches ``C``, checking the conclusions do not hinge
    on the routing assumption.
    """
    config = config or ExperimentConfig.paper()
    mesh = near_square_mesh(config.num_processors)
    # Calibrate per-hop cost so an average remote access costs about C.
    mean_hops = max(1.0, (mesh.diameter() + 1) / 3.0)
    comm_models: List[tuple] = [
        (
            "wormhole constant C (paper)",
            UniformCommunicationModel(config.remote_cost),
        ),
        (
            f"store-and-forward mesh {mesh.rows}x{mesh.cols}",
            MeshCommunicationModel(
                per_hop_cost=config.remote_cost / mean_hops, topology=mesh
            ),
        ),
    ]
    rows = []
    for label, comm in comm_models:
        row: List[object] = [label]
        for name in scheduler_names:
            hits = []
            for seed in config.seeds():
                _, tasks = build_workload(config, seed)
                scheduler = build_scheduler(name, config, comm)
                result = simulate(
                    scheduler, tasks, num_workers=config.num_processors
                )
                hits.append(100.0 * result.hit_ratio)
            row.append(mean(hits))
        rows.append(row)
    return AblationResult(
        title=(
            "A4 - Interconnect model "
            f"(P={config.num_processors}, R={config.replication_rate:.0%})"
        ),
        headers=["communication model"]
        + [DISPLAY_NAMES.get(n, n) + " hit %" for n in scheduler_names],
        rows=rows,
    )


def service_curve(
    config: Optional[ExperimentConfig] = None,
    loads: Sequence[float] = OFFERED_LOAD_SWEEP,
    policies: Sequence[str] = ("reject-newest", "least-slack"),
    scheduler: str = "rtsads",
    arrival: str = "poisson",
) -> SweepResult:
    """X5: deadline compliance under open-loop load, live service mode.

    One cell = one full service lifetime: master + worker fleet + the
    in-process load generator at the cell's offered load, ended by idle
    drain.  Compliance is measured against *offered* load (rejected and
    shed submissions count as misses), so the curves answer the question
    a shedding policy exists for: how much of what was asked for was
    delivered on time as the stream crosses capacity.

    Every cell is a plain ``ExperimentConfig`` on the ``service`` backend,
    so the grid runs through :func:`~repro.experiments.sweep.run_grid` —
    cells cache, resume, and export exactly like the simulator figures
    (service cells are serial; ``--jobs`` fan-out does not apply).
    """
    from ..metrics.reporting import FigureData
    from .sweep import run_grid

    config = config or ExperimentConfig.quick()
    # A sustained stream by default: the config's "burst" drops the whole
    # workload at t=0, which probes overload recovery, not offered load.
    base = replace(config, backend="service", arrival=arrival)
    specs = [
        (base.with_admission_policy(p).with_offered_load(x), scheduler)
        for p in policies
        for x in loads
    ]
    grid = iter(run_grid(specs).cells)
    cells = {}
    for policy in policies:
        for x in loads:
            cells[(policy, x)] = next(grid)
    figure = FigureData(
        title=(
            "X5 - Compliance under open-loop load, live service "
            f"(P={base.num_processors}, {base.arrival} arrivals, "
            f"{DISPLAY_NAMES.get(scheduler, scheduler)})"
        ),
        x_label="offered load",
        x_values=list(loads),
        notes=[
            "y values are deadline hits as % of *submitted* work "
            f"over {base.runs} service lifetime(s) per cell",
            "shed and rejected submissions count as misses",
        ],
    )
    for policy in policies:
        figure.add_series(
            policy, [cells[(policy, x)].mean_hit_percent for x in loads]
        )
    return SweepResult(figure=figure, cells=cells)
