"""K scheduling domains on one virtual clock: the ``sharded`` runtime.

The single-master simulator models the paper's dedicated host processor:
one :class:`~repro.runtime.driver.PhaseDriver` whose phase duration
``sigma_j`` serializes *all* scheduling work.  This runtime instantiates
one driver **per scheduling domain** instead; each domain searches over
only its own workers and its own share of the batch, and the phases of
different domains overlap freely in virtual time — exactly the
k-concurrent-hosts architecture the sharding refactor claims.

One :class:`~repro.simulator.engine.SimulationEngine` drives everything
(it allows exactly one handler per event type, so this class is the sole
subscriber and routes to domains): arrivals route through the domain
assignment, completions and failures route by the worker's owning
domain, and two private event types (:class:`_DomainWake`,
:class:`_DomainDelivered`) carry the per-domain phase loop.

Migration happens at phase boundaries: after a domain delivers a phase,
every task its search left unplaced is offered (once) to the least-loaded
peer domain; the peer accepts iff the quick guarantee check
(:func:`~repro.sharding.migration.can_guarantee`) passes, at which point
the task is withdrawn from the origin driver and admitted to the peer —
guarantee accounting never double-counts because an unplaced task holds
no guarantee and earns one only where it is finally delivered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.affinity import project_tasks
from ..core.domains import DomainAssignment
from ..core.scheduler import Scheduler
from ..core.task import Task
from ..observability import Instrumentation, get_instrumentation
from ..runtime.driver import OpenPhase, PhaseDriver, PhaseHooks
from ..runtime.report import RunReport
from ..simulator.engine import SimulationEngine, SimulationError
from ..simulator.events import ProcessorFailed, TaskArrived, TaskFinished
from ..simulator.execution import ExecutionTimeModel, resolve_actual_cost
from ..simulator.processor import WorkerProcessor
from ..simulator.runtime import DEFAULT_MAX_EVENTS
from ..simulator.trace import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    SimulationTrace,
)
from .migration import MigrationStats, can_guarantee


@dataclass(frozen=True)
class _DomainWake:
    """Deferred request for one domain's host to open a phase."""

    domain: int


@dataclass(frozen=True)
class _DomainDelivered:
    """One domain's scheduling phase ended; its schedule is delivered."""

    domain: int


class _DomainHost(PhaseHooks):
    """One scheduling domain: its own driver, scheduler, and workers."""

    def __init__(
        self,
        runtime: "ShardedRuntime",
        domain_id: int,
        workers: Tuple[int, ...],
        scheduler: Scheduler,
    ) -> None:
        self.runtime = runtime
        self.domain_id = domain_id
        #: Global worker ids in slot order; the scheduler sees slots.
        self.workers = workers
        self.scheduler = scheduler
        self.driver = PhaseDriver(scheduler=scheduler, hooks=self)
        self.worker_objs = [WorkerProcessor(w) for w in workers]
        self.busy = False
        self.wake_pending = False
        self.open_phase: Optional[OpenPhase] = None

    def total_load(self, now: float) -> float:
        """Mean remaining work per worker (the peer-selection metric)."""
        loads = [w.load(now) for w in self.worker_objs]
        finite = [l for l in loads if l != float("inf")]
        if not finite:
            return float("inf")
        return sum(finite) / len(finite)

    # ----- PhaseHooks -------------------------------------------------------

    def loads(self, now: float) -> List[float]:
        return [worker.load(now) for worker in self.worker_objs]

    def transform_batch(self, tasks: List[Task], now: float) -> List[Task]:
        return project_tasks(tasks, self.workers)

    def on_task_expired(self, task: Task, now: float) -> None:
        self.runtime.on_task_expired(self, task, now)

    def deliver_entry(self, entry, phase_index: int, now: float) -> bool:
        return self.runtime.deliver_entry(self, entry, phase_index, now)


class ShardedRuntime:
    """Drives one workload over ``k`` concurrent scheduling domains."""

    def __init__(
        self,
        schedulers: Sequence[Scheduler],
        assignment: DomainAssignment,
        workload: Sequence[Task],
        remote_cost: float,
        max_events: int = DEFAULT_MAX_EVENTS,
        validate_phases: bool = False,
        execution_model: Optional[ExecutionTimeModel] = None,
        failures: Optional[List] = None,
        instrumentation: Optional[Instrumentation] = None,
        seed: int = 0,
        router: Optional[Callable[[Task], int]] = None,
    ) -> None:
        if len(schedulers) != assignment.num_domains:
            raise ValueError(
                f"{assignment.num_domains} domains need as many schedulers, "
                f"got {len(schedulers)}"
            )
        self.assignment = assignment
        self.workload = list(workload)
        self.remote_cost = remote_cost
        self.max_events = max_events
        self.validate_phases = validate_phases
        self.execution_model = execution_model
        self.seed = seed
        self.router = router or assignment.route
        self.failures = list(failures or [])
        for at, processor in self.failures:
            if not 0 <= processor < assignment.num_workers:
                raise ValueError(f"failure targets unknown P{processor}")
            if at < 0:
                raise ValueError("failure time must be non-negative")

        base_obs = instrumentation or get_instrumentation()
        self.obs = (
            base_obs.bind(scheduler=schedulers[0].name)
            if base_obs.enabled
            else base_obs
        )
        self.engine = SimulationEngine()
        self.trace = SimulationTrace()
        self.stats = MigrationStats()
        self.domains: List[_DomainHost] = [
            _DomainHost(self, d, assignment.workers_of(d), scheduler)
            for d, scheduler in enumerate(schedulers)
        ]
        #: Global worker id -> (owning domain, worker object).
        self._worker_index: Dict[int, Tuple[_DomainHost, WorkerProcessor]] = {}
        for domain in self.domains:
            for worker in domain.worker_objs:
                self._worker_index[worker.processor_id] = (domain, worker)
        #: Task ids that may not migrate (offered once, or migrated in).
        self._migration_barred: Set[int] = set()

        self.engine.subscribe(TaskArrived, self._on_task_arrived)
        self.engine.subscribe(TaskFinished, self._on_task_finished)
        self.engine.subscribe(ProcessorFailed, self._on_processor_failed)
        self.engine.subscribe(_DomainWake, self._on_domain_wake)
        self.engine.subscribe(_DomainDelivered, self._on_domain_delivered)

    # ----- instrumentation --------------------------------------------------

    def _task_event(
        self, transition: str, task_id: int, t: float, **extra: object
    ) -> None:
        self.obs.emit(
            "task", transition=transition, task_id=task_id, t=t, **extra
        )
        self.obs.metrics.counter(
            "runtime_task_transitions", transition=transition
        ).inc()

    # ----- domain hook callbacks (shared trace) -----------------------------

    def on_task_expired(self, domain: _DomainHost, task: Task, now: float) -> None:
        self.trace.records[task.task_id].status = STATUS_EXPIRED
        if self.obs.enabled:
            self._task_event(
                "expired",
                task.task_id,
                now,
                deadline=task.deadline,
                arrival=task.arrival_time,
                domain=domain.domain_id,
            )

    def deliver_entry(
        self, domain: _DomainHost, entry, phase_index: int, now: float
    ) -> bool:
        worker = domain.worker_objs[entry.processor]
        if worker.failed:
            return False
        record = self.trace.records[entry.task.task_id]
        record.scheduled_phase = phase_index
        record.processor = worker.processor_id  # global id in the trace
        record.delivered_at = now
        actual = resolve_actual_cost(self.execution_model, entry)
        record.planned_cost = entry.total_cost
        record.actual_cost = actual
        worker.deliver(entry, now, actual_cost=actual)
        if self.obs.enabled:
            self._task_event(
                "delivered",
                entry.task.task_id,
                now,
                processor=worker.processor_id,
                phase=phase_index,
                arrival=entry.task.arrival_time,
                deadline=entry.task.deadline,
                planned_cost=entry.total_cost,
                domain=domain.domain_id,
            )
        return True

    # ----- event handlers ---------------------------------------------------

    def _on_task_arrived(self, now: float, event: TaskArrived) -> None:
        task = event.task
        target = self.router(task)
        if not 0 <= target < len(self.domains):
            raise SimulationError(
                f"router sent task {task.task_id} to unknown domain {target}"
            )
        self.domains[target].driver.admit([task])
        if self.obs.enabled:
            self._task_event(
                "arrived",
                task.task_id,
                now,
                deadline=task.deadline,
                cost=task.processing_time,
                domain=target,
            )
        self._request_wake(self.domains[target], now)

    def _request_wake(self, domain: _DomainHost, now: float) -> None:
        if domain.busy or domain.wake_pending:
            return
        domain.wake_pending = True
        self.engine.schedule_at(now, _DomainWake(domain.domain_id))

    def _on_domain_wake(self, now: float, event: _DomainWake) -> None:
        domain = self.domains[event.domain]
        domain.wake_pending = False
        if not domain.busy:
            self._start_phase(domain, now)

    def _start_phase(self, domain: _DomainHost, now: float) -> None:
        opened = domain.driver.open_phase(now)
        if opened is None:
            return
        if self.validate_phases:
            opened.result.validate(domain.scheduler.comm)
        domain.busy = True
        domain.open_phase = opened
        self.engine.schedule_at(
            opened.result.phase_end, _DomainDelivered(domain.domain_id)
        )

    def _on_domain_delivered(self, now: float, event: _DomainDelivered) -> None:
        domain = self.domains[event.domain]
        opened = domain.open_phase
        domain.open_phase = None
        domain.busy = False
        domain.driver.deliver_phase(opened, now)
        for entry in opened.result.schedule:
            worker = domain.worker_objs[entry.processor]
            if not worker.failed:
                self._maybe_start_worker(domain, worker, now)
        self._attempt_migrations(domain, now)
        self._start_phase(domain, now)

    def _maybe_start_worker(
        self, domain: _DomainHost, worker: WorkerProcessor, now: float
    ) -> None:
        running = worker.start_next(now)
        if running is not None:
            record = self.trace.records[running.task.task_id]
            record.started_at = running.started_at
            if self.obs.enabled:
                self._task_event(
                    "started",
                    running.task.task_id,
                    running.started_at,
                    processor=worker.processor_id,
                )
            self.engine.schedule_at(
                running.finishes_at,
                TaskFinished(
                    processor=worker.processor_id,
                    task_id=running.task.task_id,
                ),
            )

    def _on_task_finished(self, now: float, event: TaskFinished) -> None:
        domain, worker = self._worker_index[event.processor]
        if worker.failed:
            return
        finished = worker.complete_current(now)
        if finished.task.task_id != event.task_id:
            raise SimulationError(
                f"P{event.processor} finished task {finished.task.task_id}, "
                f"expected {event.task_id}"
            )
        record = self.trace.records[event.task_id]
        record.status = STATUS_COMPLETED
        record.finished_at = now
        if self.obs.enabled:
            self._task_event(
                "finished",
                event.task_id,
                now,
                processor=event.processor,
                met_deadline=record.met_deadline,
                deadline=record.task.deadline,
            )
        self._maybe_start_worker(domain, worker, now)

    def _on_processor_failed(self, now: float, event: ProcessorFailed) -> None:
        domain, worker = self._worker_index[event.processor]
        if worker.failed:
            return
        lost, survivors = worker.fail(now)
        domain.driver.worker_lost()
        if lost is not None:
            record = self.trace.records[lost.task.task_id]
            record.status = STATUS_FAILED
            record.finished_at = None
            domain.driver.revoke(lost.task.task_id)
            if self.obs.enabled:
                self._task_event(
                    "failed", lost.task.task_id, now, processor=event.processor
                )
        surrendered: List[Task] = []
        for work in survivors:
            record = self.trace.records[work.task.task_id]
            record.scheduled_phase = None
            record.processor = None
            record.delivered_at = None
            record.planned_cost = None
            record.actual_cost = None
            # Requeue the *original* task: the queued copy may carry a
            # domain-projected affinity from transform_batch.
            surrendered.append(record.task)
        domain.driver.surrender(surrendered)
        self._request_wake(domain, now)

    # ----- migration --------------------------------------------------------

    def _attempt_migrations(self, origin: _DomainHost, now: float) -> None:
        """Offer each task the origin's search left unplaced to one peer.

        Candidates are the batch leftovers after delivery — exactly the
        tasks the local feasibility search failed to guarantee.  Each is
        offered at most once, to the least-loaded peer (mean remaining
        work, ties to the lowest domain id); an accepted task is
        withdrawn here and admitted there, a declined one is barred and
        falls back to the origin's normal surrender/expiry path.
        """
        if len(self.domains) <= 1:
            return
        leftovers = sorted(
            origin.driver.batch.tasks(), key=lambda t: t.task_id
        )
        woken: Set[int] = set()
        for stale in leftovers:
            task = self.trace.records[stale.task_id].task  # original affinity
            if task.task_id in self._migration_barred:
                continue
            if task.is_expired(now):
                continue
            peers = sorted(
                (d for d in self.domains if d is not origin),
                key=lambda d: (d.total_load(now), d.domain_id),
            )
            target = peers[0]
            self._migration_barred.add(task.task_id)
            self.stats.record_offer(origin.domain_id)
            if self.obs.enabled:
                self._task_event(
                    "migration_offered",
                    task.task_id,
                    now,
                    from_domain=origin.domain_id,
                    to_domain=target.domain_id,
                )
            accepted = can_guarantee(
                task,
                now,
                target.loads(now),
                target.workers,
                self.remote_cost,
            )
            if not accepted:
                self.stats.record_decline()
                if self.obs.enabled:
                    self._task_event(
                        "migration_declined",
                        task.task_id,
                        now,
                        from_domain=origin.domain_id,
                        to_domain=target.domain_id,
                    )
                continue
            withdrawn = origin.driver.withdraw([task.task_id])
            if not withdrawn:
                continue  # raced out of the batch; nothing to hand off
            self.stats.record_accept(target.domain_id)
            target.driver.admit([task])
            if self.obs.enabled:
                self._task_event(
                    "migrated",
                    task.task_id,
                    now,
                    from_domain=origin.domain_id,
                    to_domain=target.domain_id,
                )
            woken.add(target.domain_id)
        for domain_id in sorted(woken):
            self._request_wake(self.domains[domain_id], now)

    # ----- public API -------------------------------------------------------

    def run(self) -> RunReport:
        """Execute the full workload across all domains; merged report."""
        lent: List[Scheduler] = []
        for domain in self.domains:
            domain.scheduler.reset()
            if self.obs.enabled and domain.scheduler.instrumentation is None:
                domain.scheduler.instrumentation = self.obs
                lent.append(domain.scheduler)
        try:
            return self._run()
        finally:
            for scheduler in lent:
                scheduler.instrumentation = None

    def _run(self) -> RunReport:
        start_wall = time.monotonic()
        obs = self.obs
        if obs.enabled:
            obs.emit(
                "run_start",
                workers=self.assignment.num_workers,
                tasks=len(self.workload),
                domains=self.assignment.num_domains,
                partition_policy=self.assignment.policy,
            )
        for task in self.workload:
            self.trace.add_task(task)
            self.engine.schedule_at(task.arrival_time, TaskArrived(task))
        for at, processor in self.failures:
            self.engine.schedule_at(at, ProcessorFailed(processor))
        self.engine.run(max_events=self.max_events)
        if any(d.driver.has_backlog() for d in self.domains):
            raise SimulationError(
                "sharded simulation drained with tasks still unscheduled; "
                "this indicates a stalled domain host loop"
            )
        self.trace.finished_at = self.engine.now
        trace = self.trace
        phases = sorted(
            (p for d in self.domains for p in d.driver.phases),
            key=lambda p: (p.start, p.end, p.index),
        )
        trace.phases = phases
        completed = len(trace.completed())
        hits = trace.deadline_hits()
        report = RunReport(
            backend="sharded",
            scheduler_name=self.domains[0].scheduler.name,
            num_workers=self.assignment.num_workers,
            seed=self.seed,
            total_tasks=trace.total_tasks(),
            guaranteed=sum(d.driver.guaranteed_count for d in self.domains),
            completed=completed,
            deadline_hits=hits,
            completed_late=completed - hits,
            expired=len(trace.expired()),
            failed=len(trace.failed()),
            guaranteed_violations=len(trace.scheduled_but_missed()),
            reschedules=sum(d.driver.reschedules for d in self.domains),
            workers_lost=sum(d.driver.workers_lost for d in self.domains),
            makespan=self.engine.now,
            wall_seconds=time.monotonic() - start_wall,
            phases=phases,
            migration=self.stats.as_section(),
            extras={
                "trace": trace,
                "events_dispatched": self.engine.events_dispatched,
                "assignment": self.assignment.as_dict(),
            },
        )
        if obs.enabled:
            obs.emit(
                "run_end",
                workers=self.assignment.num_workers,
                tasks=trace.total_tasks(),
                deadline_hits=hits,
                phases=len(phases),
                makespan=self.engine.now,
                domains=self.assignment.num_domains,
                migrations=self.stats.accepted,
                events_dispatched=self.engine.events_dispatched,
            )
            obs.metrics.counter("runtime_runs").inc()
            obs.metrics.counter(
                "runtime_events_dispatched"
            ).inc(self.engine.events_dispatched)
            obs.metrics.histogram("runtime_makespan").observe(self.engine.now)
        return report
