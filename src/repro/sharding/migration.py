"""Inter-domain migration: the handoff decision and its accounting.

A domain offers a task to a peer only when its own feasibility search
failed to place it; the peer accepts only when the quick guarantee check
(:func:`can_guarantee`) says some worker can still finish the task by its
deadline, communication included.  The check is deliberately the same
arithmetic on both backends — the simulator peeks at peer loads
in-process, the live masters carry the same fields in ``MIGRATE_OFFER``
frames — so sim and cluster accept/decline the same offers under the
same loads.

One-hop discipline: a task is offered at most once and never re-migrated
after acceptance; a declined offer bars the task and it falls back to the
origin domain's normal surrender/expiry path.  :class:`MigrationStats`
is the single source of the report's ``migration`` section, so counts
cannot drift between backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..core.task import Task

EPSILON = 1e-9


def can_guarantee(
    task: Task,
    now: float,
    loads: Sequence[float],
    workers: Sequence[int],
    remote_cost: float,
) -> bool:
    """Whether some worker of a domain can still meet ``task``'s deadline.

    ``loads`` and ``workers`` are aligned: ``loads[i]`` is the remaining
    work queued on global worker ``workers[i]``.  The check mirrors the
    feasibility test's arithmetic — earliest start is behind the queued
    load, cost is ``p`` plus the wormhole model's constant ``C`` for a
    non-affine worker — but over a single task, so a peer can answer an
    offer in O(m/k) without running a search.  A True here is a necessary
    condition, not a guarantee: the real search still decides placement
    (and may interleave other work), so accepted tasks re-earn their
    guarantee through the normal phase path on the target.
    """
    affinity = task.affinity
    for load, worker in zip(loads, workers):
        comm = 0.0 if worker in affinity else remote_cost
        finish = now + load + task.processing_time + comm
        if finish <= task.deadline + EPSILON:
            return True
    return False


@dataclass
class MigrationStats:
    """Every migration decision of one sharded run, accounted once.

    ``offers == accepted + declined + timeouts`` always holds (the live
    protocol's timeout counts as a decline the peer never voiced), and
    per-domain flows satisfy ``sum(out_by_domain) == offers`` and
    ``sum(in_by_domain) == accepted``.
    """

    offers: int = 0
    accepted: int = 0
    declined: int = 0
    timeouts: int = 0
    #: Offers sent, keyed by origin domain id.
    out_by_domain: Dict[int, int] = field(default_factory=dict)
    #: Accepted handoffs, keyed by target domain id.
    in_by_domain: Dict[int, int] = field(default_factory=dict)

    def record_offer(self, origin: int) -> None:
        self.offers += 1
        self.out_by_domain[origin] = self.out_by_domain.get(origin, 0) + 1

    def record_accept(self, target: int) -> None:
        self.accepted += 1
        self.in_by_domain[target] = self.in_by_domain.get(target, 0) + 1

    def record_decline(self) -> None:
        self.declined += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def as_section(self) -> Dict[str, object]:
        """The ``RunReport.migration`` payload (stable keys, sorted maps)."""
        return {
            "offers": self.offers,
            "accepted": self.accepted,
            "declined": self.declined,
            "timeouts": self.timeouts,
            "out_by_domain": {
                str(d): n for d, n in sorted(self.out_by_domain.items())
            },
            "in_by_domain": {
                str(d): n for d, n in sorted(self.in_by_domain.items())
            },
        }
