"""Sharded live cluster: k domain masters, one coordinator, real frames.

:func:`launch_sharded_cluster` is the live counterpart of
:class:`~repro.sharding.sim.ShardedRuntime`: the worker fleet is
partitioned into scheduling domains, each domain gets its own
:class:`DomainMaster` (a :class:`~repro.cluster.master.ClusterMaster`
restricted to its slice of the fleet, with its own TCP hub and its own
feasibility-search state), and workers are spawned against the hub of the
domain that owns them.  The coordinator round-robins every master's
:meth:`~repro.cluster.master.ClusterMaster.step` through one thread, so
the run needs no locks, and migration negotiations are naturally
serialized.

Inter-domain migration rides the v4 protocol frames: when a domain's
search leaves tasks unplaced after a phase, the coordinator sends a
``MIGRATE_OFFER`` — over a real TCP connection into the target master's
hub — to the least-loaded peer domain.  The target answers
``MIGRATE_ACCEPT`` (it admitted the task and now owns its record) or
``MIGRATE_DECLINE``; an unanswered offer times out at the origin and is
counted separately.  Offers are one-hop and the owning record moves with
the task, so every migrated task — and its guarantee, earned through the
target's normal dispatch re-check — is accounted exactly once in the
merged report.

The merged :class:`~repro.runtime.report.RunReport` keeps
``backend="cluster"`` (same wire physics, same schema); the partition and
the per-domain ports ride in ``extras`` and the migration counts in the
schema-stable ``migration`` section, exactly like the simulator's.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster import protocol
from ..cluster.config import ClusterConfig, build_cluster_workload
from ..cluster.launcher import reap_workers, spawn_worker
from ..cluster.master import (
    PENDING,
    ClusterMaster,
    LiveTaskRecord,
)
from ..cluster.network import MESSAGE, ConnectionLost, NetworkEvent, WorkerChannel
from ..core.domains import DomainAssignment, partition_workers
from ..core.task import Task
from ..observability import Instrumentation, get_instrumentation
from ..runtime.report import RunReport
from .migration import MigrationStats, can_guarantee

#: Wall-clock budget for one offer's round trip before it counts as a
#: timeout.  Generous against the in-process reality (the coordinator
#: pumps the target master while waiting), tight against a wedged peer.
OFFER_TIMEOUT_SECONDS = 2.0


class DomainMaster(ClusterMaster):
    """One scheduling domain's master: a slice of workers, its own hub.

    Differs from the fleet-wide master in exactly three ways: it installs
    only the tasks the router assigns to its domain, it waits for (and
    schedules over) only its own partition's workers, and it understands
    ``MIGRATE_OFFER`` frames — answering with an accept (record created,
    task admitted to its batch) or a decline (its quick guarantee check
    failed too).
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        domain_id: int,
        assignment: DomainAssignment,
        router: Callable[[Task], int],
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        # Set before super().__init__: the base constructor installs the
        # workload mid-construction and _install_workload needs the router.
        self.domain_id = domain_id
        self.assignment = assignment
        self.router = router
        self.domain_workers = assignment.workers_of(domain_id)
        #: Task ids that may not migrate (offered once, or migrated in).
        self._migration_barred: set = set()
        obs = instrumentation or get_instrumentation()
        if obs.enabled:
            obs = obs.bind(domain=domain_id)
        super().__init__(config, instrumentation=obs)

    # ----- domain restriction ----------------------------------------------

    @property
    def expected_workers(self) -> int:
        return len(self.domain_workers)

    def _install_workload(self, tasks: Sequence[Task]) -> None:
        local = [task for task in tasks if self.router(task) == self.domain_id]
        super()._install_workload(local)

    # ----- migration: the target side ---------------------------------------

    def _handle_event(self, event: NetworkEvent) -> None:
        if event.kind == MESSAGE and (
            event.message.get("type") == protocol.MIGRATE_OFFER
        ):
            self._on_migrate_offer(event.conn_id, event.message)
            return
        super()._handle_event(event)

    def _on_migrate_offer(self, conn_id: int, message: Dict) -> None:
        """Decide one offer: admit-and-accept, or decline.

        The quick check is the same arithmetic the simulator's peer
        domains use (:func:`~repro.sharding.migration.can_guarantee`), so
        sim and cluster accept the same offers under the same loads.  An
        accepted task is barred from re-migration (one-hop) and re-earns
        its guarantee through the normal dispatch-time re-check.
        """
        offer_id = int(message["offer_id"])
        task_id = int(message["task_id"])
        task = Task(
            task_id=task_id,
            processing_time=float(message["processing"]),
            arrival_time=float(message["arrival"]),
            deadline=float(message["deadline"]),
            affinity=frozenset(int(p) for p in message["affinity"]),
        )
        alive = self._alive_workers()
        loads = [self.workers[w].outstanding_units() for w in alive]
        acceptable = (
            task_id not in self.records
            and bool(alive)
            and can_guarantee(
                task,
                self.vnow(),
                loads,
                alive,
                self.config.experiment.remote_cost,
            )
        )
        if acceptable:
            self.records[task_id] = LiveTaskRecord(task=task)
            self._migration_barred.add(task_id)
            self.driver.admit([task])
            self.hub.send(
                conn_id,
                protocol.migrate_accept(offer_id, task_id, self.domain_id),
            )
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_migrations_in").inc()
        else:
            self.hub.send(
                conn_id,
                protocol.migrate_decline(offer_id, task_id, self.domain_id),
            )

    # ----- migration: the origin side ---------------------------------------

    def migration_candidates(self) -> List[Task]:
        """Unbarred batch leftovers — what the local search failed to place.

        Returned with their *original* (global-id) affinities from the
        task records, never the remapped local-slot view the search saw.
        """
        now = self.vnow()
        candidates: List[Task] = []
        for stale in self.driver.batch.tasks():
            record = self.records.get(stale.task_id)
            if record is None or record.status != PENDING:
                continue
            if stale.task_id in self._migration_barred:
                continue
            task = record.task
            if task.is_expired(now):
                continue
            candidates.append(task)
        return sorted(candidates, key=lambda t: t.task_id)

    def bar_migration(self, task_id: int) -> None:
        """One-hop discipline: never offer this task again."""
        self._migration_barred.add(task_id)

    def release_migrated(self, task_id: int) -> bool:
        """Hand ownership to the accepting peer: drop batch entry + record."""
        removed = self.driver.withdraw([task_id])
        record = self.records.pop(task_id, None)
        if not removed or record is None:
            self.obs.logger.warning(
                "migrated task was not waiting here", task=task_id
            )
            return False
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_migrations_out").inc()
        return True

    def mean_load(self) -> float:
        """Mean outstanding work per alive worker (inf with none alive)."""
        alive = self._alive_workers()
        if not alive:
            return float("inf")
        total = sum(self.workers[w].outstanding_units() for w in alive)
        return total / len(alive)


def launch_sharded_cluster(
    config: ClusterConfig,
    instrumentation: Optional[Instrumentation] = None,
    router: Optional[Callable[[Task], int]] = None,
) -> RunReport:
    """Run one live experiment across ``experiment.domains`` domains.

    Binds one :class:`DomainMaster` per domain, spawns each worker against
    the hub of the domain that owns it, drives every master's step loop
    round-robin from this thread, negotiates migrations over real v4
    frames, and returns one merged report.  ``router`` overrides the
    partition's task routing (tests use it to force cross-domain
    migrations deterministically); the default routes by affinity
    plurality like the simulator.  Always reaps the workers.
    """
    obs = instrumentation or get_instrumentation()
    experiment = config.experiment
    _, tasks, _transactions = build_cluster_workload(
        experiment, experiment.base_seed
    )
    assignment = partition_workers(
        experiment.num_processors,
        experiment.domains,
        experiment.partition_policy,
        tasks=tasks,
    )
    route = router if router is not None else assignment.route
    stats = MigrationStats()
    masters = [
        DomainMaster(
            config,
            domain_id=d,
            assignment=assignment,
            router=route,
            instrumentation=obs,
        )
        for d in range(assignment.num_domains)
    ]
    worker_config = config
    if obs.enabled and not worker_config.telemetry:
        worker_config = worker_config.with_telemetry(True)
    workers = []
    peers: List[Optional[WorkerChannel]] = [None] * len(masters)
    wall_start = time.monotonic()
    try:
        for index in range(experiment.num_processors):
            domain = assignment.domain_of(index)
            workers.append(
                spawn_worker(
                    worker_config.with_port(masters[domain].port), index
                )
            )
        for master in masters:
            master._start_wall = wall_start
            master._await_workers()
        # One peer channel per master: the coordinator's path into each
        # hub for MIGRATE frames.  These connections never say HELLO, so
        # they are invisible to the worker registries.
        for d, master in enumerate(masters):
            peers[d] = WorkerChannel.connect(
                config.host, master.port, timeout=config.connect_timeout
            )
        # One shared virtual-time origin: loads, deadlines, and migration
        # decisions in every domain speak the same clock.
        t0 = time.monotonic()
        for master in masters:
            master._t0 = t0
        if obs.enabled:
            obs.emit(
                "run_start",
                workers=experiment.num_processors,
                tasks=sum(len(m.records) for m in masters),
                domains=assignment.num_domains,
                partition_policy=assignment.policy,
            )
            for master in masters:
                master._emit_arrivals()
        _drive(masters, peers, stats, obs, config)
        for master in masters:
            master.shutdown()
        return _merge(
            masters, assignment, stats, experiment, wall_start, obs
        )
    finally:
        for master in masters:
            try:
                master.shutdown()
            except OSError:
                pass
        for channel in peers:
            if channel is not None:
                channel.close()
        reap_workers(workers, obs)


def _drive(
    masters: List[DomainMaster],
    peers: List[Optional[WorkerChannel]],
    stats: MigrationStats,
    obs: Instrumentation,
    config: ClusterConfig,
) -> None:
    """Round-robin the domain step loops until every domain is done.

    A migration accepted this round can hand new work to a master that
    already reported finished, so the loop only exits on a full round
    with every master finished and no accepted handoff.
    """
    while True:
        migrated = False
        done = True
        for origin_d, master in enumerate(masters):
            finished = master.step()
            if len(masters) > 1:
                migrated |= _attempt_migrations(
                    origin_d, masters, peers, stats, obs, config
                )
            done = done and finished
        if done and not migrated:
            return


def _attempt_migrations(
    origin_d: int,
    masters: List[DomainMaster],
    peers: List[Optional[WorkerChannel]],
    stats: MigrationStats,
    obs: Instrumentation,
    config: ClusterConfig,
) -> bool:
    """Offer the origin's unplaceable leftovers to least-loaded peers.

    Returns True iff at least one offer was accepted.  Every candidate is
    barred before its offer goes out, so a task is offered at most once
    for the whole run regardless of the outcome.
    """
    origin = masters[origin_d]
    accepted_any = False
    for task in origin.migration_candidates():
        target_d = _pick_target(origin_d, masters)
        if target_d is None:
            break  # no peer has a live worker; nothing can take handoffs
        origin.bar_migration(task.task_id)
        offer_id = stats.offers  # origin-scoped, strictly increasing
        stats.record_offer(origin_d)
        now_v = origin.vnow()
        if obs.enabled:
            obs.emit(
                "task",
                transition="migration_offered",
                task_id=task.task_id,
                t=now_v,
                from_domain=origin_d,
                to_domain=target_d,
            )
        try:
            peers[target_d].send(
                protocol.migrate_offer(
                    offer_id=offer_id,
                    origin_domain=origin_d,
                    task_id=task.task_id,
                    arrival=task.arrival_time,
                    processing=task.processing_time,
                    deadline=task.deadline,
                    affinity=task.affinity,
                    mono=time.monotonic(),
                )
            )
            reply = _await_reply(
                masters[target_d], peers[target_d], offer_id
            )
        except ConnectionLost:
            reply = None
        if reply is None:
            stats.record_timeout()
            if obs.enabled:
                obs.emit(
                    "task",
                    transition="migration_declined",
                    task_id=task.task_id,
                    t=origin.vnow(),
                    from_domain=origin_d,
                    to_domain=target_d,
                    reason="timeout",
                )
            continue
        if reply.get("type") == protocol.MIGRATE_ACCEPT:
            origin.release_migrated(task.task_id)
            stats.record_accept(target_d)
            accepted_any = True
            if obs.enabled:
                obs.emit(
                    "task",
                    transition="migrated",
                    task_id=task.task_id,
                    t=origin.vnow(),
                    from_domain=origin_d,
                    to_domain=target_d,
                )
        else:
            stats.record_decline()
            if obs.enabled:
                obs.emit(
                    "task",
                    transition="migration_declined",
                    task_id=task.task_id,
                    t=origin.vnow(),
                    from_domain=origin_d,
                    to_domain=target_d,
                    reason=str(reply.get("reason", "infeasible")),
                )
    return accepted_any


def _await_reply(
    target: DomainMaster,
    channel: WorkerChannel,
    offer_id: int,
) -> Optional[Dict]:
    """Pump the target master until it answers this offer (or timeout).

    The coordinator owns every master's step loop, so the target can only
    process the offer frame when stepped from here; replies to other
    (stale) offers are discarded — each negotiation is strictly
    sequential.
    """
    deadline = time.monotonic() + OFFER_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        target.step()
        for message in channel.poll(0.05):
            if int(message.get("offer_id", -1)) != offer_id:
                continue
            if message.get("type") in (
                protocol.MIGRATE_ACCEPT,
                protocol.MIGRATE_DECLINE,
            ):
                return message
    return None


def _pick_target(
    origin_d: int, masters: List[DomainMaster]
) -> Optional[int]:
    """Least mean-loaded peer domain with a live worker (ties: lowest id)."""
    best: Optional[int] = None
    best_load = float("inf")
    for d, master in enumerate(masters):
        if d == origin_d:
            continue
        load = master.mean_load()
        if load < best_load:
            best, best_load = d, load
    return best


def _merge(
    masters: List[DomainMaster],
    assignment: DomainAssignment,
    stats: MigrationStats,
    experiment,
    wall_start: float,
    obs: Instrumentation,
) -> RunReport:
    """One fleet-wide report from the per-domain ones.

    Counters sum (each task's record lives in exactly one domain — the
    target's after an accepted migration), makespan is the latest finish
    on the shared clock, and the phase list interleaves every domain's
    phases in start order like the simulator's merge.
    """
    reports = [master._build_report(emit=False) for master in masters]
    phases = sorted(
        (phase for report in reports for phase in report.phases),
        key=lambda p: (p.start, p.end, p.index),
    )
    makespan = max(report.makespan for report in reports)
    hits = sum(report.deadline_hits for report in reports)
    total_tasks = sum(report.total_tasks for report in reports)
    if obs.enabled:
        obs.emit(
            "run_end",
            workers=experiment.num_processors,
            tasks=total_tasks,
            deadline_hits=hits,
            phases=len(phases),
            makespan=float(makespan),
            domains=assignment.num_domains,
            migrations=stats.accepted,
            telemetry_dropped=sum(
                sum(master.telemetry_dropped.values())
                for master in masters
            ),
        )
    return RunReport(
        backend="cluster",
        scheduler_name=masters[0].scheduler.name,
        num_workers=experiment.num_processors,
        seed=experiment.base_seed,
        total_tasks=total_tasks,
        guaranteed=sum(r.guaranteed for r in reports),
        completed=sum(r.completed for r in reports),
        deadline_hits=hits,
        completed_late=sum(r.completed_late for r in reports),
        expired=sum(r.expired for r in reports),
        failed=0,
        guaranteed_violations=sum(
            r.guaranteed_violations for r in reports
        ),
        reschedules=sum(r.reschedules for r in reports),
        workers_lost=sum(r.workers_lost for r in reports),
        makespan=float(makespan),
        wall_seconds=time.monotonic() - wall_start,
        phases=phases,
        migration=stats.as_section(),
        extras={
            "ports": [master.port for master in masters],
            "partition": assignment.as_dict(),
        },
    )
