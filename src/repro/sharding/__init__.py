"""Sharded multi-master scheduling: domains, migration, merged reports.

The paper dedicates *one* scheduling processor to the whole system, so its
vertices/s caps total throughput no matter how many workers join — the
flattening every fig5-style curve shows at high ``m``.  This package
breaks that ceiling: workers are partitioned into ``k`` scheduling
*domains* (:mod:`repro.core.domains`), each driven by its own
``PhaseDriver``-backed master, searching concurrently; when a domain's
feasibility search cannot guarantee a task locally, it offers the task to
the least-loaded peer domain (one-hop handoff, declined offers fall back
to the local surrender path).

Two compositions exist over the same core:

* :class:`~repro.sharding.sim.ShardedRuntime` — ``k`` domain hosts on one
  virtual clock (the ``sharded`` execution backend);
* :func:`~repro.sharding.cluster.launch_sharded_cluster` — ``k`` real
  :class:`~repro.cluster.master.ClusterMaster` processes exchanging
  protocol-v4 ``MIGRATE_OFFER/ACCEPT/DECLINE`` frames over TCP.

Both merge their per-domain outcomes into one
:class:`~repro.runtime.report.RunReport` whose ``migration`` section
(:class:`MigrationStats`) accounts every offer, and every migrated task's
guarantee, exactly once.
"""

from .migration import MigrationStats, can_guarantee

__all__ = [
    "MigrationStats",
    "can_guarantee",
]
