"""repro: reproduction of Atif & Hamidzadeh, ICDCS 1998.

"A Scalable Scheduling Algorithm for Real-Time Distributed Systems" —
RT-SADS (assignment-oriented, self-adjusting dynamic scheduling) vs D-COLS
(sequence-oriented), evaluated on a simulated distributed-memory
multiprocessor running a distributed real-time database.

Quickstart::

    from repro import RTSADS, UniformCommunicationModel, simulate
    from repro.workload import SyntheticWorkloadGenerator

    comm = UniformCommunicationModel(remote_cost=50.0)
    tasks = SyntheticWorkloadGenerator().generate()
    result = simulate(RTSADS(comm), tasks, num_workers=4)
    print(result.summary())

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from .core import (
    DCOLS,
    RTSADS,
    GreedyEDFScheduler,
    MyopicScheduler,
    RandomScheduler,
    Schedule,
    Scheduler,
    SelfAdjustingQuantum,
    Task,
    TaskSet,
    UniformCommunicationModel,
    make_task,
)
from .runtime import (
    BACKEND_NAMES,
    ExecutionBackend,
    RunReport,
    get_backend,
    register_backend,
)
from .simulator import (
    DistributedRuntime,
    Machine,
    MachineConfig,
    SimulationResult,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "BACKEND_NAMES",
    "DCOLS",
    "DistributedRuntime",
    "ExecutionBackend",
    "GreedyEDFScheduler",
    "Machine",
    "MachineConfig",
    "MyopicScheduler",
    "RTSADS",
    "RandomScheduler",
    "RunReport",
    "Schedule",
    "Scheduler",
    "SelfAdjustingQuantum",
    "SimulationResult",
    "Task",
    "TaskSet",
    "UniformCommunicationModel",
    "__version__",
    "get_backend",
    "make_task",
    "register_backend",
    "simulate",
]
