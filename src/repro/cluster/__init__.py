"""Live cluster runtime: RT-SADS as a real master/worker system over TCP.

Where :mod:`repro.simulator` models the distributed system in virtual time,
this package *runs* it: the scheduling host and every working processor are
separate OS processes on localhost, messages travel over real sockets, and
transactions execute for real against each worker's resident sub-databases.
The scheduler code is untouched — the same :class:`~repro.core.rtsads.RTSADS`
object that drives the simulator drives the live master; only time's source
changes (the wall clock instead of the event loop).

Entry points
------------
:func:`launch_cluster`          run one live experiment end to end.
:class:`ClusterConfig`          workload + deployment knobs.
:class:`FailurePlan`            kill a worker mid-run (fail-stop study).

The CLI surface is ``python -m repro.experiments cluster ...`` or the
``repro-cluster`` console script.
"""

from .config import ClusterConfig, build_cluster_workload
from .failure import FAILURE_EXIT_CODE, FailurePlan, HeartbeatMonitor
from .launcher import launch_cluster, reap_workers, spawn_worker
from .master import (
    ClusterError,
    ClusterMaster,
    ClusterReport,
    ClusterStartupError,
    ClusterTimeoutError,
    LiveTaskRecord,
    remap_tasks,
)
from .network import ConnectionLost, MessageHub, NetworkEvent, WorkerChannel
from .protocol import PROTOCOL_VERSION, FrameDecoder, ProtocolError
from .worker import ClusterWorker, worker_main

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterMaster",
    "ClusterReport",
    "ClusterStartupError",
    "ClusterTimeoutError",
    "ClusterWorker",
    "ConnectionLost",
    "FAILURE_EXIT_CODE",
    "FailurePlan",
    "FrameDecoder",
    "HeartbeatMonitor",
    "LiveTaskRecord",
    "MessageHub",
    "NetworkEvent",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WorkerChannel",
    "build_cluster_workload",
    "launch_cluster",
    "reap_workers",
    "remap_tasks",
    "spawn_worker",
    "worker_main",
]
