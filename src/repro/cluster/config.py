"""Configuration of the live cluster runtime.

A :class:`ClusterConfig` wraps an
:class:`~repro.experiments.config.ExperimentConfig` (workload, database,
machine size, scheduler cost model) with the knobs only a real deployment
has: the TCP endpoint, the wall-clock scale, heartbeat cadence, dispatch
safety margin, and optional failure injection.

**Time model.**  Everything the scheduler reasons about stays in the
paper's virtual cost units (one tuple-check = 1.0); the cluster maps them
onto wall-clock seconds with ``seconds_per_unit``.  The master derives the
current virtual time from ``time.monotonic()`` and workers pad their real
execution to the scaled actual cost, so a schedule that is feasible in
virtual time is feasible on the wall clock — up to network and interpreter
jitter, which the dispatch-time guarantee margin absorbs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from ..experiments.config import ExperimentConfig
from .failure import FailurePlan


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a master and its workers need to run one live experiment."""

    experiment: ExperimentConfig = field(
        default_factory=lambda: ExperimentConfig.quick(
            num_transactions=200, num_processors=4, runs=1, slack_factor=3.0
        )
    )
    scheduler_name: str = "rtsads"
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port; launcher propagates it
    #: Wall seconds one virtual cost unit lasts (1 ms per tuple-check).
    seconds_per_unit: float = 0.001
    heartbeat_interval: float = 0.25
    #: Dead after ``interval * miss_factor`` of silence (2 intervals).
    heartbeat_miss_factor: float = 2.0
    #: Master selector-loop tick; bounds dispatch latency between phases.
    poll_interval: float = 0.02
    #: Wall-clock slop subtracted from deadlines at dispatch time; absorbs
    #: network latency, GC pauses, and OS scheduling jitter so a dispatched
    #: guarantee survives contact with the real machine.
    guarantee_margin_seconds: float = 0.05
    connect_timeout: float = 10.0
    startup_timeout: float = 30.0
    #: Hard abort: a run exceeding this is declared hung, shut down, and
    #: reported as an error (the per-test hard timeout of the smoke suite).
    max_wall_seconds: float = 120.0
    failure: Optional[FailurePlan] = None
    #: Worker-side tracing: when on, every worker buffers execution events
    #: and ships them to the master in batched TELEMETRY frames, where they
    #: merge (skew-corrected) into the run's single trace sink.  Off by
    #: default so an uninstrumented run sends nothing extra on the wire.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.seconds_per_unit <= 0:
            raise ValueError("seconds_per_unit must be positive")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_miss_factor < 1.0:
            raise ValueError("heartbeat_miss_factor must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.guarantee_margin_seconds < 0:
            raise ValueError("guarantee_margin_seconds must be non-negative")
        if self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if self.failure is not None and (
            self.failure.worker_index >= self.num_workers
        ):
            raise ValueError(
                f"failure targets worker {self.failure.worker_index} but the "
                f"cluster has {self.num_workers} workers"
            )

    # ----- derived views ---------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Working processors = worker processes (the host is the master)."""
        return self.experiment.num_processors

    @property
    def guarantee_margin_units(self) -> float:
        return self.guarantee_margin_seconds / self.seconds_per_unit

    @property
    def heartbeat_timeout(self) -> float:
        return self.heartbeat_interval * self.heartbeat_miss_factor

    def units_to_seconds(self, units: float) -> float:
        return units * self.seconds_per_unit

    def seconds_to_units(self, seconds: float) -> float:
        return seconds / self.seconds_per_unit

    # ----- canonical scales ------------------------------------------------

    @classmethod
    def default(
        cls,
        workers: int = 4,
        tasks: int = 200,
        seed: int = 1,
        slack_factor: float = 3.0,
        **overrides,
    ) -> "ClusterConfig":
        """The CLI's scale: a few seconds of wall clock on localhost.

        The slack factor defaults to 3 (the generous end of the paper's
        [1, 3] range): live deadlines burn real milliseconds on message
        hops, so the tightest setting would measure socket latency, not
        scheduling.
        """
        experiment = ExperimentConfig.quick(
            num_transactions=tasks,
            num_processors=workers,
            base_seed=seed,
            slack_factor=slack_factor,
            runs=1,
        )
        return cls(experiment=experiment, **overrides)

    @classmethod
    def smoke(
        cls,
        workers: int = 2,
        tasks: int = 24,
        seed: int = 7,
        **overrides,
    ) -> "ClusterConfig":
        """CI scale: tiny workload, generous deadlines, tight hard timeout."""
        experiment = ExperimentConfig.quick(
            num_transactions=tasks,
            num_processors=workers,
            base_seed=seed,
            slack_factor=3.0,
            runs=1,
        )
        defaults = dict(
            experiment=experiment,
            heartbeat_interval=0.15,
            max_wall_seconds=60.0,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_port(self, port: int) -> "ClusterConfig":
        return replace(self, port=port)

    def with_telemetry(self, telemetry: bool = True) -> "ClusterConfig":
        """A copy with worker-side trace shipping switched on or off."""
        return replace(self, telemetry=telemetry)

    def with_failure(self, failure: Optional[FailurePlan]) -> "ClusterConfig":
        return replace(self, failure=failure)


def build_cluster_workload(experiment: ExperimentConfig, seed: int):
    """Database, scheduler tasks, and raw transactions for one live run.

    Master and every worker call this with the same seed and rebuild
    byte-identical state independently — shipping a few kilobytes of config
    through process arguments instead of megabytes of tables over TCP.
    Mirrors the simulator path in :mod:`repro.experiments.runner` so live
    and simulated runs of one config see the same workload.
    """
    from ..database.database import DatabaseConfig, DistributedDatabase
    from ..workload.transactions import (
        TransactionWorkloadConfig,
        TransactionWorkloadGenerator,
    )

    rng = random.Random(seed)
    database = DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=experiment.num_subdatabases,
            records_per_subdb=experiment.records_per_subdb,
            num_attributes=experiment.num_attributes,
            domain_size=experiment.domain_size,
        ),
        num_processors=experiment.num_processors,
        replication_rate=experiment.replication_rate,
        rng=rng,
    )
    generator = TransactionWorkloadGenerator(
        database=database,
        config=TransactionWorkloadConfig(
            num_transactions=experiment.num_transactions,
            slack_factor=experiment.slack_factor,
            key_probability=experiment.key_probability,
            seed=seed,
        ),
    )
    tasks, transactions = generator.generate()
    return database, tasks, transactions
