"""Process orchestration: one master, N workers, clean teardown.

:func:`launch_cluster` is the single entry point callers use: it binds the
master (in-process), spawns one OS process per working processor, runs the
scheduling loop to completion, and — in a ``finally`` no failure mode
skips — reaps every child: join with a deadline, then ``terminate()``,
then ``kill()``.  Tests assert the post-condition directly: no orphan
processes, and the master's port is immediately re-bindable.

``spawn`` (not ``fork``) is used deliberately: workers must rebuild their
state from the pickled :class:`~repro.cluster.config.ClusterConfig` alone,
which keeps them honest about determinism and matches how a multi-host
deployment would start them.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional

from ..observability import Instrumentation, get_instrumentation
from .config import ClusterConfig
from .master import ClusterMaster, ClusterReport
from .worker import worker_main

#: Grace period for workers to exit after SHUTDOWN before escalation.
JOIN_GRACE_SECONDS = 5.0


def launch_cluster(
    config: ClusterConfig,
    instrumentation: Optional[Instrumentation] = None,
) -> ClusterReport:
    """Run one live experiment end to end; always reaps the workers.

    A multi-domain experiment (``experiment.domains > 1``) is the sharded
    coordinator's job: one master per domain, workers spawned against
    their domain's hub, migrations negotiated over v4 frames.
    """
    obs = instrumentation or get_instrumentation()
    if config.experiment.domains > 1:
        # Imported lazily: the sharding coordinator imports this module
        # for spawn_worker/reap_workers.
        from ..sharding.cluster import launch_sharded_cluster

        return launch_sharded_cluster(config, instrumentation=obs)
    master = ClusterMaster(config, instrumentation=obs)
    # The master bound its listener in the constructor; give workers the
    # real port (the config may have asked for an ephemeral one).
    worker_config = config.with_port(master.port)
    if obs.enabled and not worker_config.telemetry:
        # The master is traced, so the workers should be too: spawned
        # processes can't inherit the sink object, but the config flag
        # makes them self-instrument and ship events back over the wire.
        worker_config = worker_config.with_telemetry(True)
    workers: List[multiprocessing.Process] = []
    try:
        for index in range(config.num_workers):
            workers.append(spawn_worker(worker_config, index))
        report = master.run()
    finally:
        master.close()
        reap_workers(workers, obs)
    return report


def spawn_worker(
    config: ClusterConfig, index: int
) -> multiprocessing.Process:
    """Start one worker process against an already-bound master.

    Used by :func:`launch_cluster` for the initial fleet and by the
    service runtime for elastic mid-run joins (any non-negative ``index``,
    including ones beyond the data placement).  The caller owns the
    returned process and must eventually :func:`reap_workers` it.
    """
    context = multiprocessing.get_context("spawn")
    process = context.Process(
        target=worker_main,
        args=(config, index),
        name=f"repro-worker-{index}",
        daemon=True,
    )
    process.start()
    return process


def reap_workers(
    workers: List[multiprocessing.Process], obs: Instrumentation
) -> None:
    """Join, then escalate: no code path may leak a worker process."""
    for process in workers:
        process.join(timeout=JOIN_GRACE_SECONDS)
    for process in workers:
        if process.is_alive():
            obs.logger.warning(
                "worker did not exit; terminating", worker=process.name
            )
            process.terminate()
            process.join(timeout=2.0)
    for process in workers:
        if process.is_alive():
            obs.logger.warning(
                "worker survived terminate; killing", worker=process.name
            )
            process.kill()
            process.join(timeout=2.0)
    for process in workers:
        process.close()
