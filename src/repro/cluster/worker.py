"""A working processor as a real OS process.

Each worker rebuilds the distributed database and transaction workload from
the shared ``(config, seed)`` pair — byte-identical to the master's copy, so
an ``ASSIGN`` only needs a task id, never data.  On assignment the worker
*actually executes* the transaction through the database layer (key-index
probe or partition scan against its resident sub-databases; the global
executor stands in for a remote fetch when the partition lives elsewhere)
and reports the measured checking cost against the master's worst-case
estimate.

**Pacing.**  The scheduler's guarantees are stated in virtual cost units;
Python executes a probe much faster than ``seconds_per_unit`` maps it.  The
worker therefore pads each task to its scaled *actual* cost with sliced
sleeps, sending heartbeats between slices so a long task never looks like a
dead worker.  Actual cost never exceeds the estimate (the estimate is
worst-case by construction), so real completion always lands at or before
the point the master budgeted.

**Failure injection.**  A worker whose :class:`~repro.cluster.failure.
FailurePlan` comes due dies with ``os._exit`` — no goodbye frame, no flush
— which is exactly the fail-stop silence the master's heartbeat monitor
exists to detect.

**Telemetry.**  When the config's ``telemetry`` flag is on, the worker
instruments itself into a :class:`~repro.cluster.telemetry.TelemetryBuffer`
(execution start/finish with overrun accounting, heartbeat lag, lifecycle
markers) and drains it in batched ``TELEMETRY`` frames only on quantum
boundaries — after a task completes, with heartbeats, and at shutdown — so
tracing never sits on the execution path.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Dict, Optional

from ..observability import (
    OFF,
    Instrumentation,
    MetricsRegistry,
    StructuredLogger,
    get_instrumentation,
)
from . import protocol
from .config import ClusterConfig, build_cluster_workload
from .failure import FAILURE_EXIT_CODE
from .network import ConnectionLost, WorkerChannel
from .telemetry import TelemetryBuffer


class ClusterWorker:
    """One working processor: registers, executes, reports, heartbeats."""

    def __init__(
        self,
        config: ClusterConfig,
        index: int,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        # Indexes at or beyond num_workers are legal: elastic workers that
        # join a live pool hold no data residency but add capacity.
        if index < 0:
            raise ValueError(f"worker index {index} must be non-negative")
        self.config = config
        self.index = index
        self._telemetry: Optional[TelemetryBuffer] = None
        if instrumentation is not None:
            base_obs = instrumentation
        elif config.telemetry:
            # Spawned workers start with the NULL default; the config flag
            # is how the master's tracing reaches across the process
            # boundary.  Events buffer locally and ship on quantum
            # boundaries — the worker never touches the trace file itself.
            base_obs = Instrumentation(
                metrics=MetricsRegistry(),
                logger=StructuredLogger(name="repro.worker", level=OFF),
                sink=TelemetryBuffer(),
            )
        else:
            base_obs = get_instrumentation()
        if isinstance(base_obs.sink, TelemetryBuffer):
            self._telemetry = base_obs.sink
        self.obs = (
            base_obs.bind(component="worker", worker=index)
            if base_obs.enabled
            else base_obs
        )
        experiment = config.experiment
        self.database, tasks, transactions = build_cluster_workload(
            experiment, experiment.base_seed
        )
        self.transactions: Dict[int, object] = {
            txn.txn_id: txn for txn in transactions
        }
        self.estimates: Dict[int, float] = {
            task.task_id: task.processing_time for task in tasks
        }
        placement = self.database.placement
        self._global = self.database.global_executor()
        if 0 <= index < placement.num_processors:
            self.residency = frozenset(placement.contents_of(index))
            self._local = self.database.executor_for(index)
        else:
            # Elastic joiner beyond the data placement: nothing resident,
            # every partition access goes through the global executor.
            self.residency = frozenset()
            self._local = self._global
        self.tasks_done = 0
        self._queue: Deque[Dict[str, object]] = deque()
        self._channel: Optional[WorkerChannel] = None
        self._started = 0.0
        self._last_beat = 0.0

    # ----- lifecycle -------------------------------------------------------

    def run(self) -> int:
        """Connect, serve until SHUTDOWN (or master loss); tasks completed."""
        self._started = time.monotonic()
        try:
            self._channel = WorkerChannel.connect(
                self.config.host,
                self.config.port,
                timeout=self.config.connect_timeout,
            )
            self._register()
            self._serve()
        except ConnectionLost:
            # The master is gone; there is nobody left to report to.
            self.obs.logger.warning("master connection lost; exiting")
        finally:
            if self._channel is not None:
                self._channel.close()
        return self.tasks_done

    def _register(self) -> None:
        channel = self._channel
        channel.send(
            protocol.hello(
                self.index,
                os.getpid(),
                self.config.host,
                mono=time.monotonic(),
            )
        )
        deadline = time.monotonic() + self.config.startup_timeout
        while time.monotonic() < deadline:
            messages = channel.poll(self.config.poll_interval)
            for position, message in enumerate(messages):
                if message.get("type") == protocol.WELCOME:
                    granted = frozenset(message.get("residency", ()))
                    if granted != self.residency:
                        # Determinism broke: master and worker rebuilt
                        # different placements from the same seed.
                        raise RuntimeError(
                            f"residency mismatch on worker {self.index}: "
                            f"master says {sorted(granted)}, local build "
                            f"says {sorted(self.residency)}"
                        )
                    self._last_beat = time.monotonic()
                    if self.obs.enabled:
                        self.obs.emit(
                            "worker_start",
                            pid=os.getpid(),
                            residency=sorted(self.residency),
                        )
                    self._flush_telemetry()
                    # The master may pipeline work right behind the
                    # WELCOME (service mode dispatches the moment the
                    # fleet is up), so frames can share this poll batch.
                    for trailing in messages[position + 1:]:
                        if trailing.get("type") == protocol.ASSIGN:
                            self._queue.append(trailing)
                        else:
                            self.obs.logger.warning(
                                "unexpected message behind WELCOME",
                                type=trailing.get("type"),
                            )
                    return
            self._maybe_die()
        raise ConnectionLost(
            f"no WELCOME within {self.config.startup_timeout}s"
        )

    def _serve(self) -> None:
        channel = self._channel
        while True:
            self._maybe_die()
            self._maybe_heartbeat()
            # Drain the wire promptly while busy; sleep in poll when idle.
            timeout = 0.0 if self._queue else self.config.poll_interval
            for message in channel.poll(timeout):
                kind = message.get("type")
                if kind == protocol.ASSIGN:
                    self._queue.append(message)
                elif kind == protocol.SHUTDOWN:
                    self.obs.logger.info(
                        "shutdown received",
                        reason=message.get("reason"),
                        done=self.tasks_done,
                    )
                    if self.obs.enabled:
                        self.obs.emit(
                            "worker_shutdown",
                            tasks_done=self.tasks_done,
                            reason=message.get("reason"),
                        )
                    # Last chance for buffered events to reach the trace;
                    # a failed flush means the master is gone and the
                    # events die with the worker, as a crash's would.
                    try:
                        self._flush_telemetry()
                    except ConnectionLost:
                        pass
                    return
                else:
                    self.obs.logger.warning(
                        "unexpected message at worker", type=kind
                    )
            if self._queue:
                self._execute(self._queue.popleft())

    # ----- execution -------------------------------------------------------

    def _execute(self, assignment: Dict[str, object]) -> None:
        task_id = int(assignment["task_id"])
        # Service mode mints fresh task ids per submission; the ASSIGN then
        # carries the workload template to actually execute.  -1 (or an
        # absent field from a v2-era test double) means batch mode, where
        # the task id is the template id.
        template_id = int(assignment.get("template_id", -1))
        if template_id < 0:
            template_id = task_id
        txn = self.transactions.get(template_id)
        if txn is None:
            self.obs.logger.warning(
                "unknown task assigned", task=task_id, template=template_id
            )
            return
        if self.obs.enabled:
            self.obs.emit(
                "task",
                transition="exec_started",
                task_id=task_id,
                queue_depth=len(self._queue),
            )
        started = time.perf_counter()
        target = txn.target_subdb(self.database.schema)
        # A resident partition runs on the local replica set; a non-resident
        # one goes through the global executor — the stand-in for fetching
        # the partition remotely, whose wire time the padded
        # ``communication_cost`` accounts for.
        executor = self._local if target in self.residency else self._global
        outcome = executor.execute(txn)
        communication = float(assignment.get("communication_cost", 0.0))
        actual_units = outcome.cost + communication
        estimate_units = float(
            assignment.get(
                "total_cost", self.estimates.get(template_id, outcome.cost)
            )
        )
        elapsed = time.perf_counter() - started
        budget_seconds = self.config.units_to_seconds(actual_units)
        self._paced_sleep(budget_seconds - elapsed)
        exec_seconds = time.perf_counter() - started
        self._channel.send(
            protocol.task_done(
                task_id=task_id,
                worker_id=self.index,
                actual_cost=actual_units,
                estimated_cost=estimate_units,
                exec_seconds=exec_seconds,
            )
        )
        self.tasks_done += 1
        if self.obs.enabled:
            # Overrun is measured against the master's worst-case budget:
            # a positive value means the checking work physically outran
            # the time the guarantee reserved for it.
            budget_estimate = self.config.units_to_seconds(estimate_units)
            self.obs.emit(
                "task",
                transition="exec_finished",
                task_id=task_id,
                actual_cost=actual_units,
                planned_cost=estimate_units,
                exec_seconds=round(exec_seconds, 6),
                budget_seconds=round(budget_estimate, 6),
                overrun_seconds=round(
                    max(0.0, exec_seconds - budget_estimate), 6
                ),
            )
            self.obs.metrics.counter("cluster_worker_tasks_done").inc()
            self.obs.metrics.counter(
                "cluster_worker_tuples_checked"
            ).inc(outcome.tuples_checked)
        # Quantum boundary: the task is done and reported; flushing now
        # keeps telemetry off the execution path itself.
        self._flush_telemetry()

    def _paced_sleep(self, seconds: float) -> None:
        """Pad execution to the scaled cost without going silent.

        Sleeps in slices no longer than a quarter heartbeat interval,
        beating and checking the failure plan between slices — a worker
        paced through a long task stays visibly alive, and an injected
        crash lands mid-execution (the interesting case: its queue holds
        surrendered work).
        """
        slice_cap = self.config.heartbeat_interval / 4.0
        deadline = time.perf_counter() + seconds
        while True:
            self._maybe_die()
            self._maybe_heartbeat()
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            time.sleep(min(remaining, slice_cap))

    # ----- liveness --------------------------------------------------------

    def _maybe_heartbeat(self) -> None:
        now = time.monotonic()
        gap = now - self._last_beat
        if gap < self.config.heartbeat_interval / 2.0:
            return
        if self.obs.enabled and gap > self.config.heartbeat_interval:
            # The beat cadence slipped past a full interval: the worker
            # was wedged in something longer than a pacing slice (GC,
            # swap, a slow probe) — exactly the lag that makes the master
            # suspect death, so it goes in the trace.
            self.obs.emit("heartbeat_lag", gap_seconds=round(gap, 6))
        self._last_beat = now
        self._channel.send(
            protocol.heartbeat(
                self.index, len(self._queue), self.tasks_done, mono=now
            )
        )
        # Heartbeats mark quantum boundaries for idle workers; piggyback
        # any buffered telemetry on the same wakeup.
        self._flush_telemetry()

    def _flush_telemetry(self) -> None:
        """Ship buffered trace events to the master in batched frames."""
        buffer = self._telemetry
        if buffer is None or not buffer or self._channel is None:
            return
        while buffer:
            batch = buffer.drain(protocol.TELEMETRY_BATCH_SIZE)
            if not batch:
                break
            self._channel.send(
                protocol.telemetry(self.index, batch, mono=time.monotonic())
            )

    def _maybe_die(self) -> None:
        """Fail-stop: drop dead mid-anything, exactly as a crash would."""
        plan = self.config.failure
        if plan is None:
            return
        if plan.due(self.index, time.monotonic() - self._started):
            # os._exit skips atexit/flush/close: the socket dies with the
            # process and the master hears nothing but silence.
            os._exit(FAILURE_EXIT_CODE)


def worker_main(config: ClusterConfig, index: int) -> int:
    """Spawn entry point: build and run one worker; returns its exit code.

    Must stay importable at module top level (``multiprocessing`` spawn
    pickles the function reference, not the closure).
    """
    worker = ClusterWorker(config, index)
    try:
        worker.run()
    except ConnectionLost:
        return 1
    return 0
