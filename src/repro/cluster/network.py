"""Non-blocking TCP transport for python objects between master and workers.

The master side (:class:`MessageHub`) multiplexes every worker connection
through one :mod:`selectors` loop: sockets are non-blocking, each connection
owns a receive :class:`~repro.cluster.protocol.FrameDecoder` and a send
buffer, and broken connections surface as explicit ``DISCONNECT`` events
after any messages that were already buffered — never as lost data.

The worker side (:class:`WorkerChannel`) holds the single connection to the
master: blocking sends (a worker has nothing better to do than flush its
own reports) and timeout-bounded polls for receives.
"""

from __future__ import annotations

import selectors
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..observability import Instrumentation, get_instrumentation
from .protocol import FrameDecoder, pack

#: Event kinds yielded by :meth:`MessageHub.poll`.
CONNECT = "connect"
MESSAGE = "message"
DISCONNECT = "disconnect"

RECV_CHUNK = 65536


class ConnectionLost(ConnectionError):
    """The peer closed or reset the connection."""


@dataclass(frozen=True)
class NetworkEvent:
    """One thing that happened on the hub's selector loop."""

    kind: str  # CONNECT | MESSAGE | DISCONNECT
    conn_id: int
    message: Optional[Dict[str, object]] = None


class _Connection:
    """Per-peer state: socket, receive decoder, pending output."""

    __slots__ = ("conn_id", "sock", "decoder", "outbox", "broken")

    def __init__(self, conn_id: int, sock: socket.socket) -> None:
        self.conn_id = conn_id
        self.sock = sock
        self.decoder = FrameDecoder()
        self.outbox = bytearray()
        self.broken = False


class MessageHub:
    """The master's end of the wire: accept, multiplex, send, detect loss."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 32,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.obs = instrumentation or get_instrumentation()
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        # Cached so the address survives close() (reports read it late).
        self._host, self._port = self._listener.getsockname()[:2]
        self._selector.register(self._listener, selectors.EVENT_READ, data=None)
        self._connections: Dict[int, _Connection] = {}
        self._next_id = 0
        self._closed = False

    # ----- addressing ------------------------------------------------------

    @property
    def port(self) -> int:
        return self._port

    @property
    def host(self) -> str:
        return self._host

    @property
    def closed(self) -> bool:
        return self._closed

    def connection_ids(self) -> List[int]:
        return list(self._connections)

    # ----- metrics ---------------------------------------------------------

    def _count(self, counter: str, kind: str, size: int) -> None:
        if not self.obs.enabled:
            return
        self.obs.metrics.counter(
            f"cluster_messages_{counter}", type=kind
        ).inc()
        self.obs.metrics.counter(f"cluster_bytes_{counter}").inc(size)

    # ----- event loop ------------------------------------------------------

    def poll(self, timeout: float) -> List[NetworkEvent]:
        """Pump the selector once; return everything that happened.

        Ordering guarantee: messages decoded from a connection that then
        hit EOF are yielded *before* its ``DISCONNECT`` event.
        """
        events: List[NetworkEvent] = []
        for key, mask in self._selector.select(timeout):
            if key.data is None:
                self._accept(events)
                continue
            conn: _Connection = key.data
            if mask & selectors.EVENT_WRITE:
                self._flush(conn)
            if mask & selectors.EVENT_READ:
                self._receive(conn, events)
        # Surface connections whose send side broke outside poll().
        for conn in list(self._connections.values()):
            if conn.broken:
                self._drop(conn, events)
        return events

    def _accept(self, events: List[NetworkEvent]) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(self._next_id, sock)
            self._next_id += 1
            self._selector.register(sock, selectors.EVENT_READ, data=conn)
            self._connections[conn.conn_id] = conn
            events.append(NetworkEvent(kind=CONNECT, conn_id=conn.conn_id))

    def _receive(self, conn: _Connection, events: List[NetworkEvent]) -> None:
        try:
            data = conn.sock.recv(RECV_CHUNK)
        except BlockingIOError:
            return
        except (ConnectionResetError, OSError):
            self._drop(conn, events)
            return
        if not data:
            self._drop(conn, events)
            return
        for message in conn.decoder.feed(data):
            self._count("received", str(message.get("type")), len(data))
            events.append(
                NetworkEvent(
                    kind=MESSAGE, conn_id=conn.conn_id, message=message
                )
            )

    def _drop(
        self, conn: _Connection, events: Optional[List[NetworkEvent]]
    ) -> None:
        if conn.conn_id not in self._connections:
            return
        del self._connections[conn.conn_id]
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if events is not None:
            events.append(NetworkEvent(kind=DISCONNECT, conn_id=conn.conn_id))

    # ----- sending ---------------------------------------------------------

    def send(self, conn_id: int, message: Dict[str, object]) -> bool:
        """Queue one message to a peer; returns False if it is gone."""
        conn = self._connections.get(conn_id)
        if conn is None or conn.broken:
            return False
        frame = pack(message)
        conn.outbox.extend(frame)
        self._count("sent", str(message.get("type")), len(frame))
        self._flush(conn)
        return not conn.broken

    def broadcast(self, message: Dict[str, object]) -> int:
        """Send to every live connection; returns how many accepted it."""
        sent = 0
        for conn_id in list(self._connections):
            if self.send(conn_id, message):
                sent += 1
        return sent

    def _flush(self, conn: _Connection) -> None:
        """Push as much pending output as the socket accepts right now."""
        while conn.outbox:
            try:
                written = conn.sock.send(conn.outbox)
            except BlockingIOError:
                break
            except (BrokenPipeError, ConnectionResetError, OSError):
                conn.broken = True
                return
            if written <= 0:
                break
            del conn.outbox[:written]
        interest = selectors.EVENT_READ
        if conn.outbox:
            interest |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, interest, data=conn)
        except (KeyError, ValueError):
            pass

    # ----- teardown --------------------------------------------------------

    def close_connection(self, conn_id: int) -> None:
        conn = self._connections.get(conn_id)
        if conn is not None:
            self._drop(conn, events=None)

    def close(self) -> None:
        """Close every connection, the listener, and the selector."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._connections.values()):
            self._drop(conn, events=None)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()


class WorkerChannel:
    """The worker's single connection to the master."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._closed = False

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry_interval: float = 0.05,
    ) -> "WorkerChannel":
        """Dial the master, retrying until it listens or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        last_error: Optional[OSError] = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=retry_interval + 1.0
                )
            except OSError as exc:
                last_error = exc
                time.sleep(retry_interval)
                continue
            sock.setblocking(True)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return cls(sock)
        raise ConnectionLost(
            f"could not reach master at {host}:{port} within {timeout}s: "
            f"{last_error}"
        )

    def send(self, message: Dict[str, object]) -> None:
        if self._closed:
            raise ConnectionLost("channel is closed")
        try:
            self._sock.sendall(pack(message))
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ConnectionLost(f"send failed: {exc}") from None

    def poll(self, timeout: float) -> List[Dict[str, object]]:
        """Messages that arrived within ``timeout`` seconds (maybe none).

        Raises :class:`ConnectionLost` on EOF or reset — the master is gone
        and the worker should wind down.
        """
        if self._closed:
            raise ConnectionLost("channel is closed")
        self._sock.settimeout(max(0.0, timeout))
        try:
            data = self._sock.recv(RECV_CHUNK)
        except (socket.timeout, BlockingIOError):
            # timeout=0 puts the socket in non-blocking mode, where an
            # empty wire raises BlockingIOError instead of socket.timeout;
            # both just mean "nothing yet", not a lost master.
            return []
        except (ConnectionResetError, OSError) as exc:
            raise ConnectionLost(f"recv failed: {exc}") from None
        if not data:
            raise ConnectionLost("master closed the connection")
        return self._decoder.feed(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
