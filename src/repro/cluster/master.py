"""The live scheduling master: RT-SADS on a dedicated OS process.

This is the production-shaped counterpart of
:class:`repro.simulator.runtime.DistributedRuntime`: the same phase loop
(batch -> quantum -> search -> deliver), but time is the wall clock, the
"working processors" are worker processes reached over TCP, and delivery is
an ``ASSIGN`` message instead of a simulated ready-queue append.  The loop
itself lives in the backend-neutral
:class:`~repro.runtime.driver.PhaseDriver`; this module is the live
:class:`~repro.runtime.driver.PhaseHooks` implementation.

The paper's quantum criterion ``Q_s(j) <= max(Min_Slack, Min_Load)`` is
self-adjusted against *wall-clock* quantities: ``Min_Slack`` is computed at
the wall-derived virtual now, and ``Min_Load`` from the outstanding
(dispatched, unfinished) worst-case work per worker — a live upper bound on
each worker's remaining queue.

**Guarantee discipline.**  The search's feasibility test assumes delivery
by ``t_s + Q_s``; a real host can overshoot (interpreter jitter, message
floods), so the master re-validates every entry at dispatch time against a
fresh clock reading plus a safety margin: ``t_c + Load_k + (p + c) +
margin <= d``.  Only entries passing that re-check are dispatched and
counted *guaranteed*; the rest return to the driver's pending set and
re-enter the batch at the next phase.  This is what makes the paper's
theorem — no guaranteed task misses its deadline — hold under wall-clock
feasibility rather than simulated time.

**Failure handling.**  A worker that misses two heartbeat intervals (or
whose socket drops) is declared dead; its surrendered queue re-enters the
batch with guarantees revoked and is rescheduled on the survivors through
the normal feasibility path — the live analogue of ``extension_failures``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.affinity import UniformCommunicationModel, project_tasks
from ..core.task import Task
from ..experiments.runner import build_scheduler
from ..metrics.compliance import STATUS_COMPLETED, STATUS_EXPIRED
from ..observability import Instrumentation, get_instrumentation
from ..observability.clockskew import ClockOffsetEstimator
from ..runtime.driver import PhaseDriver, PhaseHooks
from ..runtime.report import ClusterReport, RunReport  # noqa: F401
from . import protocol
from .config import ClusterConfig, build_cluster_workload
from .failure import HeartbeatMonitor
from .network import CONNECT, DISCONNECT, MESSAGE, MessageHub, NetworkEvent

#: Deadline-comparison slop in virtual units (mirrors the core EPSILON).
EPSILON = 1e-9

#: Transient task states of the live run; terminal states are the
#: canonical ones from :mod:`repro.metrics.compliance`.
PENDING = "pending"
DISPATCHED = "dispatched"
COMPLETED = STATUS_COMPLETED
EXPIRED = STATUS_EXPIRED


class ClusterError(RuntimeError):
    """The live run could not start or complete."""


class ClusterStartupError(ClusterError):
    """Not every worker registered within the startup timeout."""


class ClusterTimeoutError(ClusterError):
    """The run exceeded its hard wall-clock budget and was aborted."""


@dataclass
class LiveTaskRecord:
    """Lifecycle of one task through the live system (master's view)."""

    task: Task
    status: str = PENDING
    worker: Optional[int] = None
    guaranteed: bool = False
    dispatched_at: Optional[float] = None  # virtual units
    finished_at: Optional[float] = None  # virtual units
    planned_cost: Optional[float] = None
    actual_cost: Optional[float] = None
    reschedules: int = 0

    @property
    def met_deadline(self) -> bool:
        return (
            self.status == COMPLETED
            and self.finished_at is not None
            and self.finished_at <= self.task.deadline + EPSILON
        )


@dataclass
class _Dispatched:
    """One outstanding assignment on a worker's queue (master bookkeeping)."""

    task_id: int
    planned_cost: float
    deadline: float


@dataclass
class _WorkerState:
    """Registration and queue state of one worker process."""

    worker_id: int
    conn_id: int
    alive: bool = True
    tasks_done: int = 0
    outstanding: Dict[int, _Dispatched] = field(default_factory=dict)

    def outstanding_units(self) -> float:
        """Worst-case remaining work — the live ``Load_k`` upper bound."""
        return sum(d.planned_cost for d in self.outstanding.values())


def remap_tasks(
    tasks: Sequence[Task], alive: Sequence[int]
) -> List[Task]:
    """Project task affinities onto the alive-worker index space.

    The search scheduler addresses processors ``0..m-1``; with dead workers
    (or a domain owning only a slice of the fleet) the master schedules
    over its own workers only, so affinities referring to real worker ids
    are translated to positions in ``alive``.  Affinity to an absent
    worker simply drops out (the data's surviving replicas keep their
    entries; a fully-absent affinity set degrades to all-remote).
    """
    return project_tasks(tasks, alive)


class ClusterMaster(PhaseHooks):
    """Accepts workers, runs the scheduling loop, collects completions."""

    def __init__(
        self,
        config: ClusterConfig,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        base_obs = instrumentation or get_instrumentation()
        self.obs = (
            base_obs.bind(component="master") if base_obs.enabled else base_obs
        )
        experiment = config.experiment
        self.database, tasks, _transactions = build_cluster_workload(
            experiment, experiment.base_seed
        )
        self.comm = UniformCommunicationModel(experiment.remote_cost)
        self.scheduler = build_scheduler(
            config.scheduler_name, experiment, self.comm
        )
        # Binding happens here so the launcher can read the real port
        # before spawning workers against an ephemeral (port=0) config.
        self.hub = MessageHub(
            config.host, config.port, instrumentation=self.obs
        )
        self.records: Dict[int, LiveTaskRecord] = {}
        self.driver = PhaseDriver(scheduler=self.scheduler, hooks=self)
        self._install_workload(tasks)
        self.workers: Dict[int, _WorkerState] = {}
        self._conn_to_worker: Dict[int, int] = {}
        self.monitor = HeartbeatMonitor(
            config.heartbeat_interval, config.heartbeat_miss_factor
        )
        # Every worker frame carries the sender's monotonic clock; the
        # min-filter estimator learns each worker's offset so shipped
        # telemetry can merge onto the master's timeline.
        self.clock = ClockOffsetEstimator()
        self.guaranteed_violations = 0
        # Telemetry events each worker's bounded buffer had to drop
        # (worker_id -> count), folded into the run_end trace header.
        self.telemetry_dropped: Dict[int, int] = {}
        # Per-phase scratch set by loads() and consumed by deliver_entry():
        # the alive-worker index space and the accumulating queue picture.
        self._phase_alive: List[int] = []
        self._phase_cumulative: List[float] = []
        self._t0: Optional[float] = None
        self._start_wall: Optional[float] = None

    def _install_workload(self, tasks: Sequence[Task]) -> None:
        """Hand the deterministically rebuilt workload to the run.

        Batch mode: every task is known up front — create its record and
        stage the full arrival stream on the driver.  The streaming
        service subclass overrides this to keep the tasks as *templates*
        and mint records per submission instead.
        """
        self.records = {
            task.task_id: LiveTaskRecord(task=task) for task in tasks
        }
        self.driver.stage_arrivals(tasks)

    def _template_id(self, task_id: int) -> int:
        """Template id to stamp on ASSIGN frames for ``task_id``.

        Batch mode dispatches the workload tasks themselves, so the wire
        default (``-1`` = "task id *is* the template id") is correct; the
        service subclass maps minted submission ids back to templates.
        """
        return -1

    # ----- clocks ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self.hub.port

    @property
    def expected_workers(self) -> int:
        """How many workers must register before the run starts.

        The whole fleet by default; a domain master (sharded mode)
        overrides this with the size of its own partition.
        """
        return self.config.num_workers

    def vnow(self) -> float:
        """Virtual time: wall seconds since readiness, in cost units."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) / self.config.seconds_per_unit

    # ----- lifecycle -------------------------------------------------------

    def run(self) -> RunReport:
        """Serve one complete workload; returns the aggregated report."""
        self._start_wall = time.monotonic()
        try:
            self._await_workers()
            # The virtual clock starts when the cluster is ready: worker
            # spawn time is deployment overhead, not scheduling overhead,
            # and the bursty workload "arrives" at readiness.
            self._t0 = time.monotonic()
            if self.obs.enabled:
                self.obs.emit(
                    "run_start",
                    workers=len(self.workers),
                    tasks=len(self.records),
                )
                self._emit_arrivals()
            self._loop()
        finally:
            self.shutdown()
        return self._build_report()

    def _emit_arrivals(self) -> None:
        """One "arrived" per task, mirroring the simulator's trace.

        Deadline + worst-case cost make the trace self-contained for the
        offline schedulability oracle even for tasks that expire before
        any other transition.
        """
        for task_id in sorted(self.records):
            task = self.records[task_id].task
            self.obs.emit(
                "task",
                transition="arrived",
                task_id=task_id,
                t=task.arrival_time,
                deadline=task.deadline,
                cost=task.processing_time,
            )

    def shutdown(self) -> None:
        """Broadcast SHUTDOWN, drain the last telemetry, close the hub.

        Idempotent: the sharded coordinator calls it on the success path
        and again from its ``finally`` cleanup.
        """
        if self.hub.closed:
            return
        try:
            self.hub.broadcast(protocol.shutdown())
            self._drain_shutdown()
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        self.hub.close()

    def _drain_shutdown(self) -> None:
        """Let SHUTDOWN leave the buffers; collect the final telemetry.

        Workers flush their last buffered events when SHUTDOWN arrives and
        then disconnect; the master keeps polling briefly so those frames
        merge into the trace instead of dying in a socket buffer.  Ends as
        soon as every live connection drops (or the grace expires) —
        untraced runs keep the old one-tick drain.
        """
        open_conns = sum(1 for s in self.workers.values() if s.alive)
        traced = self.obs.enabled or self.config.telemetry
        deadline = time.monotonic() + (0.5 if traced else 0.05)
        while open_conns > 0 and time.monotonic() < deadline:
            for event in self.hub.poll(0.05):
                if event.kind == DISCONNECT:
                    # An orderly exit, not a failure: count it down without
                    # the worker-lost path (nothing is left to surrender).
                    open_conns -= 1
                elif event.kind == MESSAGE and (
                    event.message.get("type") == protocol.TELEMETRY
                ):
                    self._on_telemetry(event.message)
            if not traced:
                break

    def _await_workers(self) -> None:
        """Block until every worker said HELLO (or the startup timeout)."""
        config = self.config
        deadline = time.monotonic() + config.startup_timeout
        while len(self.workers) < self.expected_workers:
            if time.monotonic() > deadline:
                raise ClusterStartupError(
                    f"only {len(self.workers)}/{self.expected_workers} "
                    f"workers registered within {config.startup_timeout}s"
                )
            for event in self.hub.poll(config.poll_interval):
                # Routed through the full dispatcher: a fast worker's first
                # TELEMETRY batch (its ``worker_start`` marker) can land
                # while the master still waits on slower registrations.
                self._handle_event(event)
        self.obs.logger.info(
            "cluster ready", workers=len(self.workers), port=self.port
        )

    def _register_worker(self, conn_id: int, message: Dict) -> None:
        """Register a HELLO into the live pool — at startup or mid-run.

        A HELLO after the run started is a *late join*, not a protocol
        error: the worker enters the alive pool and the next phase
        schedules onto it.  Indexes beyond the data placement get an empty
        residency (every access remote) — elastic capacity without
        re-replicating data.  A HELLO reusing the index of a dead worker
        is a restart and replaces the dead state (its queue was already
        surrendered).
        """
        worker_id = int(message["worker_id"])
        existing = self.workers.get(worker_id)
        if existing is not None and existing.alive:
            self.obs.logger.warning(
                "duplicate worker registration", worker=worker_id
            )
            return
        late = self._t0 is not None
        state = _WorkerState(worker_id=worker_id, conn_id=conn_id)
        self.workers[worker_id] = state
        self._conn_to_worker[conn_id] = worker_id
        self.monitor.register(worker_id, time.monotonic())
        self._observe_clock(worker_id, message.get("mono"))
        placement = self.database.placement
        if 0 <= worker_id < placement.num_processors:
            residency = placement.contents_of(worker_id)
        else:
            residency = frozenset()
        self.hub.send(conn_id, protocol.welcome(worker_id, residency))
        if late:
            self.obs.logger.info(
                "worker joined mid-run",
                worker=worker_id,
                rejoin=existing is not None,
            )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_workers_registered").inc()
            if late:
                self.obs.metrics.counter("cluster_workers_joined_late").inc()
                self.obs.emit(
                    "worker_joined",
                    worker=worker_id,
                    t=self.vnow(),
                    rejoin=existing is not None,
                    resident=len(residency),
                )

    # ----- main loop -------------------------------------------------------

    def _loop(self) -> None:
        while not self.step():
            pass

    def step(self) -> bool:
        """One iteration of the scheduling loop; True when the run is done.

        Exposed so the sharded coordinator can round-robin several domain
        masters through one thread; :meth:`run` just iterates it.
        """
        config = self.config
        for event in self.hub.poll(config.poll_interval):
            self._handle_event(event)
        now_wall = time.monotonic()
        for worker_id in self.monitor.expired(now_wall):
            self._worker_lost(worker_id, reason="missed heartbeats")
        if now_wall - self._start_wall > config.max_wall_seconds:
            raise ClusterTimeoutError(
                f"live run exceeded {config.max_wall_seconds}s; "
                "aborting and shutting the cluster down"
            )
        self._schedule_ready_work()
        return self._finished()

    def _handle_event(self, event: NetworkEvent) -> None:
        if event.kind == CONNECT:
            return  # identity arrives with HELLO
        if event.kind == DISCONNECT:
            self._on_disconnect(event.conn_id)
            return
        message = event.message
        kind = message.get("type")
        if kind == protocol.HELLO:
            self._register_worker(event.conn_id, message)
        elif kind == protocol.HEARTBEAT:
            worker_id = int(message["worker_id"])
            self.monitor.beat(worker_id, time.monotonic())
            self._observe_clock(worker_id, message.get("mono"))
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_heartbeats").inc()
        elif kind == protocol.TASK_DONE:
            self._on_task_done(message)
        elif kind == protocol.TELEMETRY:
            self._on_telemetry(message)
        else:
            self.obs.logger.warning(
                "unexpected message at master", type=kind
            )

    def _on_disconnect(self, conn_id: int) -> None:
        worker_id = self._conn_to_worker.pop(conn_id, None)
        if worker_id is not None:
            self._worker_lost(worker_id, reason="connection lost")

    # ----- telemetry merging ------------------------------------------------

    def _observe_clock(self, worker_id: int, sent_mono: object) -> None:
        """Fold one worker send-stamp into the offset estimate.

        Emits a ``clock_offset`` event whenever the estimate for a worker
        first appears or tightens, so the trace records the correction
        applied to every subsequently merged event.
        """
        if not isinstance(sent_mono, (int, float)) or sent_mono <= 0.0:
            return  # pre-v2 worker or constructor default: no sample
        before = self.clock.offset(worker_id)
        estimate = self.clock.observe(
            worker_id, float(sent_mono), time.monotonic()
        )
        if self.obs.enabled and (before is None or estimate < before - 1e-6):
            self.obs.emit(
                "clock_offset",
                worker=worker_id,
                offset_s=round(estimate, 6),
                samples=self.clock.samples(worker_id),
            )

    def _on_telemetry(self, message: Dict) -> None:
        """Merge one batched TELEMETRY frame into the run's trace sink.

        Each shipped event keeps the worker's own stamp (``w_mono``) and
        gains the skew-corrected master-clock reading (``m_mono``) plus the
        virtual time ``t`` derived from it — the field every analysis tool
        orders by.  Events are written straight to the sink (not through
        :meth:`Instrumentation.emit`) so the worker's bound context
        survives instead of being overwritten by the master's.
        """
        worker_id = int(message["worker_id"])
        self.monitor.beat(worker_id, time.monotonic())
        self._observe_clock(worker_id, message.get("mono"))
        # Account buffer overflow before the tracing gate: drop counts
        # must survive into the run_end header even on untraced runs.
        for event in message.get("events", ()):
            if (
                isinstance(event, dict)
                and event.get("event") == "telemetry_dropped"
            ):
                dropped = event.get("dropped")
                if isinstance(dropped, int) and dropped > 0:
                    self.telemetry_dropped[worker_id] = (
                        self.telemetry_dropped.get(worker_id, 0) + dropped
                    )
                    self.obs.metrics.counter(
                        "cluster_telemetry_dropped"
                    ).inc(dropped)
        if not self.obs.enabled:
            return
        spu = self.config.seconds_per_unit
        events = message.get("events", ())
        merged = 0
        for event in events:
            if not isinstance(event, dict):
                continue
            out = dict(event)
            out.setdefault("component", "worker")
            out.setdefault("worker", worker_id)
            w_mono = out.get("w_mono")
            if isinstance(w_mono, (int, float)):
                corrected = self.clock.correct(worker_id, float(w_mono))
                if corrected is not None:
                    out["m_mono"] = round(corrected, 6)
                    if self._t0 is not None:
                        out["t"] = round((corrected - self._t0) / spu, 6)
            self.obs.sink.emit(out)
            merged += 1
        self.obs.metrics.counter("cluster_telemetry_events").inc(merged)
        self.obs.metrics.counter("cluster_telemetry_batches").inc()

    # ----- completions ------------------------------------------------------

    def _on_task_done(self, message: Dict) -> None:
        worker_id = int(message["worker_id"])
        task_id = int(message["task_id"])
        now_v = self.vnow()
        self.monitor.beat(worker_id, time.monotonic())
        state = self.workers.get(worker_id)
        if state is not None:
            state.outstanding.pop(task_id, None)
            state.tasks_done += 1
        record = self.records.get(task_id)
        if record is None or record.status != DISPATCHED or (
            record.worker != worker_id
        ):
            # Stale completion: the task was surrendered and rescheduled
            # while this report was in flight.  First terminal state wins.
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_stale_completions").inc()
            return
        record.status = COMPLETED
        record.finished_at = now_v
        record.actual_cost = float(message["actual_cost"])
        if record.guaranteed and not record.met_deadline:
            self.guaranteed_violations += 1
            self.obs.logger.warning(
                "guaranteed task missed its deadline",
                task=task_id,
                finished=round(now_v, 2),
                deadline=record.task.deadline,
            )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_tasks_completed").inc()
            self.obs.emit(
                "task",
                transition="finished",
                task_id=task_id,
                t=now_v,
                processor=worker_id,
                met_deadline=record.met_deadline,
                deadline=record.task.deadline,
                actual_cost=record.actual_cost,
            )

    # ----- failures ---------------------------------------------------------

    def _worker_lost(self, worker_id: int, reason: str) -> None:
        state = self.workers.get(worker_id)
        if state is None or not state.alive:
            return
        state.alive = False
        self.monitor.forget(worker_id)
        self._conn_to_worker.pop(state.conn_id, None)
        self.hub.close_connection(state.conn_id)
        surrendered = list(state.outstanding.values())
        state.outstanding.clear()
        requeue: List[Task] = []
        for dispatched in surrendered:
            record = self.records.get(dispatched.task_id)
            if record is None or record.status != DISPATCHED:
                continue
            # The guarantee dies with the worker; the task re-enters the
            # batch and must re-earn feasibility on the survivors.
            record.status = PENDING
            record.guaranteed = False
            record.worker = None
            record.dispatched_at = None
            record.planned_cost = None
            record.reschedules += 1
            requeue.append(record.task)
        self.driver.worker_lost()
        self.driver.surrender(requeue)
        self.obs.logger.warning(
            "worker lost",
            worker=worker_id,
            reason=reason,
            surrendered=len(requeue),
        )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_workers_lost").inc()
            self.obs.metrics.counter("cluster_reschedules").inc(len(requeue))
            now_v = self.vnow()
            self.obs.emit(
                "worker_lost",
                worker=worker_id,
                reason=reason,
                t=now_v,
                surrendered=len(requeue),
            )
            for task in requeue:
                self.obs.emit(
                    "task",
                    transition="surrendered",
                    task_id=task.task_id,
                    t=now_v,
                    processor=worker_id,
                    deadline=task.deadline,
                )

    # ----- PhaseHooks: the driver's view of the live cluster ----------------

    def _alive_workers(self) -> List[int]:
        return sorted(
            worker_id
            for worker_id, state in self.workers.items()
            if state.alive
        )

    def loads(self, now: float) -> List[float]:
        """Live ``Load_k``: outstanding worst-case work per alive worker.

        Also pins this phase's alive-index space and seeds the cumulative
        queue picture :meth:`deliver_entry` extends dispatch by dispatch.
        An empty return (every worker dead) makes the driver skip the
        phase; leftovers expire as the clock advances.
        """
        alive = self._alive_workers()
        self._phase_alive = alive
        loads = [
            self.workers[worker_id].outstanding_units() for worker_id in alive
        ]
        self._phase_cumulative = list(loads)
        return loads

    def transform_batch(self, tasks: List[Task], now: float) -> List[Task]:
        return remap_tasks(tasks, self._phase_alive)

    def on_task_expired(self, task: Task, now: float) -> None:
        record = self.records[task.task_id]
        record.status = EXPIRED
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_tasks_expired").inc()
            self.obs.emit(
                "task",
                transition="expired",
                task_id=task.task_id,
                t=now,
                deadline=task.deadline,
                arrival=task.arrival_time,
            )

    def deliver_entry(self, entry, phase_index: int, now: float) -> bool:
        """Re-validate one entry at dispatch time and send it.

        The cumulative loads picture starts as the phase's initial
        per-worker outstanding work and accumulates this phase's own
        dispatches, so later entries on the same worker see the queue the
        earlier ones created.  A declined entry returns to the driver's
        pending set and re-enters the batch next phase.
        """
        config = self.config
        margin = config.guarantee_margin_units
        worker_id = self._phase_alive[entry.processor]
        state = self.workers[worker_id]
        if not state.alive:
            return False  # died mid-phase
        record = self.records[entry.task.task_id]
        now_v = self.vnow()
        finish_bound = (
            now_v + self._phase_cumulative[entry.processor] + entry.total_cost
        )
        if finish_bound + margin > entry.task.deadline + EPSILON:
            # The wall clock outran the phase's feasibility bound (or
            # the margin eats the slack); not guaranteed, try again
            # next phase or expire.
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_dispatch_rejected").inc()
                self.obs.emit(
                    "task",
                    transition="dispatch_rejected",
                    task_id=entry.task.task_id,
                    t=now_v,
                    processor=worker_id,
                    deadline=entry.task.deadline,
                    finish_bound=round(finish_bound + margin, 6),
                )
            return False
        sent = self.hub.send(
            state.conn_id,
            protocol.assign(
                task_id=entry.task.task_id,
                worker_id=worker_id,
                total_cost=entry.total_cost,
                communication_cost=entry.communication_cost,
                deadline=entry.task.deadline,
                template_id=self._template_id(entry.task.task_id),
            ),
        )
        if not sent:
            self._worker_lost(worker_id, reason="send failed")
            return False
        record.status = DISPATCHED
        record.worker = worker_id
        record.guaranteed = True
        record.dispatched_at = now_v
        record.planned_cost = entry.total_cost
        state.outstanding[entry.task.task_id] = _Dispatched(
            task_id=entry.task.task_id,
            planned_cost=entry.total_cost,
            deadline=entry.task.deadline,
        )
        self._phase_cumulative[entry.processor] += entry.total_cost
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_tasks_dispatched").inc()
            self.obs.emit(
                "task",
                transition="dispatched",
                task_id=entry.task.task_id,
                t=now_v,
                processor=worker_id,
                phase=phase_index,
                arrival=entry.task.arrival_time,
                deadline=entry.task.deadline,
                planned_cost=entry.total_cost,
            )
        return True

    # ----- scheduling -------------------------------------------------------

    def _schedule_ready_work(self) -> None:
        """Run one scheduling phase if there is anything to place."""
        now_v = self.vnow()
        opened = self.driver.open_phase(now_v)
        if opened is None:
            return
        with self.obs.span(
            "cluster_phase", phase=opened.index
        ) as span:
            trace = self.driver.deliver_phase(opened, now_v)
            if span is not None and self.obs.enabled:
                span.set(
                    t=round(now_v, 3),
                    batch=trace.batch_size,
                    quantum=trace.quantum,
                    scheduled=trace.scheduled,
                    dispatched=trace.delivered,
                )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_phases").inc()

    # ----- termination ------------------------------------------------------

    def _finished(self) -> bool:
        if self.driver.has_backlog():
            return False
        return all(
            not state.outstanding for state in self.workers.values()
        )

    def _build_report(self, emit: bool = True) -> RunReport:
        """Aggregate this master's records; ``emit=False`` suppresses the
        ``run_end`` event (the sharded coordinator emits one merged one)."""
        records = self.records.values()
        completed = [r for r in records if r.status == COMPLETED]
        hits = [r for r in completed if r.met_deadline]
        expired = [r for r in records if r.status == EXPIRED]
        makespan = max(
            (r.finished_at for r in completed if r.finished_at is not None),
            default=self.vnow(),
        )
        wall = (
            time.monotonic() - self._start_wall
            if self._start_wall is not None
            else 0.0
        )
        if emit and self.obs.enabled:
            self.obs.emit(
                "run_end",
                workers=self.config.num_workers,
                tasks=len(self.records),
                deadline_hits=len(hits),
                phases=len(self.driver.phases),
                makespan=float(makespan),
                telemetry_dropped=sum(self.telemetry_dropped.values()),
            )
        return RunReport(
            backend="cluster",
            scheduler_name=self.scheduler.name,
            num_workers=self.expected_workers,
            seed=self.config.experiment.base_seed,
            total_tasks=len(self.records),
            guaranteed=self.driver.guaranteed_count,
            completed=len(completed),
            deadline_hits=len(hits),
            completed_late=len(completed) - len(hits),
            expired=len(expired),
            failed=0,  # fail-stop workers surrender; tasks never die in flight
            guaranteed_violations=self.guaranteed_violations,
            reschedules=self.driver.reschedules,
            workers_lost=self.driver.workers_lost,
            makespan=float(makespan),
            wall_seconds=wall,
            phases=self.driver.phases,
            extras={"port": self.port},
        )
