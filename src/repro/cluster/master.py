"""The live scheduling master: RT-SADS on a dedicated OS process.

This is the production-shaped counterpart of
:class:`repro.simulator.runtime.DistributedRuntime`: the same phase loop
(batch -> quantum -> search -> deliver), but time is the wall clock, the
"working processors" are worker processes reached over TCP, and delivery is
an ``ASSIGN`` message instead of a simulated ready-queue append.

The paper's quantum criterion ``Q_s(j) <= max(Min_Slack, Min_Load)`` is
self-adjusted against *wall-clock* quantities: ``Min_Slack`` is computed at
the wall-derived virtual now, and ``Min_Load`` from the outstanding
(dispatched, unfinished) worst-case work per worker — a live upper bound on
each worker's remaining queue.

**Guarantee discipline.**  The search's feasibility test assumes delivery
by ``t_s + Q_s``; a real host can overshoot (interpreter jitter, message
floods), so the master re-validates every entry at dispatch time against a
fresh clock reading plus a safety margin: ``t_c + Load_k + (p + c) +
margin <= d``.  Only entries passing that re-check are dispatched and
counted *guaranteed*; the rest return to the batch.  This is what makes
the paper's theorem — no guaranteed task misses its deadline — hold under
wall-clock feasibility rather than simulated time.

**Failure handling.**  A worker that misses two heartbeat intervals (or
whose socket drops) is declared dead; its surrendered queue re-enters the
batch with guarantees revoked and is rescheduled on the survivors through
the normal feasibility path — the live analogue of ``extension_failures``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.affinity import UniformCommunicationModel
from ..core.batch import Batch
from ..core.task import Task
from ..experiments.runner import build_scheduler
from ..observability import Instrumentation, get_instrumentation
from . import protocol
from .config import ClusterConfig, build_cluster_workload
from .failure import HeartbeatMonitor
from .network import CONNECT, DISCONNECT, MESSAGE, MessageHub, NetworkEvent

#: Deadline-comparison slop in virtual units (mirrors the core EPSILON).
EPSILON = 1e-9

#: Terminal and transient task states of the live run.
PENDING = "pending"
DISPATCHED = "dispatched"
COMPLETED = "completed"
EXPIRED = "expired"


class ClusterError(RuntimeError):
    """The live run could not start or complete."""


class ClusterStartupError(ClusterError):
    """Not every worker registered within the startup timeout."""


class ClusterTimeoutError(ClusterError):
    """The run exceeded its hard wall-clock budget and was aborted."""


@dataclass
class LiveTaskRecord:
    """Lifecycle of one task through the live system (master's view)."""

    task: Task
    status: str = PENDING
    worker: Optional[int] = None
    guaranteed: bool = False
    dispatched_at: Optional[float] = None  # virtual units
    finished_at: Optional[float] = None  # virtual units
    planned_cost: Optional[float] = None
    actual_cost: Optional[float] = None
    reschedules: int = 0

    @property
    def met_deadline(self) -> bool:
        return (
            self.status == COMPLETED
            and self.finished_at is not None
            and self.finished_at <= self.task.deadline + EPSILON
        )


@dataclass
class _Dispatched:
    """One outstanding assignment on a worker's queue (master bookkeeping)."""

    task_id: int
    planned_cost: float
    deadline: float


@dataclass
class _WorkerState:
    """Registration and queue state of one worker process."""

    worker_id: int
    conn_id: int
    alive: bool = True
    tasks_done: int = 0
    outstanding: Dict[int, _Dispatched] = field(default_factory=dict)

    def outstanding_units(self) -> float:
        """Worst-case remaining work — the live ``Load_k`` upper bound."""
        return sum(d.planned_cost for d in self.outstanding.values())


@dataclass
class ClusterReport:
    """Outcome of one live run; the cluster analogue of a trace digest."""

    scheduler_name: str
    num_workers: int
    total_tasks: int
    guaranteed: int
    completed: int
    deadline_hits: int
    completed_late: int
    expired: int
    guaranteed_violations: int
    reschedules: int
    workers_lost: int
    phases: int
    makespan_units: float
    wall_seconds: float
    port: int
    seed: int

    @property
    def guarantee_ratio(self) -> float:
        """Fraction of tasks the master dispatched under a guarantee."""
        if not self.total_tasks:
            return 0.0
        return self.guaranteed / self.total_tasks

    @property
    def compliance_ratio(self) -> float:
        """Fraction of tasks that finished by their deadline (wall clock)."""
        if not self.total_tasks:
            return 0.0
        return self.deadline_hits / self.total_tasks

    def render(self) -> str:
        lines = [
            (
                f"Live cluster run - {self.scheduler_name} on "
                f"{self.num_workers} workers (seed {self.seed})"
            ),
            (
                f"guarantee ratio:  {self.guarantee_ratio:.3f} "
                f"({self.guaranteed}/{self.total_tasks} guaranteed)"
            ),
            (
                f"compliance ratio: {self.compliance_ratio:.3f} "
                f"({self.deadline_hits}/{self.total_tasks} met their deadline)"
            ),
            (
                f"completed {self.completed} (late {self.completed_late}), "
                f"expired {self.expired}, "
                f"guaranteed-but-missed {self.guaranteed_violations}"
            ),
            (
                f"phases {self.phases}, reschedules {self.reschedules}, "
                f"workers lost {self.workers_lost}"
            ),
            (
                f"makespan {self.makespan_units:.1f} units "
                f"({self.wall_seconds:.2f} s wall)"
            ),
        ]
        return "\n".join(lines)


def remap_tasks(
    tasks: Sequence[Task], alive: Sequence[int]
) -> List[Task]:
    """Project task affinities onto the alive-worker index space.

    The search scheduler addresses processors ``0..m-1``; with dead workers
    the master schedules over the survivors only, so affinities referring
    to real worker ids are translated to positions in ``alive``.  Affinity
    to a dead worker simply drops out (the data's surviving replicas keep
    their entries; a fully-dead affinity set degrades to all-remote).
    """
    index_of = {worker_id: index for index, worker_id in enumerate(alive)}
    remapped: List[Task] = []
    for task in tasks:
        mapped = frozenset(
            index_of[p] for p in task.affinity if p in index_of
        )
        if mapped == task.affinity:
            remapped.append(task)
        else:
            remapped.append(replace(task, affinity=mapped))
    return remapped


class ClusterMaster:
    """Accepts workers, runs the scheduling loop, collects completions."""

    def __init__(
        self,
        config: ClusterConfig,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        base_obs = instrumentation or get_instrumentation()
        self.obs = (
            base_obs.bind(component="master") if base_obs.enabled else base_obs
        )
        experiment = config.experiment
        self.database, tasks, _transactions = build_cluster_workload(
            experiment, experiment.base_seed
        )
        self.comm = UniformCommunicationModel(experiment.remote_cost)
        self.scheduler = build_scheduler(
            config.scheduler_name, experiment, self.comm
        )
        # Binding happens here so the launcher can read the real port
        # before spawning workers against an ephemeral (port=0) config.
        self.hub = MessageHub(
            config.host, config.port, instrumentation=self.obs
        )
        self.records: Dict[int, LiveTaskRecord] = {
            task.task_id: LiveTaskRecord(task=task) for task in tasks
        }
        self._arrivals: List[Task] = sorted(
            tasks, key=lambda t: (t.arrival_time, t.task_id)
        )
        self._next_arrival = 0
        self.batch = Batch()
        self.workers: Dict[int, _WorkerState] = {}
        self._conn_to_worker: Dict[int, int] = {}
        self.monitor = HeartbeatMonitor(
            config.heartbeat_interval, config.heartbeat_miss_factor
        )
        self.phases = 0
        self.reschedules = 0
        self.workers_lost = 0
        self.guaranteed_violations = 0
        self._t0: Optional[float] = None
        self._start_wall: Optional[float] = None

    # ----- clocks ----------------------------------------------------------

    @property
    def port(self) -> int:
        return self.hub.port

    def vnow(self) -> float:
        """Virtual time: wall seconds since readiness, in cost units."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) / self.config.seconds_per_unit

    # ----- lifecycle -------------------------------------------------------

    def run(self) -> ClusterReport:
        """Serve one complete workload; returns the aggregated report."""
        self._start_wall = time.monotonic()
        try:
            self._await_workers()
            # The virtual clock starts when the cluster is ready: worker
            # spawn time is deployment overhead, not scheduling overhead,
            # and the bursty workload "arrives" at readiness.
            self._t0 = time.monotonic()
            self._loop()
        finally:
            try:
                self.hub.broadcast(protocol.shutdown())
                # One short drain so SHUTDOWN frames leave the socket
                # buffers before the hub closes them.
                self.hub.poll(0.05)
            except OSError:
                pass
            self.close()
        return self._build_report()

    def close(self) -> None:
        self.hub.close()

    def _await_workers(self) -> None:
        """Block until every worker said HELLO (or the startup timeout)."""
        config = self.config
        deadline = time.monotonic() + config.startup_timeout
        while len(self.workers) < config.num_workers:
            if time.monotonic() > deadline:
                raise ClusterStartupError(
                    f"only {len(self.workers)}/{config.num_workers} workers "
                    f"registered within {config.startup_timeout}s"
                )
            for event in self.hub.poll(config.poll_interval):
                if event.kind == MESSAGE and (
                    event.message.get("type") == protocol.HELLO
                ):
                    self._register_worker(event.conn_id, event.message)
                elif event.kind == DISCONNECT:
                    self._on_disconnect(event.conn_id)
        self.obs.logger.info(
            "cluster ready", workers=len(self.workers), port=self.port
        )

    def _register_worker(self, conn_id: int, message: Dict) -> None:
        worker_id = int(message["worker_id"])
        if worker_id in self.workers:
            self.obs.logger.warning(
                "duplicate worker registration", worker=worker_id
            )
            return
        state = _WorkerState(worker_id=worker_id, conn_id=conn_id)
        self.workers[worker_id] = state
        self._conn_to_worker[conn_id] = worker_id
        self.monitor.register(worker_id, time.monotonic())
        residency = self.database.placement.contents_of(worker_id)
        self.hub.send(conn_id, protocol.welcome(worker_id, residency))
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_workers_registered").inc()

    # ----- main loop -------------------------------------------------------

    def _loop(self) -> None:
        config = self.config
        while True:
            for event in self.hub.poll(config.poll_interval):
                self._handle_event(event)
            now_wall = time.monotonic()
            for worker_id in self.monitor.expired(now_wall):
                self._worker_lost(worker_id, reason="missed heartbeats")
            if now_wall - self._start_wall > config.max_wall_seconds:
                raise ClusterTimeoutError(
                    f"live run exceeded {config.max_wall_seconds}s; "
                    "aborting and shutting the cluster down"
                )
            self._schedule_ready_work()
            if self._finished():
                return

    def _handle_event(self, event: NetworkEvent) -> None:
        if event.kind == CONNECT:
            return  # identity arrives with HELLO
        if event.kind == DISCONNECT:
            self._on_disconnect(event.conn_id)
            return
        message = event.message
        kind = message.get("type")
        if kind == protocol.HELLO:
            self._register_worker(event.conn_id, message)
        elif kind == protocol.HEARTBEAT:
            self.monitor.beat(int(message["worker_id"]), time.monotonic())
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_heartbeats").inc()
        elif kind == protocol.TASK_DONE:
            self._on_task_done(message)
        else:
            self.obs.logger.warning(
                "unexpected message at master", type=kind
            )

    def _on_disconnect(self, conn_id: int) -> None:
        worker_id = self._conn_to_worker.pop(conn_id, None)
        if worker_id is not None:
            self._worker_lost(worker_id, reason="connection lost")

    # ----- completions ------------------------------------------------------

    def _on_task_done(self, message: Dict) -> None:
        worker_id = int(message["worker_id"])
        task_id = int(message["task_id"])
        now_v = self.vnow()
        self.monitor.beat(worker_id, time.monotonic())
        state = self.workers.get(worker_id)
        if state is not None:
            state.outstanding.pop(task_id, None)
            state.tasks_done += 1
        record = self.records.get(task_id)
        if record is None or record.status != DISPATCHED or (
            record.worker != worker_id
        ):
            # Stale completion: the task was surrendered and rescheduled
            # while this report was in flight.  First terminal state wins.
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_stale_completions").inc()
            return
        record.status = COMPLETED
        record.finished_at = now_v
        record.actual_cost = float(message["actual_cost"])
        if record.guaranteed and not record.met_deadline:
            self.guaranteed_violations += 1
            self.obs.logger.warning(
                "guaranteed task missed its deadline",
                task=task_id,
                finished=round(now_v, 2),
                deadline=record.task.deadline,
            )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_tasks_completed").inc()
            self.obs.emit(
                "task",
                transition="finished",
                task_id=task_id,
                t=now_v,
                processor=worker_id,
                met_deadline=record.met_deadline,
            )

    # ----- failures ---------------------------------------------------------

    def _worker_lost(self, worker_id: int, reason: str) -> None:
        state = self.workers.get(worker_id)
        if state is None or not state.alive:
            return
        state.alive = False
        self.workers_lost += 1
        self.monitor.forget(worker_id)
        self._conn_to_worker.pop(state.conn_id, None)
        self.hub.close_connection(state.conn_id)
        surrendered = list(state.outstanding.values())
        state.outstanding.clear()
        requeued = 0
        for dispatched in surrendered:
            record = self.records.get(dispatched.task_id)
            if record is None or record.status != DISPATCHED:
                continue
            # The guarantee dies with the worker; the task re-enters the
            # batch and must re-earn feasibility on the survivors.
            record.status = PENDING
            record.guaranteed = False
            record.worker = None
            record.dispatched_at = None
            record.planned_cost = None
            record.reschedules += 1
            self.batch.add_arrivals([record.task])
            self.reschedules += 1
            requeued += 1
        self.obs.logger.warning(
            "worker lost",
            worker=worker_id,
            reason=reason,
            surrendered=requeued,
        )
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_workers_lost").inc()
            self.obs.metrics.counter("cluster_reschedules").inc(requeued)

    # ----- scheduling -------------------------------------------------------

    def _alive_workers(self) -> List[int]:
        return sorted(
            worker_id
            for worker_id, state in self.workers.items()
            if state.alive
        )

    def _admit_and_expire(self, now_v: float) -> None:
        arrived: List[Task] = []
        while self._next_arrival < len(self._arrivals):
            task = self._arrivals[self._next_arrival]
            if task.arrival_time > now_v:
                break
            arrived.append(task)
            self._next_arrival += 1
        if arrived:
            self.batch.add_arrivals(arrived)
        for task in self.batch.drop_expired(now_v):
            record = self.records[task.task_id]
            record.status = EXPIRED
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_tasks_expired").inc()
                self.obs.emit(
                    "task",
                    transition="expired",
                    task_id=task.task_id,
                    t=now_v,
                    deadline=task.deadline,
                )

    def _schedule_ready_work(self) -> None:
        """Run one scheduling phase if there is anything to place."""
        now_v = self.vnow()
        self._admit_and_expire(now_v)
        if not self.batch:
            return
        alive = self._alive_workers()
        if not alive:
            return  # no capacity; leftovers expire as the clock advances
        loads = [
            self.workers[worker_id].outstanding_units() for worker_id in alive
        ]
        batch_tasks = remap_tasks(self.batch.edf_order(), alive)
        quantum = self.scheduler.plan_quantum(batch_tasks, loads, now_v)
        with self.obs.span(
            "cluster_phase", phase=self.phases, batch=len(batch_tasks)
        ) as span:
            result = self.scheduler.schedule_phase(
                batch_tasks, loads, now_v, quantum
            )
            dispatched = self._dispatch(result.schedule, alive, loads)
            if span is not None and self.obs.enabled:
                span.set(
                    t=round(now_v, 3),
                    quantum=quantum,
                    scheduled=len(result.schedule),
                    dispatched=dispatched,
                )
        self.phases += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cluster_phases").inc()

    def _dispatch(
        self, schedule, alive: List[int], loads: List[float]
    ) -> int:
        """Re-validate and send each entry; returns how many went out.

        ``loads`` starts as the phase's initial per-worker outstanding work
        and accumulates this phase's own dispatches, so later entries on
        the same worker see the queue the earlier ones created.
        """
        config = self.config
        margin = config.guarantee_margin_units
        dispatched = 0
        cumulative = list(loads)
        for entry in schedule:
            worker_id = alive[entry.processor]
            state = self.workers[worker_id]
            if not state.alive:
                continue  # died mid-phase; entry stays in the batch
            record = self.records[entry.task.task_id]
            now_v = self.vnow()
            finish_bound = (
                now_v + cumulative[entry.processor] + entry.total_cost
            )
            if finish_bound + margin > entry.task.deadline + EPSILON:
                # The wall clock outran the phase's feasibility bound (or
                # the margin eats the slack); not guaranteed, try again
                # next phase or expire.
                if self.obs.enabled:
                    self.obs.metrics.counter(
                        "cluster_dispatch_rejected"
                    ).inc()
                continue
            sent = self.hub.send(
                state.conn_id,
                protocol.assign(
                    task_id=entry.task.task_id,
                    worker_id=worker_id,
                    total_cost=entry.total_cost,
                    communication_cost=entry.communication_cost,
                    deadline=entry.task.deadline,
                ),
            )
            if not sent:
                self._worker_lost(worker_id, reason="send failed")
                continue
            self.batch.remove_scheduled([entry.task.task_id])
            record.status = DISPATCHED
            record.worker = worker_id
            record.guaranteed = True
            record.dispatched_at = now_v
            record.planned_cost = entry.total_cost
            state.outstanding[entry.task.task_id] = _Dispatched(
                task_id=entry.task.task_id,
                planned_cost=entry.total_cost,
                deadline=entry.task.deadline,
            )
            cumulative[entry.processor] += entry.total_cost
            dispatched += 1
            if self.obs.enabled:
                self.obs.metrics.counter("cluster_tasks_dispatched").inc()
                self.obs.emit(
                    "task",
                    transition="dispatched",
                    task_id=entry.task.task_id,
                    t=now_v,
                    processor=worker_id,
                )
        return dispatched

    # ----- termination ------------------------------------------------------

    def _finished(self) -> bool:
        if self._next_arrival < len(self._arrivals):
            return False
        if self.batch:
            return False
        return all(
            not state.outstanding for state in self.workers.values()
        )

    def _build_report(self) -> ClusterReport:
        records = self.records.values()
        completed = [r for r in records if r.status == COMPLETED]
        hits = [r for r in completed if r.met_deadline]
        expired = [r for r in records if r.status == EXPIRED]
        guaranteed = [r for r in records if r.guaranteed]
        makespan = max(
            (r.finished_at for r in completed if r.finished_at is not None),
            default=self.vnow(),
        )
        wall = (
            time.monotonic() - self._start_wall
            if self._start_wall is not None
            else 0.0
        )
        return ClusterReport(
            scheduler_name=self.scheduler.name,
            num_workers=self.config.num_workers,
            total_tasks=len(self.records),
            guaranteed=len(guaranteed),
            completed=len(completed),
            deadline_hits=len(hits),
            completed_late=len(completed) - len(hits),
            expired=len(expired),
            guaranteed_violations=self.guaranteed_violations,
            reschedules=self.reschedules,
            workers_lost=self.workers_lost,
            phases=self.phases,
            makespan_units=makespan,
            wall_seconds=wall,
            port=self.port,
            seed=self.config.experiment.base_seed,
        )
