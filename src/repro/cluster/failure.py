"""Failure injection and detection for the live cluster.

The live analogue of the simulator's fail-stop crash study
(:func:`repro.experiments.extensions.extension_failures`): a
:class:`FailurePlan` makes one worker process die abruptly mid-run
(``os._exit``, no goodbye message), and the master's
:class:`HeartbeatMonitor` detects the silence within two heartbeat
intervals, after which the master reschedules the dead worker's
surrendered queue on the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Exit code a deliberately killed worker dies with, so launcher teardown
#: can tell an injected crash from a genuine worker bug.
FAILURE_EXIT_CODE = 17


@dataclass(frozen=True)
class FailurePlan:
    """Kill ``worker_index`` ``after_seconds`` after that worker starts."""

    worker_index: int
    after_seconds: float

    def __post_init__(self) -> None:
        if self.worker_index < 0:
            raise ValueError("worker_index must be non-negative")
        if self.after_seconds < 0:
            raise ValueError("after_seconds must be non-negative")

    @classmethod
    def parse(cls, spec: str) -> "FailurePlan":
        """Parse the CLI flag format ``INDEX@SECONDS`` (e.g. ``1@0.5``)."""
        index_part, separator, seconds_part = spec.partition("@")
        if not separator:
            raise ValueError(
                f"failure spec {spec!r} must look like INDEX@SECONDS"
            )
        try:
            index = int(index_part)
            seconds = float(seconds_part)
        except ValueError:
            raise ValueError(
                f"failure spec {spec!r} must look like INDEX@SECONDS"
            ) from None
        return cls(worker_index=index, after_seconds=seconds)

    def applies_to(self, worker_index: int) -> bool:
        return worker_index == self.worker_index

    def due(self, worker_index: int, elapsed_seconds: float) -> bool:
        """Whether this worker should die now, ``elapsed`` into its life."""
        return (
            self.applies_to(worker_index)
            and elapsed_seconds >= self.after_seconds
        )


class HeartbeatMonitor:
    """Tracks worker liveness from message arrival times.

    A worker is declared dead when nothing has been heard from it for
    ``interval * miss_factor`` seconds (the acceptance criterion: detection
    within two heartbeat intervals, so the default factor is 2).  Any
    message counts as a beat — a completion report is as alive as a
    heartbeat.
    """

    def __init__(self, interval: float, miss_factor: float = 2.0) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_factor < 1.0:
            raise ValueError("miss_factor must be >= 1")
        self.interval = interval
        self.miss_factor = miss_factor
        self._last_seen: Dict[int, float] = {}

    @property
    def timeout(self) -> float:
        """Silence longer than this declares a worker dead."""
        return self.interval * self.miss_factor

    def register(self, worker_id: int, now: float) -> None:
        """Start watching a worker (its registration counts as a beat)."""
        self._last_seen[worker_id] = now

    def beat(self, worker_id: int, now: float) -> None:
        """Record a sign of life; unknown workers are ignored."""
        if worker_id in self._last_seen:
            self._last_seen[worker_id] = now

    def forget(self, worker_id: int) -> None:
        """Stop watching a worker (it was declared dead or shut down)."""
        self._last_seen.pop(worker_id, None)

    def last_seen(self, worker_id: int) -> Optional[float]:
        return self._last_seen.get(worker_id)

    def expired(self, now: float) -> List[int]:
        """Workers silent past the timeout; each is reported exactly once."""
        dead = [
            worker_id
            for worker_id, seen in self._last_seen.items()
            if now - seen > self.timeout
        ]
        for worker_id in dead:
            del self._last_seen[worker_id]
        return dead

    def watched(self) -> List[int]:
        return sorted(self._last_seen)
