"""Wire protocol of the live cluster runtime.

Messages are length-prefixed JSON frames: a 4-byte big-endian payload
length followed by a UTF-8 JSON object.  Every payload carries the protocol
version (``v``) and a message ``type``; peers reject frames from other
versions instead of mis-parsing them.  The constructors below are the only
sanctioned way to build messages, so master and worker can never drift on
field names.

Message types
-------------
``HELLO``      worker -> master: registration (worker index, pid, host).
``WELCOME``    master -> worker: registration ack + resident sub-databases.
``ASSIGN``     master -> worker: one guaranteed task-to-processor assignment.
``TASK_DONE``  worker -> master: actual vs estimated execution cost.
``HEARTBEAT``  worker -> master: liveness + queue depth.
``TELEMETRY``  worker -> master: a batch of buffered trace events.
``SHUTDOWN``   master -> worker: drain and exit.
``SUBMIT``     client -> master: stream one transaction into the service.
``ACCEPT``     master -> client: submission admitted (task id + deadline).
``REJECT``     master -> client: submission shed by the admission policy.
``RESULT``     master -> client: terminal outcome of an accepted submission.
``MIGRATE_OFFER``    master -> master: hand off one unplaceable task.
``MIGRATE_ACCEPT``   master -> master: the peer took ownership of the task.
``MIGRATE_DECLINE``  master -> master: the peer cannot guarantee it either.

Service mode (protocol v3)
--------------------------
In the streaming service mode clients never ship transaction bodies over
the wire.  A ``SUBMIT`` names a *template* — one of the deterministically
rebuilt workload transactions both master and workers derive from
``(experiment, seed)`` — and the master mints a fresh task instance from
it, stamped with the submission's arrival time.  ``ASSIGN`` therefore
carries ``template_id`` so workers know which resident transaction body to
execute for a minted task id.  Every ``SUBMIT`` receives exactly one
``ACCEPT`` or ``REJECT``, and every ``ACCEPT`` is followed by exactly one
``RESULT`` (statuses: ``completed``/``expired``/``shed``/``surrendered``).

Sharded domains (protocol v4)
-----------------------------
With ``ExperimentConfig.domains > 1`` the launcher runs one master per
scheduling domain.  When a domain's feasibility search cannot place a task
locally, its master sends a ``MIGRATE_OFFER`` to the least-loaded peer
domain carrying the full task description (id, arrival, worst-case cost,
deadline, global affinity set).  The peer answers exactly one
``MIGRATE_ACCEPT`` (it created a record and admitted the task to its own
batch) or ``MIGRATE_DECLINE`` (its quick guarantee check failed too); an
unanswered offer times out at the origin and counts as a decline the peer
never voiced.  Offers are one-hop: an accepted task is never re-offered,
and a declined task falls back to the origin's normal surrender/expiry
path.

Clock samples
-------------
``HELLO``, ``HEARTBEAT``, and ``TELEMETRY`` carry ``mono`` — the sender's
``time.monotonic()`` at send time — so the master can estimate each
worker's clock offset (see
:class:`repro.observability.clockskew.ClockOffsetEstimator`) and merge
worker-stamped telemetry events onto its own timeline.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Sequence

#: Bump on any incompatible change to frame layout or message fields.
#: v2: TELEMETRY messages; ``mono`` clock samples on HELLO and HEARTBEAT.
#: v3: service-mode SUBMIT/ACCEPT/REJECT/RESULT; ``template_id`` on ASSIGN.
#: v4: inter-domain MIGRATE_OFFER/MIGRATE_ACCEPT/MIGRATE_DECLINE frames.
PROTOCOL_VERSION = 4

#: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; anything larger is a corrupt stream
#: (the largest legitimate message is a TELEMETRY batch of a few hundred
#: small events; batches are chunked well below this).
MAX_FRAME_BYTES = 1 << 20

#: Events per TELEMETRY frame; keeps every frame far under MAX_FRAME_BYTES.
TELEMETRY_BATCH_SIZE = 200

HELLO = "HELLO"
WELCOME = "WELCOME"
ASSIGN = "ASSIGN"
TASK_DONE = "TASK_DONE"
HEARTBEAT = "HEARTBEAT"
TELEMETRY = "TELEMETRY"
SHUTDOWN = "SHUTDOWN"
SUBMIT = "SUBMIT"
ACCEPT = "ACCEPT"
REJECT = "REJECT"
RESULT = "RESULT"
MIGRATE_OFFER = "MIGRATE_OFFER"
MIGRATE_ACCEPT = "MIGRATE_ACCEPT"
MIGRATE_DECLINE = "MIGRATE_DECLINE"

MESSAGE_TYPES = frozenset(
    {
        HELLO,
        WELCOME,
        ASSIGN,
        TASK_DONE,
        HEARTBEAT,
        TELEMETRY,
        SHUTDOWN,
        SUBMIT,
        ACCEPT,
        REJECT,
        RESULT,
        MIGRATE_OFFER,
        MIGRATE_ACCEPT,
        MIGRATE_DECLINE,
    }
)

#: Terminal statuses a RESULT frame may carry.
RESULT_STATUSES = frozenset({"completed", "expired", "shed", "surrendered"})


class ProtocolError(ValueError):
    """A frame or message violates the protocol."""


def pack(message: Dict[str, object]) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {kind!r}")
    payload = dict(message)
    payload["v"] = PROTOCOL_VERSION
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return HEADER.pack(len(body)) + body


def unpack(body: bytes) -> Dict[str, object]:
    """Decode one frame payload, validating version and type."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload is {type(message).__name__}, not an object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} != {PROTOCOL_VERSION}"
        )
    if message.get("type") not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {message.get('type')!r}")
    return message


class FrameDecoder:
    """Incremental decoder: feed raw bytes, get complete messages.

    One instance per connection; it owns the connection's receive buffer so
    frames split across ``recv`` calls (or several frames arriving in one)
    reassemble correctly.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Absorb ``data``; return every message completed by it."""
        self._buffer.extend(data)
        messages: List[Dict[str, object]] = []
        while len(self._buffer) >= HEADER.size:
            (length,) = HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds "
                    f"{MAX_FRAME_BYTES}; stream is corrupt"
                )
            end = HEADER.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            messages.append(unpack(body))
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# ----- constructors ---------------------------------------------------------


def hello(
    worker_id: int, pid: int, host: str, mono: float = 0.0
) -> Dict[str, object]:
    """Registration; ``mono`` is the worker clock's first offset sample."""
    return {
        "type": HELLO,
        "worker_id": worker_id,
        "pid": pid,
        "host": host,
        "mono": mono,
    }


def welcome(worker_id: int, residency: Iterable[int]) -> Dict[str, object]:
    return {
        "type": WELCOME,
        "worker_id": worker_id,
        "residency": sorted(residency),
    }


def assign(
    task_id: int,
    worker_id: int,
    total_cost: float,
    communication_cost: float,
    deadline: float,
    template_id: int = -1,
) -> Dict[str, object]:
    """One dispatched schedule entry.

    ``total_cost`` is the worst case the master budgeted (``p + c``);
    ``communication_cost`` the remote-access share of it; ``deadline`` the
    absolute deadline in virtual units for the worker's own bookkeeping.
    ``template_id`` names the workload transaction to execute when it
    differs from ``task_id`` (service mode mints fresh task ids per
    submission); ``-1`` means "the task id is the template id" (batch
    mode).
    """
    return {
        "type": ASSIGN,
        "task_id": task_id,
        "worker_id": worker_id,
        "total_cost": total_cost,
        "communication_cost": communication_cost,
        "deadline": deadline,
        "template_id": template_id,
    }


def task_done(
    task_id: int,
    worker_id: int,
    actual_cost: float,
    estimated_cost: float,
    exec_seconds: float,
) -> Dict[str, object]:
    """Completion report: actual checking work vs the master's estimate."""
    return {
        "type": TASK_DONE,
        "task_id": task_id,
        "worker_id": worker_id,
        "actual_cost": actual_cost,
        "estimated_cost": estimated_cost,
        "exec_seconds": exec_seconds,
    }


def heartbeat(
    worker_id: int, queue_depth: int, tasks_done: int, mono: float = 0.0
) -> Dict[str, object]:
    """Liveness beat; ``mono`` feeds the master's clock-offset estimator."""
    return {
        "type": HEARTBEAT,
        "worker_id": worker_id,
        "queue_depth": queue_depth,
        "tasks_done": tasks_done,
        "mono": mono,
    }


def telemetry(
    worker_id: int, events: Sequence[Dict[str, object]], mono: float = 0.0
) -> Dict[str, object]:
    """One batch of buffered worker trace events.

    Each event is a flat JSON object stamped with ``w_mono`` (the worker's
    monotonic clock when it was emitted); ``mono`` is the batch's send
    time, which doubles as one more clock-offset sample.
    """
    return {
        "type": TELEMETRY,
        "worker_id": worker_id,
        "events": list(events),
        "mono": mono,
    }


def shutdown(reason: str = "complete") -> Dict[str, object]:
    return {"type": SHUTDOWN, "reason": reason}


def submit(
    request_id: int,
    template_id: int,
    relative_deadline: float = 0.0,
    mono: float = 0.0,
) -> Dict[str, object]:
    """Stream one transaction into the service.

    ``request_id`` is client-scoped (echoed on ACCEPT/REJECT/RESULT so the
    client can correlate); ``template_id`` names the workload transaction
    to instantiate; ``relative_deadline`` is the deadline in virtual units
    past the master-observed arrival time (``<= 0`` means "use the
    template's own laxity"); ``mono`` is a clock-offset sample.
    """
    return {
        "type": SUBMIT,
        "request_id": request_id,
        "template_id": template_id,
        "relative_deadline": relative_deadline,
        "mono": mono,
    }


def accept(request_id: int, task_id: int, deadline: float) -> Dict[str, object]:
    """Submission admitted: the minted task id and its absolute deadline."""
    return {
        "type": ACCEPT,
        "request_id": request_id,
        "task_id": task_id,
        "deadline": deadline,
    }


def reject(request_id: int, reason: str, policy: str) -> Dict[str, object]:
    """Submission shed at admission by ``policy`` (e.g. ``backlog-full``)."""
    return {
        "type": REJECT,
        "request_id": request_id,
        "reason": reason,
        "policy": policy,
    }


def result(
    request_id: int,
    task_id: int,
    status: str,
    met_deadline: bool,
    finished_at: float,
) -> Dict[str, object]:
    """Terminal outcome of an accepted submission.

    ``status`` is one of :data:`RESULT_STATUSES`; ``finished_at`` is the
    virtual time the task reached that status (0 when never dispatched).
    """
    if status not in RESULT_STATUSES:
        raise ProtocolError(f"unknown result status {status!r}")
    return {
        "type": RESULT,
        "request_id": request_id,
        "task_id": task_id,
        "status": status,
        "met_deadline": met_deadline,
        "finished_at": finished_at,
    }


def migrate_offer(
    offer_id: int,
    origin_domain: int,
    task_id: int,
    arrival: float,
    processing: float,
    deadline: float,
    affinity: Iterable[int],
    mono: float = 0.0,
) -> Dict[str, object]:
    """Offer one unplaceable task to a peer domain's master.

    Carries the complete task description so the peer can reconstruct the
    :class:`~repro.core.task.Task` and run the quick guarantee check
    without any shared state; ``affinity`` is the *global* processor-id
    set (every master speaks global ids on the wire — only the searches
    think in local slots).  ``offer_id`` is origin-scoped and echoed on
    the reply so late answers still resolve.
    """
    return {
        "type": MIGRATE_OFFER,
        "offer_id": offer_id,
        "origin_domain": origin_domain,
        "task_id": task_id,
        "arrival": arrival,
        "processing": processing,
        "deadline": deadline,
        "affinity": sorted(affinity),
        "mono": mono,
    }


def migrate_accept(
    offer_id: int, task_id: int, target_domain: int
) -> Dict[str, object]:
    """The peer took ownership: it admitted the task to its own batch."""
    return {
        "type": MIGRATE_ACCEPT,
        "offer_id": offer_id,
        "task_id": task_id,
        "target_domain": target_domain,
    }


def migrate_decline(
    offer_id: int, task_id: int, target_domain: int, reason: str = "infeasible"
) -> Dict[str, object]:
    """The peer's quick guarantee check failed; the task stays put."""
    return {
        "type": MIGRATE_DECLINE,
        "offer_id": offer_id,
        "task_id": task_id,
        "target_domain": target_domain,
        "reason": reason,
    }
