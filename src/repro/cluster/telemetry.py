"""Worker-side telemetry buffering for the cluster trace pipeline.

A worker process cannot write into the master's trace file, and sending
one TCP frame per trace event would perturb the very data path the trace
is meant to measure.  Instead the worker's instrumentation emits into a
:class:`TelemetryBuffer` — a bounded in-memory
:class:`~repro.observability.sinks.TraceSink` that stamps every event
with the worker's monotonic clock (``w_mono``) — and the worker drains
it in batched ``TELEMETRY`` frames only on quantum boundaries: after a
task execution completes, alongside heartbeats, and at shutdown.  The
master re-stamps each event onto its own timeline via the
clock-offset estimator and writes it into the run's single JSONL sink.

The buffer is bounded (oldest events drop first, with a drop counter
carried in the next flush) so a worker that outpaces its flush points can
never grow without limit; in practice the flush cadence keeps the buffer
tiny.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List

from ..observability.sinks import TraceSink

#: Events retained before the oldest are dropped (flush cadence keeps the
#: live buffer far below this; the cap only matters for a wedged socket).
DEFAULT_BUFFER_CAP = 4096


class TelemetryBuffer(TraceSink):
    """Bounded event buffer stamped with the worker's monotonic clock."""

    def __init__(self, cap: int = DEFAULT_BUFFER_CAP) -> None:
        if cap <= 0:
            raise ValueError("telemetry buffer cap must be positive")
        self.cap = cap
        self._events: Deque[Dict[str, object]] = deque()
        self.events_buffered = 0
        self.events_dropped = 0

    def emit(self, event: Dict[str, object]) -> None:
        """Buffer one event, stamping ``w_mono`` if the emitter did not."""
        if "w_mono" not in event:
            event = dict(event)
            event["w_mono"] = time.monotonic()
        self._events.append(event)
        self.events_buffered += 1
        if len(self._events) > self.cap:
            self._events.popleft()
            self.events_dropped += 1

    def drain(self, max_events: int) -> List[Dict[str, object]]:
        """Remove and return up to ``max_events`` oldest buffered events.

        The first drain after any drop prepends one ``telemetry_dropped``
        marker event so the merged trace records the loss instead of
        silently thinning.  The marker is bookkeeping, not payload: it
        rides on top of ``max_events`` rather than displacing a real
        event (otherwise every drop would also silently shrink the batch
        that reports it).
        """
        batch: List[Dict[str, object]] = []
        limit = max_events
        if self.events_dropped:
            batch.append(
                {
                    "event": "telemetry_dropped",
                    "dropped": self.events_dropped,
                    "w_mono": time.monotonic(),
                }
            )
            self.events_dropped = 0
            limit += 1
        while self._events and len(batch) < limit:
            batch.append(self._events.popleft())
        return batch

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events) or self.events_dropped > 0
