"""Partitioning the global database into sub-databases.

The paper divides the global database of ``r`` tuples into ``d``
sub-databases "through a hashing function in order to speed-up the location
of a tuple with respect to the sub-databases".  With the disjoint-domain
encoding of :mod:`repro.database.schema`, the hash is a perfect one — an
interval decode of the key value (:class:`IntervalHashPartitioner`).  A
classic modulo hash (:class:`ModuloHashPartitioner`) is included for global
tables whose key domains are not pre-partitioned.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Tuple

from .schema import Schema

Row = Tuple[int, ...]


class Partitioner(ABC):
    """Maps a key value to the sub-database that stores it."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    @abstractmethod
    def partition_of(self, key_value: int) -> int:
        """Index of the sub-database owning ``key_value``."""

    def split(
        self, rows: Iterable[Row], key_attribute: int
    ) -> Dict[int, List[Row]]:
        """Distribute rows of a global table into per-partition lists."""
        partitions: Dict[int, List[Row]] = {
            p: [] for p in range(self.num_partitions)
        }
        for row in rows:
            partitions[self.partition_of(row[key_attribute])].append(row)
        return partitions


class IntervalHashPartitioner(Partitioner):
    """Perfect hash over the disjoint per-sub-database domains."""

    def __init__(self, schema: Schema) -> None:
        super().__init__(schema.num_subdatabases)
        self.schema = schema

    def partition_of(self, key_value: int) -> int:
        return self.schema.subdb_of_value(key_value)


class ModuloHashPartitioner(Partitioner):
    """Classic ``hash(key) mod d`` partitioning for unstructured domains."""

    def partition_of(self, key_value: int) -> int:
        if key_value < 0:
            raise ValueError(f"key values are non-negative, got {key_value}")
        # Multiplicative (Knuth) mixing so consecutive keys spread out.
        mixed = (key_value * 2654435761) & 0xFFFFFFFF
        return mixed % self.num_partitions


def balance_report(partitions: Dict[int, List[Row]]) -> Dict[str, float]:
    """Min/max/mean partition sizes — used to sanity-check the hash."""
    sizes = [len(rows) for rows in partitions.values()]
    if not sizes:
        return {"min": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "min": float(min(sizes)),
        "max": float(max(sizes)),
        "mean": sum(sizes) / len(sizes),
    }
