"""Relational schema of the paper's evaluation database.

The global database has 10 attributes; it is divided into ``d``
sub-databases whose attribute domains are **disjoint from each other**
(paper Section 5.1), which lets any attribute value be located in exactly
one sub-database.  We realize disjointness with interval encoding: attribute
``a`` of sub-database ``s`` draws values from
``[base(s, a), base(s, a) + domain_size)``, where the bases tile the integer
line without overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Paper defaults (Section 5.1).
DEFAULT_NUM_ATTRIBUTES = 10
DEFAULT_KEY_ATTRIBUTE = 0  # "indexed according to a specific key attribute"
DEFAULT_DOMAIN_SIZE = 100


@dataclass(frozen=True)
class Domain:
    """A half-open integer interval ``[low, high)`` of attribute values."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError(f"empty domain [{self.low}, {self.high})")

    @property
    def size(self) -> int:
        return self.high - self.low

    def __contains__(self, value: int) -> bool:
        return self.low <= value < self.high

    def sample(self, rng) -> int:
        """Uniformly distributed value from the domain (paper Section 5.1)."""
        return rng.randrange(self.low, self.high)


@dataclass(frozen=True)
class Schema:
    """Shape of the partitioned database: attribute count and domain layout."""

    num_subdatabases: int
    num_attributes: int = DEFAULT_NUM_ATTRIBUTES
    domain_size: int = DEFAULT_DOMAIN_SIZE
    key_attribute: int = DEFAULT_KEY_ATTRIBUTE

    def __post_init__(self) -> None:
        if self.num_subdatabases <= 0:
            raise ValueError("num_subdatabases must be positive")
        if self.num_attributes <= 0:
            raise ValueError("num_attributes must be positive")
        if self.domain_size <= 0:
            raise ValueError("domain_size must be positive")
        if not 0 <= self.key_attribute < self.num_attributes:
            raise ValueError(
                f"key_attribute {self.key_attribute} outside "
                f"[0, {self.num_attributes})"
            )

    def domain_for(self, subdb: int, attribute: int) -> Domain:
        """Domain of ``attribute`` within sub-database ``subdb``.

        Sub-databases tile the value space: sub-database ``s`` owns the
        block ``[s * A * D, (s+1) * A * D)`` split into one ``D``-sized
        slice per attribute, so every value identifies both its
        sub-database and its attribute.
        """
        self._check(subdb, attribute)
        base = (subdb * self.num_attributes + attribute) * self.domain_size
        return Domain(base, base + self.domain_size)

    def subdb_of_value(self, value: int) -> int:
        """Sub-database owning ``value`` (the disjointness decode)."""
        if value < 0:
            raise ValueError(f"attribute values are non-negative, got {value}")
        subdb = value // (self.num_attributes * self.domain_size)
        if subdb >= self.num_subdatabases:
            raise ValueError(f"value {value} outside every sub-database")
        return subdb

    def attribute_of_value(self, value: int) -> int:
        """Attribute slot the value belongs to (sanity checks in tests)."""
        if value < 0:
            raise ValueError(f"attribute values are non-negative, got {value}")
        return (value // self.domain_size) % self.num_attributes

    def key_domain(self, subdb: int) -> Domain:
        """Domain of the key attribute within ``subdb``."""
        return self.domain_for(subdb, self.key_attribute)

    def all_domains(self, subdb: int) -> List[Domain]:
        """Domains of every attribute of ``subdb``, in attribute order."""
        return [
            self.domain_for(subdb, attribute)
            for attribute in range(self.num_attributes)
        ]

    def _check(self, subdb: int, attribute: int) -> None:
        if not 0 <= subdb < self.num_subdatabases:
            raise ValueError(
                f"subdb {subdb} outside [0, {self.num_subdatabases})"
            )
        if not 0 <= attribute < self.num_attributes:
            raise ValueError(
                f"attribute {attribute} outside [0, {self.num_attributes})"
            )
