"""Distributed real-time database: the paper's evaluation application.

A global relational database hash-partitioned into sub-databases with
disjoint attribute domains, replicated onto processor-local memories at a
configurable rate, queried by read-only transactions whose worst-case cost
the host estimates from a global index file.
"""

from .cost_model import (
    DEFAULT_CHECK_COST,
    WRITE_COST_FACTOR,
    CostEstimate,
    TransactionCostModel,
)
from .database import DatabaseConfig, DistributedDatabase
from .executor import (
    ExecutionOutcome,
    LockAcquisitionBlocked,
    TransactionExecutor,
)
from .index import GlobalIndex, IndexEntry
from .locks import LockError, LockManager, LockMode
from .partition import (
    IntervalHashPartitioner,
    ModuloHashPartitioner,
    Partitioner,
    balance_report,
)
from .replication import ReplicaPlacement, place_replicas, replicas_for_rate
from .schema import (
    DEFAULT_DOMAIN_SIZE,
    DEFAULT_KEY_ATTRIBUTE,
    DEFAULT_NUM_ATTRIBUTES,
    Domain,
    Schema,
)
from .table import (
    DEFAULT_RECORDS_PER_SUBDB,
    SubDatabase,
    generate_subdatabase,
)
from .transaction import Transaction, UpdateTransaction

__all__ = [
    "CostEstimate",
    "DEFAULT_CHECK_COST",
    "LockAcquisitionBlocked",
    "LockError",
    "LockManager",
    "LockMode",
    "UpdateTransaction",
    "WRITE_COST_FACTOR",
    "DEFAULT_DOMAIN_SIZE",
    "DEFAULT_KEY_ATTRIBUTE",
    "DEFAULT_NUM_ATTRIBUTES",
    "DEFAULT_RECORDS_PER_SUBDB",
    "DatabaseConfig",
    "DistributedDatabase",
    "Domain",
    "ExecutionOutcome",
    "GlobalIndex",
    "IndexEntry",
    "IntervalHashPartitioner",
    "ModuloHashPartitioner",
    "Partitioner",
    "ReplicaPlacement",
    "Schema",
    "SubDatabase",
    "Transaction",
    "TransactionCostModel",
    "TransactionExecutor",
    "balance_report",
    "generate_subdatabase",
    "place_replicas",
    "replicas_for_rate",
]
