"""Sub-database-granular lock manager for read/write transactions.

The paper restricts its study to read-only transactions "to simplify"; this
module supplies the concurrency-control substrate needed to lift that
restriction.  Locking is at sub-database granularity — the same granularity
the scheduling model works at, since every transaction targets exactly one
sub-database — with classic shared/exclusive modes, FIFO fairness, and
shared-to-exclusive upgrades.  Because each transaction locks a single
resource, waits-for cycles are impossible and the manager never needs
deadlock detection (asserted by tests).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..observability import get_instrumentation


class LockMode(enum.Enum):
    """Classic two-mode locking: many readers or one writer."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockError(RuntimeError):
    """Raised on protocol violations (double grant, foreign release...)."""


@dataclass
class _LockRequest:
    owner: int
    mode: LockMode


@dataclass
class _ResourceState:
    """Holders and FIFO waiters of one lockable resource."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[_LockRequest] = field(default_factory=deque)

    def grant_allowed(self, request: _LockRequest) -> bool:
        for owner, mode in self.holders.items():
            if owner == request.owner:
                continue
            if not mode.compatible_with(request.mode):
                return False
        return True


class LockManager:
    """Grants S/X locks over integer resource ids with FIFO fairness.

    ``acquire`` immediately grants a compatible request and queues an
    incompatible one; ``release`` hands the resource to as many queued
    requests as compatibility allows, returning them so the caller (e.g. a
    simulator) can resume the corresponding transactions.
    """

    def __init__(self) -> None:
        self._resources: Dict[int, _ResourceState] = {}
        self.granted_count = 0
        self.queued_count = 0

    def _record_wait(self, resource: int, owner: int, mode: LockMode) -> None:
        """A request queued instead of being granted: count + trace event."""
        self.queued_count += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.metrics.counter("locks_waits", mode=mode.value).inc()
            obs.emit("lock_wait", resource=resource, owner=owner, mode=mode.value)

    def _record_grant(self, mode: LockMode) -> None:
        self.granted_count += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.metrics.counter("locks_grants", mode=mode.value).inc()

    def _state(self, resource: int) -> _ResourceState:
        return self._resources.setdefault(resource, _ResourceState())

    def holds(self, resource: int, owner: int) -> Optional[LockMode]:
        """The mode ``owner`` currently holds on ``resource``, if any."""
        state = self._resources.get(resource)
        if state is None:
            return None
        return state.holders.get(owner)

    def acquire(self, resource: int, owner: int, mode: LockMode) -> bool:
        """Request a lock; True if granted now, False if queued.

        Re-acquiring an already held mode is a no-op grant; requesting
        EXCLUSIVE while holding SHARED is an upgrade, granted immediately
        when the owner is the sole holder and queued (at the front, per the
        usual upgrade priority) otherwise.
        """
        state = self._state(resource)
        held = state.holders.get(owner)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True
            # Upgrade S -> X.
            if len(state.holders) == 1:
                state.holders[owner] = LockMode.EXCLUSIVE
                self._record_grant(LockMode.EXCLUSIVE)
                return True
            state.waiters.appendleft(_LockRequest(owner, LockMode.EXCLUSIVE))
            self._record_wait(resource, owner, LockMode.EXCLUSIVE)
            return False
        request = _LockRequest(owner, mode)
        # FIFO fairness: a new request must also wait behind queued ones of
        # incompatible mode, or writers could starve behind reader streams.
        blocked_by_queue = any(
            not waiting.mode.compatible_with(mode)
            or not mode.compatible_with(waiting.mode)
            for waiting in state.waiters
        )
        if state.grant_allowed(request) and not blocked_by_queue:
            state.holders[owner] = mode
            self._record_grant(mode)
            return True
        state.waiters.append(request)
        self._record_wait(resource, owner, mode)
        return False

    def release(self, resource: int, owner: int) -> List[Tuple[int, LockMode]]:
        """Release ``owner``'s lock; returns newly granted (owner, mode)s."""
        state = self._resources.get(resource)
        if state is None or owner not in state.holders:
            raise LockError(
                f"owner {owner} holds no lock on resource {resource}"
            )
        del state.holders[owner]
        granted: List[Tuple[int, LockMode]] = []
        while state.waiters:
            request = state.waiters[0]
            if request.owner in state.holders:
                # Upgrade request: grantable only as sole holder.
                if len(state.holders) == 1:
                    state.waiters.popleft()
                    state.holders[request.owner] = LockMode.EXCLUSIVE
                    granted.append((request.owner, LockMode.EXCLUSIVE))
                    continue
                break
            if state.grant_allowed(request):
                state.waiters.popleft()
                state.holders[request.owner] = request.mode
                granted.append((request.owner, request.mode))
                self._record_grant(request.mode)
                # SHARED grants can cascade; EXCLUSIVE blocks the rest.
                if request.mode is LockMode.EXCLUSIVE:
                    break
                continue
            break
        if not state.holders and not state.waiters:
            del self._resources[resource]
        return granted

    def release_all(self, owner: int) -> List[Tuple[int, int, LockMode]]:
        """Release every lock ``owner`` holds; returns (resource, owner,
        mode) grants it unblocked."""
        granted: List[Tuple[int, int, LockMode]] = []
        for resource in [
            r for r, s in self._resources.items() if owner in s.holders
        ]:
            for new_owner, mode in self.release(resource, owner):
                granted.append((resource, new_owner, mode))
        return granted

    def waiters_of(self, resource: int) -> List[int]:
        state = self._resources.get(resource)
        if state is None:
            return []
        return [request.owner for request in state.waiters]

    def holders_of(self, resource: int) -> Dict[int, LockMode]:
        state = self._resources.get(resource)
        if state is None:
            return {}
        return dict(state.holders)

    def locked_resources(self) -> Set[int]:
        return set(self._resources)
