"""The distributed database facade: build, place, estimate, convert.

Assembles the pieces — schema, generated sub-databases, hash partitioning,
replica placement, global index, cost model — into the object the workload
generator and experiments use, and converts transactions into the scheduler's
:class:`~repro.core.task.Task` model (affinity = processors holding the
target sub-database, processing time = worst-case estimated cost).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.task import Task
from .cost_model import DEFAULT_CHECK_COST, TransactionCostModel
from .executor import TransactionExecutor
from .index import GlobalIndex
from .partition import IntervalHashPartitioner
from .replication import ReplicaPlacement, place_replicas
from .schema import (
    DEFAULT_DOMAIN_SIZE,
    DEFAULT_KEY_ATTRIBUTE,
    DEFAULT_NUM_ATTRIBUTES,
    Schema,
)
from .table import DEFAULT_RECORDS_PER_SUBDB, SubDatabase, generate_subdatabase
from .transaction import Transaction


@dataclass(frozen=True)
class DatabaseConfig:
    """Static parameters of the evaluation database (paper Section 5.1)."""

    num_subdatabases: int = 10
    records_per_subdb: int = DEFAULT_RECORDS_PER_SUBDB
    num_attributes: int = DEFAULT_NUM_ATTRIBUTES
    domain_size: int = DEFAULT_DOMAIN_SIZE
    key_attribute: int = DEFAULT_KEY_ATTRIBUTE
    check_cost: float = DEFAULT_CHECK_COST

    def __post_init__(self) -> None:
        if self.num_subdatabases <= 0:
            raise ValueError("num_subdatabases must be positive")
        if self.records_per_subdb <= 0:
            raise ValueError("records_per_subdb must be positive")

    @property
    def total_records(self) -> int:
        """``r``: global record count."""
        return self.num_subdatabases * self.records_per_subdb

    def make_schema(self) -> Schema:
        return Schema(
            num_subdatabases=self.num_subdatabases,
            num_attributes=self.num_attributes,
            domain_size=self.domain_size,
            key_attribute=self.key_attribute,
        )


class DistributedDatabase:
    """A populated, partitioned, replicated database plus its host index."""

    def __init__(
        self,
        config: DatabaseConfig,
        schema: Schema,
        subdatabases: Dict[int, SubDatabase],
        placement: ReplicaPlacement,
        index: GlobalIndex,
    ) -> None:
        self.config = config
        self.schema = schema
        self.subdatabases = subdatabases
        self.placement = placement
        self.index = index
        self.partitioner = IntervalHashPartitioner(schema)
        self.cost_model = TransactionCostModel(
            schema=schema,
            index=index,
            records_per_subdb=config.records_per_subdb,
            check_cost=config.check_cost,
        )

    @classmethod
    def build(
        cls,
        config: Optional[DatabaseConfig] = None,
        num_processors: int = 10,
        replication_rate: float = 0.3,
        rng: Optional[random.Random] = None,
    ) -> "DistributedDatabase":
        """Generate data, place replicas, and build the global index."""
        config = config or DatabaseConfig()
        rng = rng or random.Random(0)
        schema = config.make_schema()
        subdatabases = {
            subdb: generate_subdatabase(
                subdb, schema, config.records_per_subdb, rng
            )
            for subdb in range(config.num_subdatabases)
        }
        placement = place_replicas(
            num_subdatabases=config.num_subdatabases,
            num_processors=num_processors,
            replication_rate=replication_rate,
            rng=rng,
        )
        index = GlobalIndex.build(schema, subdatabases.values())
        return cls(
            config=config,
            schema=schema,
            subdatabases=subdatabases,
            placement=placement,
            index=index,
        )

    # ----- scheduler-facing views -------------------------------------------

    def affinity_of(self, txn: Transaction) -> frozenset:
        """Processors whose local memory can serve ``txn`` without transfer.

        Read-only transactions can run on any replica holder; write
        transactions are pinned to the primary copy (primary-copy
        replication), so same-partition writes serialize through one FIFO
        queue and no lock waits can delay a scheduled task.
        """
        subdb = txn.target_subdb(self.schema)
        if txn.is_write:
            return frozenset({self.placement.primary_of(subdb)})
        return self.placement.processors_holding(subdb)

    def estimate_cost(self, txn: Transaction) -> float:
        """Worst-case processing time of ``txn`` (host index estimate)."""
        return self.cost_model.estimate(txn).cost

    def to_task(self, txn: Transaction, deadline: float) -> Task:
        """Convert a transaction into the scheduler's task model."""
        estimate = self.cost_model.estimate(txn)
        if txn.is_write:
            tag = "update"
        else:
            tag = "indexed" if estimate.used_index else "scan"
        return Task(
            task_id=txn.txn_id,
            processing_time=estimate.cost,
            arrival_time=txn.arrival_time,
            deadline=deadline,
            affinity=self.affinity_of(txn),
            tag=tag,
        )

    # ----- node-facing views -------------------------------------------------

    def executor_for(self, processor: int) -> TransactionExecutor:
        """The executor a working processor runs over its local replicas."""
        local = {
            subdb: self.subdatabases[subdb]
            for subdb in self.placement.contents_of(processor)
        }
        return TransactionExecutor(
            schema=self.schema,
            subdatabases=local,
            check_cost=self.config.check_cost,
        )

    def global_executor(self) -> TransactionExecutor:
        """An executor over every partition (estimation validation)."""
        return TransactionExecutor(
            schema=self.schema,
            subdatabases=self.subdatabases,
            check_cost=self.config.check_cost,
        )
