"""Transaction execution on a working processor.

"Executing a transaction would mean iterating a checking process among the
tuples which partially match the attributes values of the transaction"
(paper Section 5).  The executor performs that checking process against the
target sub-database — key-index probe when a key value is given, full
partition scan otherwise — and reports how many tuples it actually checked,
which tests compare against the host's worst-case estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..observability import get_instrumentation
from .cost_model import WRITE_COST_FACTOR, TransactionCostModel
from .locks import LockManager, LockMode
from .schema import Schema
from .table import SubDatabase
from .transaction import Transaction, UpdateTransaction

Row = Tuple[int, ...]


class LockAcquisitionBlocked(RuntimeError):
    """A synchronous executor found the required lock held incompatibly."""


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of running one transaction on a node."""

    txn_id: int
    subdb: int
    matches: Tuple[Row, ...]
    tuples_checked: int
    cost: float  # actual processing time spent checking
    rows_changed: int = 0  # non-zero only for update transactions

    @property
    def match_count(self) -> int:
        return len(self.matches)


class TransactionExecutor:
    """Executes transactions against locally resident sub-databases."""

    #: Writing one matched row costs this many checking iterations; the
    #: canonical value lives next to the estimator so plan and execution
    #: can never drift apart.
    WRITE_COST_FACTOR = WRITE_COST_FACTOR

    def __init__(
        self,
        schema: Schema,
        subdatabases: Dict[int, SubDatabase],
        check_cost: float = 1.0,
        lock_manager: LockManager | None = None,
        global_index=None,
    ) -> None:
        if check_cost <= 0:
            raise ValueError("check_cost must be positive")
        self.schema = schema
        self.subdatabases = dict(subdatabases)
        self.check_cost = check_cost
        self.lock_manager = lock_manager
        self.global_index = global_index

    def _resident(self, txn: Transaction) -> SubDatabase:
        target = txn.target_subdb(self.schema)
        subdb = self.subdatabases.get(target)
        if subdb is None:
            raise LookupError(
                f"sub-database {target} is not resident on this node "
                f"(holds {sorted(self.subdatabases)})"
            )
        return subdb

    def _lock(self, resource: int, owner: int, mode: LockMode) -> None:
        if self.lock_manager is None:
            return
        if not self.lock_manager.acquire(resource, owner, mode):
            raise LockAcquisitionBlocked(
                f"transaction {owner} blocked on sub-database {resource} "
                f"({mode.value} lock unavailable)"
            )

    def _unlock(self, resource: int, owner: int) -> None:
        if self.lock_manager is not None:
            self.lock_manager.release(resource, owner)

    def _record_access(
        self, kind: str, subdb: int, tuples_checked: int, rows_changed: int
    ) -> None:
        """Count one sub-database access in the process metrics registry."""
        obs = get_instrumentation()
        if not obs.enabled:
            return
        metrics = obs.metrics
        metrics.counter("db_executions", kind=kind, subdb=subdb).inc()
        metrics.counter("db_tuples_checked", subdb=subdb).inc(tuples_checked)
        if rows_changed:
            metrics.counter("db_rows_changed", subdb=subdb).inc(rows_changed)

    def execute(self, txn: Transaction) -> ExecutionOutcome:
        """Run the checking process; raises if the partition is not local.

        Dispatches writes to :meth:`execute_update`; with a lock manager
        configured, reads take a SHARED sub-database lock for their
        duration.
        """
        if isinstance(txn, UpdateTransaction):
            return self.execute_update(txn)
        subdb = self._resident(txn)
        target = subdb.subdb_id
        self._lock(target, txn.txn_id, LockMode.SHARED)
        try:
            matches, tuples_checked = subdb.probe(txn.predicates)
        finally:
            self._unlock(target, txn.txn_id)
        # An absent key value still costs one index probe, matching the
        # cost model's positive-cost floor.
        tuples_checked = max(1, tuples_checked)
        self._record_access("read", target, tuples_checked, 0)
        return ExecutionOutcome(
            txn_id=txn.txn_id,
            subdb=target,
            matches=tuple(matches),
            tuples_checked=tuples_checked,
            cost=self.check_cost * tuples_checked,
        )

    def execute_update(self, txn: UpdateTransaction) -> ExecutionOutcome:
        """Apply an update transaction under an EXCLUSIVE lock.

        Mutates the resident sub-database, maintains its local key index,
        and — when this executor carries the host's global index —
        propagates the key-frequency deltas to it.  The cost charges one
        checking iteration per candidate tuple plus ``WRITE_COST_FACTOR``
        iterations per modified row.
        """
        subdb = self._resident(txn)
        target = subdb.subdb_id
        self._lock(target, txn.txn_id, LockMode.EXCLUSIVE)
        try:
            matches, tuples_checked = subdb.probe(txn.predicates)
            rows_changed, deltas = subdb.apply_update(
                txn.predicates, txn.updates
            )
        finally:
            self._unlock(target, txn.txn_id)
        if self.global_index is not None and deltas:
            self.global_index.apply_deltas(deltas)
        tuples_checked = max(1, tuples_checked)
        self._record_access("write", target, tuples_checked, rows_changed)
        cost = self.check_cost * (
            tuples_checked + self.WRITE_COST_FACTOR * rows_changed
        )
        return ExecutionOutcome(
            txn_id=txn.txn_id,
            subdb=target,
            matches=tuple(matches),
            tuples_checked=tuples_checked,
            cost=cost,
            rows_changed=rows_changed,
        )

    def verify_estimate(
        self, txn: Transaction, cost_model: TransactionCostModel
    ) -> bool:
        """Whether the host estimate upper-bounds the actual checking work.

        The estimate is worst-case, so ``actual <= estimate`` must always
        hold; property tests drive this over random transactions.
        """
        outcome = self.execute(txn)
        estimate = cost_model.estimate(txn)
        return outcome.tuples_checked <= estimate.tuples_to_check
