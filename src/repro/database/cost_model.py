"""Worst-case transaction cost estimation (paper Section 5).

::

    Execution_Cost(q) = k * ( Frequency_of_matching_key_values   if key in F
                              r / d                               otherwise )

where ``k`` is the processing time of one checking iteration, ``F`` the
attributes with given values, ``r`` the global record count, and ``d`` the
number of sub-databases.  The estimate is a *worst case*: with a key value
the node checks exactly the key-matching tuples (via its local key index);
without one it scans its whole partition.  Accuracy against the real
executor is asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .index import GlobalIndex
from .schema import Schema
from .transaction import Transaction, UpdateTransaction

#: One checking iteration defines the time unit of the whole reproduction.
DEFAULT_CHECK_COST = 1.0

#: Writing one matched row costs this many checking iterations (read,
#: modify, write back).  Shared between the estimator and the executor.
WRITE_COST_FACTOR = 2.0


@dataclass(frozen=True)
class CostEstimate:
    """Outcome of estimating one transaction."""

    tuples_to_check: int
    cost: float
    used_index: bool
    target_subdb: int


class TransactionCostModel:
    """Host-side estimator backed by the global index file."""

    def __init__(
        self,
        schema: Schema,
        index: GlobalIndex,
        records_per_subdb: int,
        check_cost: float = DEFAULT_CHECK_COST,
    ) -> None:
        if records_per_subdb <= 0:
            raise ValueError("records_per_subdb must be positive")
        if check_cost <= 0:
            raise ValueError("check_cost must be positive")
        self.schema = schema
        self.index = index
        self.records_per_subdb = records_per_subdb
        self.check_cost = check_cost

    def estimate(self, txn: Transaction) -> CostEstimate:
        """Worst-case execution cost of ``txn`` on a node holding its data.

        A key-giving transaction whose key value matches no tuple still
        costs one index probe (one checking iteration), so estimated costs
        are always positive — a requirement of the task model (p_i > 0).
        """
        target = txn.target_subdb(self.schema)
        if txn.gives_key(self.schema):
            frequency = self.index.frequency(txn.key_value(self.schema))
            tuples = max(1, frequency)
            used_index = True
        else:
            tuples = self.records_per_subdb
            used_index = False
        cost = self.check_cost * tuples
        if isinstance(txn, UpdateTransaction):
            # Worst case: every candidate tuple matches and is rewritten.
            cost += self.check_cost * WRITE_COST_FACTOR * tuples
        return CostEstimate(
            tuples_to_check=tuples,
            cost=cost,
            used_index=used_index,
            target_subdb=target,
        )
