"""Replica placement: mapping sub-databases to processors' local memories.

The replication rate ``R`` (paper Section 5.1) controls how many processors
hold a copy of each sub-database: ``R = 100%`` puts the whole global
database in every local memory; ``R = 10%`` leaves each processor with at
most one sub-database copy.  Replication rate and task-to-processor affinity
are two views of the same quantity — a task touching sub-database ``s`` has
affinity with exactly the processors in ``placement[s]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List


@dataclass(frozen=True)
class ReplicaPlacement:
    """Immutable assignment of sub-database replicas to processors."""

    num_subdatabases: int
    num_processors: int
    replication_rate: float
    replicas: Dict[int, FrozenSet[int]]

    def processors_holding(self, subdb: int) -> FrozenSet[int]:
        """Processors with ``subdb`` in local memory — a task's affinity set."""
        try:
            return self.replicas[subdb]
        except KeyError:
            raise ValueError(f"unknown sub-database {subdb}") from None

    def primary_of(self, subdb: int) -> int:
        """The primary copy's processor (``subdb mod m`` by construction).

        Write transactions execute at the primary so same-partition writes
        serialize through one FIFO queue (primary-copy replication).
        """
        holders = self.processors_holding(subdb)
        primary = subdb % self.num_processors
        if primary not in holders:
            # Defensive: custom placements may move the primary.
            primary = min(holders)
        return primary

    def contents_of(self, processor: int) -> FrozenSet[int]:
        """Sub-databases resident in ``processor``'s local memory."""
        if not 0 <= processor < self.num_processors:
            raise ValueError(f"unknown processor {processor}")
        return frozenset(
            subdb
            for subdb, holders in self.replicas.items()
            if processor in holders
        )

    def copies_per_subdatabase(self) -> List[int]:
        return [
            len(self.replicas[subdb]) for subdb in range(self.num_subdatabases)
        ]

    def effective_affinity_degree(self) -> float:
        """Mean fraction of processors holding a given sub-database."""
        counts = self.copies_per_subdatabase()
        return sum(counts) / (len(counts) * self.num_processors)


def replicas_for_rate(replication_rate: float, num_processors: int) -> int:
    """Copies per sub-database implied by rate ``R`` on ``m`` processors.

    Every sub-database needs at least one home; ``R = 1.0`` means a copy on
    every processor.
    """
    if not 0.0 < replication_rate <= 1.0:
        raise ValueError(
            f"replication_rate must be in (0, 1], got {replication_rate}"
        )
    return max(1, round(replication_rate * num_processors))


def replica_counts_for_rate(
    replication_rate: float, num_processors: int, num_subdatabases: int
) -> List[int]:
    """Per-sub-database copy counts whose mean tracks ``R * m`` exactly.

    ``R * m`` is rarely an integer; rounding it uniformly makes the realized
    affinity degree jump discretely as ``m`` sweeps (e.g. R=30% gives 33%
    affinity at m=6 but 25% at m=8), which injects sawtooth noise into
    scalability curves.  Mixing ``floor`` and ``ceil`` counts across
    sub-databases keeps the mean replica count at ``max(1, R * m)`` for
    every machine size.
    """
    if not 0.0 < replication_rate <= 1.0:
        raise ValueError(
            f"replication_rate must be in (0, 1], got {replication_rate}"
        )
    if num_subdatabases <= 0:
        raise ValueError("num_subdatabases must be positive")
    target = max(1.0, replication_rate * num_processors)
    base = int(target)
    fraction = target - base
    ceil_count = round(fraction * num_subdatabases)
    counts = [
        min(num_processors, base + 1 if i < ceil_count else base)
        for i in range(num_subdatabases)
    ]
    return counts


def place_replicas(
    num_subdatabases: int,
    num_processors: int,
    replication_rate: float,
    rng: random.Random | None = None,
) -> ReplicaPlacement:
    """Spread replicas evenly: primaries round-robin, extras randomized.

    The primary copy of sub-database ``s`` lands on processor ``s mod m``
    (the natural mapping when ``d`` sub-databases are laid onto ``m``
    nodes); additional copies go to distinct processors chosen uniformly,
    so every replication level keeps placement balanced in expectation.
    """
    if num_subdatabases <= 0:
        raise ValueError("num_subdatabases must be positive")
    if num_processors <= 0:
        raise ValueError("num_processors must be positive")
    rng = rng or random.Random(0)
    counts = replica_counts_for_rate(
        replication_rate, num_processors, num_subdatabases
    )
    rng.shuffle(counts)
    replicas: Dict[int, FrozenSet[int]] = {}
    for subdb, copies in enumerate(counts):
        primary = subdb % num_processors
        holders = {primary}
        others = [p for p in range(num_processors) if p != primary]
        extras = min(copies - 1, len(others))
        holders.update(rng.sample(others, extras))
        replicas[subdb] = frozenset(holders)
    return ReplicaPlacement(
        num_subdatabases=num_subdatabases,
        num_processors=num_processors,
        replication_rate=replication_rate,
        replicas=replicas,
    )
