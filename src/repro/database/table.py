"""Sub-database storage: tuples in a processor's local memory.

Each sub-database holds ``records_per_subdb`` tuples of ``num_attributes``
integer values (paper: 1000 records, 10 attributes), with every value drawn
uniformly from the attribute's (sub-database-local, disjoint) domain.  A
per-sub-database key index accelerates key lookups, mirroring "the
sub-databases are indexed according to a specific key attribute".
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Tuple

from .schema import Schema

#: Paper default: each sub-database holds 1000 records.
DEFAULT_RECORDS_PER_SUBDB = 1000

Row = Tuple[int, ...]


class SubDatabase:
    """One partition of the global database, resident in local memory."""

    def __init__(self, subdb_id: int, schema: Schema, rows: List[Row]) -> None:
        if not 0 <= subdb_id < schema.num_subdatabases:
            raise ValueError(
                f"subdb_id {subdb_id} outside schema with "
                f"{schema.num_subdatabases} sub-databases"
            )
        self.subdb_id = subdb_id
        self.schema = schema
        self.rows = rows
        self._validate_rows()
        self._key_index = self._build_key_index()

    def _validate_rows(self) -> None:
        domains = self.schema.all_domains(self.subdb_id)
        for row in self.rows:
            if len(row) != self.schema.num_attributes:
                raise ValueError(
                    f"row has {len(row)} values, schema expects "
                    f"{self.schema.num_attributes}"
                )
            for attribute, value in enumerate(row):
                if value not in domains[attribute]:
                    raise ValueError(
                        f"value {value} outside domain of attribute "
                        f"{attribute} in sub-database {self.subdb_id}"
                    )

    def _build_key_index(self) -> Dict[int, List[int]]:
        index: Dict[int, List[int]] = {}
        key = self.schema.key_attribute
        for position, row in enumerate(self.rows):
            index.setdefault(row[key], []).append(position)
        return index

    def __len__(self) -> int:
        return len(self.rows)

    def key_frequency(self, key_value: int) -> int:
        """How many rows carry ``key_value`` in the key attribute."""
        return len(self._key_index.get(key_value, ()))

    def key_frequencies(self) -> Dict[int, int]:
        """Frequency of every key value present (feeds the global index)."""
        return {value: len(rows) for value, rows in self._key_index.items()}

    def rows_with_key(self, key_value: int) -> List[Row]:
        """Rows matching a key value, via the local key index."""
        return [self.rows[pos] for pos in self._key_index.get(key_value, ())]

    def scan(self, predicates: Mapping[int, int]) -> List[Row]:
        """Full scan: rows matching every ``attribute == value`` predicate."""
        matches = []
        items = tuple(predicates.items())
        for row in self.rows:
            if all(row[attribute] == value for attribute, value in items):
                matches.append(row)
        return matches

    def apply_update(
        self, predicates: Mapping[int, int], updates: Mapping[int, int]
    ) -> Tuple[int, Dict[int, int]]:
        """Mutate every row matching ``predicates`` with ``updates``.

        Returns ``(rows_changed, key_frequency_deltas)``; the deltas map
        key values to their frequency change so the host's global index can
        be maintained incrementally.  The local key index is updated in
        place.
        """
        key = self.schema.key_attribute
        matches, _ = self.probe(predicates)
        if not matches:
            return 0, {}
        match_set = {id(row) for row in matches}
        deltas: Dict[int, int] = {}
        changed = 0
        new_rows: List[Row] = []
        for row in self.rows:
            if id(row) not in match_set:
                new_rows.append(row)
                continue
            new_row = tuple(
                updates.get(attribute, value)
                for attribute, value in enumerate(row)
            )
            if new_row != row:
                changed += 1
                if new_row[key] != row[key]:
                    deltas[row[key]] = deltas.get(row[key], 0) - 1
                    deltas[new_row[key]] = deltas.get(new_row[key], 0) + 1
            new_rows.append(new_row)
        self.rows = new_rows
        self._validate_rows()
        self._key_index = self._build_key_index()
        return changed, {k: d for k, d in deltas.items() if d}

    def probe_first_match(
        self, predicates: Mapping[int, int]
    ) -> Tuple[Row | None, int]:
        """Stop at the first fully matching tuple; returns (match, checked).

        The early-exit variant of the checking process used by the
        resource-reclaiming execution model: a "locate a record" query
        terminates as soon as one tuple satisfies every predicate.  The
        worst case (the host's estimate) occurs when nothing matches.
        """
        key = self.schema.key_attribute
        items = tuple(predicates.items())
        if key in predicates:
            candidates = self.rows_with_key(predicates[key])
        else:
            candidates = self.rows
        checked = 0
        for row in candidates:
            checked += 1
            if all(row[attribute] == value for attribute, value in items):
                return row, checked
        return None, checked

    def probe(self, predicates: Mapping[int, int]) -> Tuple[List[Row], int]:
        """Index-assisted evaluation; returns (matches, tuples_checked).

        If the key attribute appears among the predicates, only rows with
        the matching key value are checked (the worst-case count the global
        index predicts); otherwise the whole partition is scanned.
        """
        key = self.schema.key_attribute
        if key in predicates:
            candidates = self.rows_with_key(predicates[key])
            items = tuple(predicates.items())
            matches = [
                row
                for row in candidates
                if all(row[attribute] == value for attribute, value in items)
            ]
            return matches, len(candidates)
        return self.scan(predicates), len(self.rows)


def generate_subdatabase(
    subdb_id: int,
    schema: Schema,
    records: int = DEFAULT_RECORDS_PER_SUBDB,
    rng: random.Random | None = None,
) -> SubDatabase:
    """Populate one sub-database with uniformly distributed values."""
    if records <= 0:
        raise ValueError("records must be positive")
    rng = rng or random.Random(subdb_id)
    domains = schema.all_domains(subdb_id)
    rows = [
        tuple(domain.sample(rng) for domain in domains) for _ in range(records)
    ]
    return SubDatabase(subdb_id=subdb_id, schema=schema, rows=rows)
