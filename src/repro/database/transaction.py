"""Read-only transactions: the tasks of the evaluation application.

A transaction is "characterized by the attribute values that transaction
aims to locate in the distributed database" (paper Section 5): a conjunction
of ``attribute == value`` predicates whose values all come from one
sub-database's (disjoint) domains.  Executing it means iterating a checking
process over the tuples that partially match — all ``r/d`` partition tuples,
or only the key-matching ones when the key attribute is among the given
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .schema import Schema


@dataclass(frozen=True)
class Transaction:
    """One read-only query over the distributed database."""

    txn_id: int
    predicates: Mapping[int, int]  # attribute index -> required value
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError(f"transaction {self.txn_id} has no predicates")
        if any(attribute < 0 for attribute in self.predicates):
            raise ValueError("attribute indices must be non-negative")
        # Freeze the mapping so transactions stay hashable value objects.
        object.__setattr__(self, "predicates", dict(self.predicates))

    def attributes(self) -> tuple:
        """Attribute indices with given values (the set ``F`` of the paper)."""
        return tuple(sorted(self.predicates))

    def gives_key(self, schema: Schema) -> bool:
        """Whether the key attribute is among the given values."""
        return schema.key_attribute in self.predicates

    def key_value(self, schema: Schema) -> int:
        """The given key value; raises if the key attribute is not given."""
        try:
            return self.predicates[schema.key_attribute]
        except KeyError:
            raise ValueError(
                f"transaction {self.txn_id} does not give a key value"
            ) from None

    def target_subdb(self, schema: Schema) -> int:
        """Sub-database the transaction must run against.

        All predicate values are drawn from one sub-database's domains
        (domains are disjoint), so any value identifies the target.  A
        transaction mixing sub-databases is malformed and rejected.
        """
        owners = {
            schema.subdb_of_value(value) for value in self.predicates.values()
        }
        if len(owners) != 1:
            raise ValueError(
                f"transaction {self.txn_id} references values from "
                f"sub-databases {sorted(owners)}; domains are disjoint so a "
                "transaction targets exactly one"
            )
        return owners.pop()

    @property
    def is_write(self) -> bool:
        """Whether executing this transaction mutates the database."""
        return False

    def validate_against(self, schema: Schema) -> None:
        """Full well-formedness check against a schema."""
        subdb = self.target_subdb(schema)
        for attribute, value in self.predicates.items():
            if attribute >= schema.num_attributes:
                raise ValueError(
                    f"transaction {self.txn_id}: attribute {attribute} "
                    f"outside schema of {schema.num_attributes} attributes"
                )
            if value not in schema.domain_for(subdb, attribute):
                raise ValueError(
                    f"transaction {self.txn_id}: value {value} outside the "
                    f"domain of attribute {attribute} in sub-database {subdb}"
                )


@dataclass(frozen=True)
class UpdateTransaction(Transaction):
    """A read-write transaction: predicates select rows, updates mutate them.

    Lifts the paper's read-only simplification.  All updated values must
    come from the *same* sub-database's domains as the predicates (the
    disjoint-domain layout makes cross-partition updates meaningless), and
    updates to the key attribute are legal — the local key index and the
    host's global index file are maintained on apply.
    """

    updates: Mapping[int, int] = None  # attribute index -> new value

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.updates:
            raise ValueError(
                f"update transaction {self.txn_id} has no updates"
            )
        if any(attribute < 0 for attribute in self.updates):
            raise ValueError("updated attribute indices must be non-negative")
        object.__setattr__(self, "updates", dict(self.updates))

    @property
    def is_write(self) -> bool:
        return True

    def target_subdb(self, schema: Schema) -> int:
        owners = {
            schema.subdb_of_value(value)
            for value in (*self.predicates.values(), *self.updates.values())
        }
        if len(owners) != 1:
            raise ValueError(
                f"update transaction {self.txn_id} mixes values from "
                f"sub-databases {sorted(owners)}"
            )
        return owners.pop()

    def validate_against(self, schema: Schema) -> None:
        super().validate_against(schema)
        subdb = self.target_subdb(schema)
        for attribute, value in self.updates.items():
            if attribute >= schema.num_attributes:
                raise ValueError(
                    f"update transaction {self.txn_id}: attribute "
                    f"{attribute} outside schema"
                )
            if value not in schema.domain_for(subdb, attribute):
                raise ValueError(
                    f"update transaction {self.txn_id}: new value {value} "
                    f"outside the domain of attribute {attribute} in "
                    f"sub-database {subdb}"
                )
