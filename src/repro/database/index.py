"""The global index file maintained by the host processor.

"To estimate the execution cost of a transaction, the host processor
maintains the global index file of the database.  If a transaction provides
a key value, the index file is used to evaluate the number of tuples a
processing node would need to check in the worst-case" (paper Section 5).

The index maps every key value present in the global database to its
sub-database and its frequency (number of matching tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from .schema import Schema
from .table import SubDatabase


@dataclass(frozen=True)
class IndexEntry:
    """Where a key value lives and how many tuples carry it."""

    subdb: int
    frequency: int


class GlobalIndex:
    """Key-value -> (sub-database, frequency) map over all partitions."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._entries: Dict[int, IndexEntry] = {}

    @classmethod
    def build(
        cls, schema: Schema, subdatabases: Iterable[SubDatabase]
    ) -> "GlobalIndex":
        """Construct the index by collecting every partition's frequencies."""
        index = cls(schema)
        for subdb in subdatabases:
            for key_value, frequency in subdb.key_frequencies().items():
                index.add(key_value, subdb.subdb_id, frequency)
        return index

    def add(self, key_value: int, subdb: int, frequency: int) -> None:
        if frequency <= 0:
            raise ValueError("indexed frequencies must be positive")
        owner = self.schema.subdb_of_value(key_value)
        if owner != subdb:
            raise ValueError(
                f"key value {key_value} belongs to sub-database {owner}, "
                f"not {subdb} (disjoint-domain violation)"
            )
        if key_value in self._entries:
            raise ValueError(f"key value {key_value} already indexed")
        self._entries[key_value] = IndexEntry(subdb=subdb, frequency=frequency)

    def adjust(self, key_value: int, delta: int) -> None:
        """Apply an incremental frequency change from an update transaction.

        Entries reaching zero frequency are removed; new key values get a
        fresh entry in their owning sub-database.
        """
        if delta == 0:
            return
        entry = self._entries.get(key_value)
        if entry is None:
            if delta < 0:
                raise ValueError(
                    f"cannot decrement absent key value {key_value}"
                )
            self._entries[key_value] = IndexEntry(
                subdb=self.schema.subdb_of_value(key_value), frequency=delta
            )
            return
        frequency = entry.frequency + delta
        if frequency < 0:
            raise ValueError(
                f"frequency of key value {key_value} would drop below zero"
            )
        if frequency == 0:
            del self._entries[key_value]
        else:
            self._entries[key_value] = IndexEntry(
                subdb=entry.subdb, frequency=frequency
            )

    def apply_deltas(self, deltas: Dict[int, int]) -> None:
        """Apply a batch of frequency deltas (from SubDatabase.apply_update)."""
        for key_value, delta in deltas.items():
            self.adjust(key_value, delta)

    def lookup(self, key_value: int) -> Optional[IndexEntry]:
        """Entry for a key value, or ``None`` if no tuple carries it."""
        return self._entries.get(key_value)

    def frequency(self, key_value: int) -> int:
        """Worst-case tuples a node must check for this key (0 if absent)."""
        entry = self._entries.get(key_value)
        return entry.frequency if entry is not None else 0

    def subdb_of(self, key_value: int) -> int:
        """Sub-database owning the key value (indexed or not)."""
        return self.schema.subdb_of_value(key_value)

    def __len__(self) -> int:
        return len(self._entries)

    def total_indexed_tuples(self) -> int:
        """Sum of frequencies — must equal the global record count."""
        return sum(entry.frequency for entry in self._entries.values())

    def mean_frequency(self) -> float:
        """Average tuples per present key value (index selectivity)."""
        if not self._entries:
            return 0.0
        return self.total_indexed_tuples() / len(self._entries)
