"""The live cluster backend: real processes, real sockets, wall clock.

Wraps :func:`repro.cluster.launcher.launch_cluster` behind the
:class:`~repro.runtime.backend.ExecutionBackend` interface so any
experiment cell can run on the live system: the backend rebuilds a
:class:`~repro.cluster.config.ClusterConfig` around the experiment config
with the repetition's seed as the workload seed, spawns the master and
one worker process per configured processor, and returns the master's
:class:`~repro.runtime.report.RunReport`.

Deployment knobs that have no simulated counterpart (wall-clock scale,
heartbeat cadence, failure injection) are constructor arguments — they
describe *where* the run happens, not *what* runs, so they stay out of
``ExperimentConfig``.
"""

from __future__ import annotations

from dataclasses import replace

from .backend import ExecutionBackend, register_backend
from .report import RunReport


class ClusterBackend(ExecutionBackend):
    """Runs a cell on the live TCP master/worker system.

    Stateless between runs (every :meth:`run_once` launches a fresh
    master + workers), so one instance may be reused across cells; it is
    not safe to call :meth:`run_once` concurrently from two threads with
    a pinned port, because both masters would bind the same listener.
    The report's ``wall_seconds`` is real host time; all schedule
    quantities stay in virtual quanta.
    """

    name = "cluster"

    def __init__(
        self,
        *,
        host: str = None,
        port: int = None,
        seconds_per_unit: float = None,
        heartbeat_interval: float = None,
        guarantee_margin_seconds: float = None,
        max_wall_seconds: float = None,
        failure=None,
    ) -> None:
        overrides = {
            "host": host,
            "port": port,
            "seconds_per_unit": seconds_per_unit,
            "heartbeat_interval": heartbeat_interval,
            "guarantee_margin_seconds": guarantee_margin_seconds,
            "max_wall_seconds": max_wall_seconds,
            "failure": failure,
        }
        self._overrides = {
            key: value for key, value in overrides.items()
            if value is not None
        }

    def with_port(self, port: int) -> "ClusterBackend":
        """A copy whose master binds ``port`` (0 = OS-chosen ephemeral).

        The sweep engine uses this to pin consecutive live-cluster cells
        onto leased ports from a bounded pool; all other deployment
        overrides carry over unchanged.
        """
        clone = ClusterBackend()
        clone._overrides = {**self._overrides, "port": port}
        return clone

    def run_once(
        self,
        config,
        scheduler_name: str,
        seed: int,
        *,
        evaluator=None,
        quantum_policy=None,
        validate_phases: bool = False,
        instrumentation=None,
    ) -> RunReport:
        """Run one repetition on real processes over localhost TCP.

        Spawns a master and one worker per configured processor, waits for
        the run to finish, and returns the master's report: schedule
        quantities in virtual quanta, ``wall_seconds`` in real time.
        Blocking, and not concurrency-safe with a pinned port (two
        masters would race for the listener) — the sweep engine
        serializes cluster cells for exactly this reason.
        """
        if evaluator is not None or quantum_policy is not None:
            raise NotImplementedError(
                "scheduler construction overrides (evaluator, "
                "quantum_policy) are simulator-only; the live master "
                "builds its scheduler from the registry name"
            )
        # validate_phases is subsumed: the live master re-validates every
        # entry at dispatch time against a fresh wall-clock reading, which
        # is strictly stronger than the simulator's phase-end check.

        # Sockets and multiprocessing stay out of simulation-only
        # processes; also breaks the cluster -> experiments -> backend
        # import cycle.
        from ..cluster.config import ClusterConfig
        from ..cluster.launcher import launch_cluster

        experiment = replace(
            config, base_seed=seed, runs=1, backend=self.name
        )
        cluster_config = ClusterConfig(
            experiment=experiment,
            scheduler_name=scheduler_name,
            **self._overrides,
        )
        return launch_cluster(
            cluster_config, instrumentation=instrumentation
        )


register_backend(ClusterBackend.name, ClusterBackend)
